"""In-memory data model of an Event-Based Social Network.

The model captures the pieces of Meetup-like platforms that the interest and
activity derivation needs:

* :class:`Member` — a platform user with declared interest topics.
* :class:`Group` — an interest group under a category, with member ids.
* :class:`SocialEvent` — a past event organised by a group, tagged with
  topics, held at a venue during a weekly time slot.
* :class:`Rsvp` — a member's positive/negative RSVP to a past event.
* :class:`CheckIn` — a member's attendance record at a weekly time slot.

:class:`EventBasedSocialNetwork` is the container, offering the lookups the
interest / activity models need plus an optional NetworkX co-membership
social graph for analyses and the friend-boost term of the interest model.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.errors import DatasetError


@dataclass(frozen=True)
class Member:
    """A platform member with declared topics of interest."""

    id: str
    topics: Tuple[str, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Group:
    """An interest group (category + topics) with a set of members."""

    id: str
    category: str
    topics: Tuple[str, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class SocialEvent:
    """A past event organised by a group at a venue during a weekly slot."""

    id: str
    group_id: str
    topics: Tuple[str, ...] = field(default_factory=tuple)
    slot: int = 0
    venue: str = "venue0"


@dataclass(frozen=True)
class Rsvp:
    """A member's RSVP to a past event (``True`` = "yes")."""

    member_id: str
    event_id: str
    attending: bool = True


@dataclass(frozen=True)
class CheckIn:
    """A member's recorded attendance at a weekly time slot."""

    member_id: str
    slot: int


class EventBasedSocialNetwork:
    """Container of members, groups, past events, RSVPs and check-ins."""

    def __init__(self, *, num_weekly_slots: int = 21) -> None:
        if num_weekly_slots < 1:
            raise DatasetError("num_weekly_slots must be positive")
        self._num_weekly_slots = num_weekly_slots
        self._members: Dict[str, Member] = {}
        self._groups: Dict[str, Group] = {}
        self._events: Dict[str, SocialEvent] = {}
        self._memberships: Dict[str, Set[str]] = defaultdict(set)       # group -> members
        self._groups_of_member: Dict[str, Set[str]] = defaultdict(set)  # member -> groups
        self._rsvps_by_event: Dict[str, List[Rsvp]] = defaultdict(list)
        self._rsvps_by_member: Dict[str, List[Rsvp]] = defaultdict(list)
        self._checkins_by_member: Dict[str, List[CheckIn]] = defaultdict(list)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @property
    def num_weekly_slots(self) -> int:
        """Number of weekly time slots check-ins are bucketed into."""
        return self._num_weekly_slots

    def add_member(self, member: Member) -> None:
        """Register a member (ids must be unique)."""
        if member.id in self._members:
            raise DatasetError(f"duplicate member id {member.id!r}")
        self._members[member.id] = member

    def add_group(self, group: Group) -> None:
        """Register a group (ids must be unique)."""
        if group.id in self._groups:
            raise DatasetError(f"duplicate group id {group.id!r}")
        self._groups[group.id] = group

    def add_membership(self, member_id: str, group_id: str) -> None:
        """Record that a member belongs to a group."""
        self._require_member(member_id)
        self._require_group(group_id)
        self._memberships[group_id].add(member_id)
        self._groups_of_member[member_id].add(group_id)

    def add_event(self, event: SocialEvent) -> None:
        """Register a past event (its group must exist, its slot must be valid)."""
        if event.id in self._events:
            raise DatasetError(f"duplicate event id {event.id!r}")
        self._require_group(event.group_id)
        if not (0 <= event.slot < self._num_weekly_slots):
            raise DatasetError(
                f"event {event.id!r}: slot {event.slot} outside [0, {self._num_weekly_slots})"
            )
        self._events[event.id] = event

    def add_rsvp(self, rsvp: Rsvp) -> None:
        """Record an RSVP (member and event must exist)."""
        self._require_member(rsvp.member_id)
        if rsvp.event_id not in self._events:
            raise DatasetError(f"unknown event id {rsvp.event_id!r}")
        self._rsvps_by_event[rsvp.event_id].append(rsvp)
        self._rsvps_by_member[rsvp.member_id].append(rsvp)

    def add_checkin(self, checkin: CheckIn) -> None:
        """Record a check-in (member must exist, slot must be valid)."""
        self._require_member(checkin.member_id)
        if not (0 <= checkin.slot < self._num_weekly_slots):
            raise DatasetError(
                f"check-in slot {checkin.slot} outside [0, {self._num_weekly_slots})"
            )
        self._checkins_by_member[checkin.member_id].append(checkin)

    def _require_member(self, member_id: str) -> None:
        if member_id not in self._members:
            raise DatasetError(f"unknown member id {member_id!r}")

    def _require_group(self, group_id: str) -> None:
        if group_id not in self._groups:
            raise DatasetError(f"unknown group id {group_id!r}")

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def members(self) -> List[Member]:
        """All members in insertion order."""
        return list(self._members.values())

    def groups(self) -> List[Group]:
        """All groups in insertion order."""
        return list(self._groups.values())

    def events(self) -> List[SocialEvent]:
        """All past events in insertion order."""
        return list(self._events.values())

    def member(self, member_id: str) -> Member:
        """One member by id."""
        self._require_member(member_id)
        return self._members[member_id]

    def group(self, group_id: str) -> Group:
        """One group by id."""
        self._require_group(group_id)
        return self._groups[group_id]

    def members_of_group(self, group_id: str) -> Set[str]:
        """Member ids of a group."""
        self._require_group(group_id)
        return set(self._memberships.get(group_id, set()))

    def groups_of_member(self, member_id: str) -> Set[str]:
        """Group ids a member belongs to."""
        self._require_member(member_id)
        return set(self._groups_of_member.get(member_id, set()))

    def rsvps_for_event(self, event_id: str) -> List[Rsvp]:
        """All RSVPs recorded for a past event."""
        return list(self._rsvps_by_event.get(event_id, ()))

    def rsvps_of_member(self, member_id: str) -> List[Rsvp]:
        """All RSVPs a member made."""
        return list(self._rsvps_by_member.get(member_id, ()))

    def checkins_of_member(self, member_id: str) -> List[CheckIn]:
        """All check-ins of a member."""
        return list(self._checkins_by_member.get(member_id, ()))

    def checkin_counts(self, member_id: str) -> List[int]:
        """Per-slot check-in counts of a member (length ``num_weekly_slots``)."""
        counts = [0] * self._num_weekly_slots
        for checkin in self._checkins_by_member.get(member_id, ()):
            counts[checkin.slot] += 1
        return counts

    def attended_topics(self, member_id: str) -> Dict[str, int]:
        """Topic → count over the past events the member RSVPed "yes" to."""
        counts: Dict[str, int] = defaultdict(int)
        for rsvp in self._rsvps_by_member.get(member_id, ()):
            if not rsvp.attending:
                continue
            for topic in self._events[rsvp.event_id].topics:
                counts[topic] += 1
        return dict(counts)

    # ------------------------------------------------------------------ #
    # Social graph
    # ------------------------------------------------------------------ #
    def co_membership_graph(self, *, min_shared_groups: int = 1):
        """NetworkX graph linking members that share at least ``min_shared_groups`` groups.

        NetworkX is an optional dependency; a :class:`DatasetError` is raised
        when it is unavailable.
        """
        try:
            import networkx as nx
        except ImportError:  # pragma: no cover - networkx is installed in CI
            raise DatasetError("networkx is required for the co-membership graph") from None

        graph = nx.Graph()
        graph.add_nodes_from(self._members)
        shared: Dict[Tuple[str, str], int] = defaultdict(int)
        for member_ids in self._memberships.values():
            ordered = sorted(member_ids)
            for i, first in enumerate(ordered):
                for second in ordered[i + 1 :]:
                    shared[(first, second)] += 1
        for (first, second), count in shared.items():
            if count >= min_shared_groups:
                graph.add_edge(first, second, shared_groups=count)
        return graph

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, object]:
        """Headline statistics of the network."""
        num_rsvps = sum(len(rsvps) for rsvps in self._rsvps_by_event.values())
        num_checkins = sum(len(checkins) for checkins in self._checkins_by_member.values())
        return {
            "members": len(self._members),
            "groups": len(self._groups),
            "events": len(self._events),
            "rsvps": num_rsvps,
            "checkins": num_checkins,
            "weekly_slots": self._num_weekly_slots,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.summary()
        return (
            "EventBasedSocialNetwork("
            f"members={stats['members']}, groups={stats['groups']}, events={stats['events']})"
        )


def merge_topic_sets(topic_sets: Iterable[Iterable[str]], *, limit: Optional[int] = None) -> Tuple[str, ...]:
    """Union of several topic iterables, order-stable, optionally truncated."""
    seen: List[str] = []
    for topics in topic_sets:
        for topic in topics:
            if topic not in seen:
                seen.append(topic)
    if limit is not None:
        seen = seen[:limit]
    return tuple(seen)
