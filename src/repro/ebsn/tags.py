"""Topic taxonomy used by the EBSN simulator.

Meetup organises groups under broad categories ("Tech", "Music", "Outdoors",
…), each with finer topics.  The simulator mirrors this two-level structure:
a member's interests and an event's tags are sets of *topics*, and topic
overlap (weighted so that same-category topics are "close") drives the
derived interest values.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.errors import DatasetError

#: Category → topics, loosely modelled on Meetup's taxonomy.
CATEGORIES: Dict[str, Tuple[str, ...]] = {
    "tech": ("programming", "data-science", "web-dev", "robotics", "security"),
    "music": ("rock", "jazz", "classical", "electronic", "hip-hop"),
    "arts": ("painting", "photography", "theatre", "crafts"),
    "fitness": ("running", "yoga", "cycling", "climbing"),
    "food": ("cooking", "wine-tasting", "street-food"),
    "games": ("board-games", "video-games", "role-playing"),
    "outdoors": ("hiking", "camping", "kayaking"),
    "career": ("networking", "entrepreneurship", "public-speaking"),
    "language": ("spanish", "mandarin", "french"),
    "wellness": ("meditation", "nutrition"),
    "fashion": ("runway", "design", "vintage"),
    "film": ("documentary", "indie-cinema"),
}


def all_topics() -> List[str]:
    """Every topic in the taxonomy, in a stable order."""
    topics: List[str] = []
    for category in sorted(CATEGORIES):
        topics.extend(CATEGORIES[category])
    return topics


def topics_in_category(category: str) -> Tuple[str, ...]:
    """Topics of one category.

    Raises
    ------
    DatasetError
        If the category is unknown.
    """
    try:
        return CATEGORIES[category]
    except KeyError:
        raise DatasetError(
            f"unknown category {category!r}; known: {', '.join(sorted(CATEGORIES))}"
        ) from None


def category_of(topic: str) -> str:
    """Category a topic belongs to.

    Raises
    ------
    DatasetError
        If the topic is not part of the taxonomy.
    """
    for category, topics in CATEGORIES.items():
        if topic in topics:
            return category
    raise DatasetError(f"unknown topic {topic!r}")


def same_category(first: str, second: str) -> bool:
    """``True`` when two topics belong to the same category."""
    return category_of(first) == category_of(second)
