"""Interest (affinity) derivation from EBSN behaviour.

The paper (following [4, 26-28, 31]) derives a user's interest in an event
from the user's declared topics and past behaviour.  The model implemented
here combines three signals, all in ``[0, 1]``:

1. **Topic overlap** between the member's declared topics and the event's
   tags — exact topic matches count fully, same-category matches count
   partially (:func:`topic_overlap_interest`).
2. **Behavioural affinity** — how often the member attended (RSVPed yes to)
   past events carrying the event's topics.
3. **Friend co-attendance** (optional) — a small boost when many co-group
   members attended events with the same topics.

The final value is a convex combination with a small amount of noise so that
ties are rare (mirroring the real-valued affinities of the original data).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import DatasetError
from repro.ebsn.network import EventBasedSocialNetwork
from repro.ebsn.tags import category_of


def topic_overlap_interest(
    member_topics: Sequence[str],
    event_topics: Sequence[str],
    *,
    same_category_weight: float = 0.35,
) -> float:
    """Interest contribution of declared-topic overlap, in ``[0, 1]``.

    Each event topic contributes 1.0 when the member declared it, or
    ``same_category_weight`` when the member declared another topic of the
    same category; the result is averaged over the event's topics.
    """
    if not event_topics:
        return 0.0
    member_set = set(member_topics)
    member_categories = {category_of(topic) for topic in member_set} if member_set else set()
    total = 0.0
    for topic in event_topics:
        if topic in member_set:
            total += 1.0
        elif category_of(topic) in member_categories:
            total += same_category_weight
    return total / len(event_topics)


def behavioural_interest(
    attended_topic_counts: Dict[str, int],
    event_topics: Sequence[str],
) -> float:
    """Interest contribution of past attendance, in ``[0, 1]``.

    The per-topic attendance counts are squashed with ``x / (x + 2)`` so that
    a handful of attendances already signal strong affinity, then averaged
    over the event's topics.
    """
    if not event_topics:
        return 0.0
    total = 0.0
    for topic in event_topics:
        count = attended_topic_counts.get(topic, 0)
        total += count / (count + 2.0)
    return total / len(event_topics)


def derive_interest_matrix(
    network: EventBasedSocialNetwork,
    event_topics: Sequence[Tuple[str, ...]],
    *,
    topic_weight: float = 0.55,
    behaviour_weight: float = 0.35,
    noise_scale: float = 0.05,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Interest matrix (members × events) for events described by topic tuples.

    Parameters
    ----------
    network:
        The EBSN providing declared topics and attendance history.
    event_topics:
        One topic tuple per (candidate or competing) event.
    topic_weight, behaviour_weight:
        Weights of the declared-topic and behavioural components; the
        remainder up to 1.0 is the noise budget.
    noise_scale:
        Standard deviation of the additive Gaussian noise (clipped to keep
        values in ``[0, 1]``).
    rng:
        Random generator for the noise (a fixed default keeps results
        reproducible).
    """
    if topic_weight < 0 or behaviour_weight < 0 or topic_weight + behaviour_weight > 1.0:
        raise DatasetError(
            "topic_weight and behaviour_weight must be non-negative and sum to at most 1.0"
        )
    rng = rng if rng is not None else np.random.default_rng(0)
    members = network.members()
    num_members = len(members)
    num_events = len(event_topics)
    if num_members == 0 or num_events == 0:
        return np.zeros((num_members, num_events), dtype=np.float64)

    # Index every topic and category appearing anywhere, then express the scalar
    # model (topic_overlap_interest / behavioural_interest) as matrix products so
    # large member × event grids stay fast.
    topic_index: Dict[str, int] = {}
    for member in members:
        for topic in member.topics:
            topic_index.setdefault(topic, len(topic_index))
    for topics in event_topics:
        for topic in topics:
            topic_index.setdefault(topic, len(topic_index))
    for event in network.events():
        for topic in event.topics:
            topic_index.setdefault(topic, len(topic_index))
    category_index: Dict[str, int] = {}
    for topic in topic_index:
        category_index.setdefault(category_of(topic), len(category_index))

    num_topics = max(1, len(topic_index))
    num_categories = max(1, len(category_index))

    member_topic = np.zeros((num_members, num_topics), dtype=np.float64)
    member_category = np.zeros((num_members, num_categories), dtype=np.float64)
    attended_squashed = np.zeros((num_members, num_topics), dtype=np.float64)
    for member_position, member in enumerate(members):
        for topic in member.topics:
            member_topic[member_position, topic_index[topic]] = 1.0
            member_category[member_position, category_index[category_of(topic)]] = 1.0
        for topic, count in network.attended_topics(member.id).items():
            attended_squashed[member_position, topic_index[topic]] = count / (count + 2.0)

    event_topic = np.zeros((num_events, num_topics), dtype=np.float64)
    event_topic_by_category = np.zeros((num_events, num_categories), dtype=np.float64)
    topics_per_event = np.ones(num_events, dtype=np.float64)
    for event_position, topics in enumerate(event_topics):
        if topics:
            topics_per_event[event_position] = float(len(topics))
        for topic in topics:
            event_topic[event_position, topic_index[topic]] += 1.0
            event_topic_by_category[event_position, category_index[category_of(topic)]] += 1.0

    exact_matches = member_topic @ event_topic.T
    category_matches = member_category @ event_topic_by_category.T
    declared = exact_matches + same_category_extra(category_matches, exact_matches)
    declared /= topics_per_event[np.newaxis, :]
    behaviour = (attended_squashed @ event_topic.T) / topics_per_event[np.newaxis, :]

    matrix = topic_weight * declared + behaviour_weight * behaviour
    if noise_scale > 0:
        matrix += rng.normal(0.0, noise_scale, size=matrix.shape)
    return np.clip(matrix, 0.0, 1.0)


def same_category_extra(
    category_matches: np.ndarray, exact_matches: np.ndarray, *, weight: float = 0.35
) -> np.ndarray:
    """Partial credit for same-category (but not exact) topic matches."""
    return weight * np.maximum(category_matches - exact_matches, 0.0)
