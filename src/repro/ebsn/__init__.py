"""Event-Based Social Network (EBSN) substrate.

The paper's "Meetup" dataset is a dump of an event-based social network:
members join interest groups, groups organise events tagged with topics, and
members RSVP / check in.  User-event interest and per-slot social-activity
probabilities are then *derived* from this behavioural data (the same recipe
as the event-participant planning literature the paper cites).

Because the original dump is not redistributable, this subpackage implements
the substrate itself:

* :mod:`repro.ebsn.tags` — a topic taxonomy (categories and topics).
* :mod:`repro.ebsn.network` — the in-memory EBSN data model (members, groups,
  events, RSVPs, check-ins) with a co-membership social graph.
* :mod:`repro.ebsn.generator` — a configurable synthetic network generator.
* :mod:`repro.ebsn.interest_model` — interest (affinity) derivation from topic
  overlap, group membership and friend co-attendance.
* :mod:`repro.ebsn.activity_model` — social-activity probabilities derived
  from per-slot check-in histories.

:mod:`repro.datasets.meetup` assembles these pieces into an SES instance.
"""

from repro.ebsn.network import (
    CheckIn,
    EventBasedSocialNetwork,
    Group,
    Member,
    Rsvp,
    SocialEvent,
)
from repro.ebsn.generator import EBSNConfig, generate_network
from repro.ebsn.interest_model import (
    derive_interest_matrix,
    topic_overlap_interest,
)
from repro.ebsn.activity_model import derive_activity_matrix
from repro.ebsn.tags import CATEGORIES, all_topics, topics_in_category

__all__ = [
    "CheckIn",
    "EventBasedSocialNetwork",
    "Group",
    "Member",
    "Rsvp",
    "SocialEvent",
    "EBSNConfig",
    "generate_network",
    "derive_interest_matrix",
    "topic_overlap_interest",
    "derive_activity_matrix",
    "CATEGORIES",
    "all_topics",
    "topics_in_category",
]
