"""Synthetic Event-Based Social Network generator.

The generator builds a Meetup-like network with the structural features that
drive the derived interest/activity matrices:

* group popularity follows a Zipf-like law (a few very large groups, a long
  tail of small ones), so members cluster around popular categories;
* a member's declared topics are the union of their groups' topics plus a few
  individual extras, producing the sparse, clustered affinity structure of
  real EBSN data;
* past events are organised by groups and tagged with a subset of the group's
  topics;
* members RSVP mostly to events of their own groups and with probability
  increasing in topic overlap;
* check-ins concentrate on each member's two-to-four preferred weekly slots
  (evenings/weekends more likely), which later becomes the social-activity
  probability σ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import DatasetError
from repro.ebsn.network import (
    CheckIn,
    EventBasedSocialNetwork,
    Group,
    Member,
    Rsvp,
    SocialEvent,
)
from repro.ebsn.tags import CATEGORIES, topics_in_category


@dataclass
class EBSNConfig:
    """Configuration of the synthetic EBSN generator."""

    num_members: int = 2_000
    num_groups: int = 60
    num_past_events: int = 400
    num_venues: int = 25
    num_weekly_slots: int = 21
    groups_per_member_range: Tuple[int, int] = (1, 4)
    extra_topics_per_member: int = 2
    topics_per_event: Tuple[int, int] = (1, 3)
    rsvp_probability: float = 0.35
    checkins_per_member_range: Tuple[int, int] = (5, 40)
    preferred_slots_per_member: Tuple[int, int] = (2, 4)
    group_popularity_exponent: float = 1.1
    seed: Optional[int] = 11

    def __post_init__(self) -> None:
        if self.num_members < 1 or self.num_groups < 1:
            raise DatasetError("num_members and num_groups must be positive")
        if self.num_past_events < 0 or self.num_venues < 1:
            raise DatasetError("num_past_events must be >= 0 and num_venues >= 1")
        if self.num_weekly_slots < 1:
            raise DatasetError("num_weekly_slots must be positive")
        if not (0.0 <= self.rsvp_probability <= 1.0):
            raise DatasetError("rsvp_probability must lie in [0, 1]")
        for name, bounds in (
            ("groups_per_member_range", self.groups_per_member_range),
            ("topics_per_event", self.topics_per_event),
            ("checkins_per_member_range", self.checkins_per_member_range),
            ("preferred_slots_per_member", self.preferred_slots_per_member),
        ):
            low, high = bounds
            if low < 0 or high < low:
                raise DatasetError(f"invalid range for {name}: {bounds}")


def _zipf_weights(count: int, exponent: float) -> np.ndarray:
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def generate_network(config: Optional[EBSNConfig] = None, **overrides: object) -> EventBasedSocialNetwork:
    """Generate a synthetic Event-Based Social Network.

    Accepts a full :class:`EBSNConfig` or keyword overrides of its fields.
    """
    if config is None:
        config = EBSNConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise DatasetError("pass either a config object or keyword overrides, not both")

    rng = np.random.default_rng(config.seed)
    network = EventBasedSocialNetwork(num_weekly_slots=config.num_weekly_slots)
    categories = sorted(CATEGORIES)

    # ---------------------------------------------------------------- groups
    group_topics: Dict[str, Tuple[str, ...]] = {}
    for group_index in range(config.num_groups):
        category = categories[int(rng.integers(0, len(categories)))]
        available = list(topics_in_category(category))
        count = int(rng.integers(1, min(3, len(available)) + 1))
        chosen = tuple(rng.choice(available, size=count, replace=False).tolist())
        group = Group(id=f"g{group_index}", category=category, topics=chosen)
        network.add_group(group)
        group_topics[group.id] = chosen
    group_ids = [group.id for group in network.groups()]
    group_weights = _zipf_weights(len(group_ids), config.group_popularity_exponent)

    # --------------------------------------------------------------- members
    all_topic_pool = [topic for topics in CATEGORIES.values() for topic in topics]
    low_groups, high_groups = config.groups_per_member_range
    memberships: Dict[str, List[str]] = {}
    for member_index in range(config.num_members):
        member_id = f"m{member_index}"
        count = int(rng.integers(low_groups, high_groups + 1)) if high_groups > 0 else 0
        count = min(count, len(group_ids))
        joined = (
            list(rng.choice(group_ids, size=count, replace=False, p=group_weights))
            if count
            else []
        )
        declared: List[str] = []
        for group_id in joined:
            for topic in group_topics[group_id]:
                if topic not in declared:
                    declared.append(topic)
        extras = rng.choice(all_topic_pool, size=config.extra_topics_per_member, replace=False)
        for topic in extras:
            if topic not in declared:
                declared.append(str(topic))
        network.add_member(Member(id=member_id, topics=tuple(declared)))
        memberships[member_id] = joined
    for member_id, joined in memberships.items():
        for group_id in joined:
            network.add_membership(member_id, group_id)

    # ------------------------------------------------------------ past events
    topic_low, topic_high = config.topics_per_event
    for event_index in range(config.num_past_events):
        group_id = str(rng.choice(group_ids, p=group_weights))
        base_topics = list(group_topics[group_id])
        count = int(rng.integers(topic_low, topic_high + 1))
        if count <= len(base_topics):
            chosen = rng.choice(base_topics, size=max(count, 1), replace=False).tolist()
        else:
            extras = rng.choice(all_topic_pool, size=count - len(base_topics), replace=True).tolist()
            chosen = base_topics + [str(topic) for topic in extras]
        event = SocialEvent(
            id=f"pe{event_index}",
            group_id=group_id,
            topics=tuple(dict.fromkeys(chosen)),
            slot=int(rng.integers(0, config.num_weekly_slots)),
            venue=f"venue{int(rng.integers(0, config.num_venues))}",
        )
        network.add_event(event)

    # ---------------------------------------------------------------- RSVPs
    for event in network.events():
        for member_id in network.members_of_group(event.group_id):
            member_topics = set(network.member(member_id).topics)
            overlap = len(member_topics.intersection(event.topics))
            probability = min(1.0, config.rsvp_probability * (1.0 + overlap))
            if rng.random() < probability:
                network.add_rsvp(Rsvp(member_id=member_id, event_id=event.id, attending=True))

    # -------------------------------------------------------------- check-ins
    slot_low, slot_high = config.preferred_slots_per_member
    checkin_low, checkin_high = config.checkins_per_member_range
    # Evenings / weekend slots (last third of the week grid) are globally more popular.
    base_slot_weights = np.ones(config.num_weekly_slots, dtype=np.float64)
    popular_start = (2 * config.num_weekly_slots) // 3
    base_slot_weights[popular_start:] = 2.5
    base_slot_weights /= base_slot_weights.sum()
    for member in network.members():
        preferred_count = int(rng.integers(slot_low, slot_high + 1)) if slot_high else 0
        preferred_count = max(1, min(preferred_count, config.num_weekly_slots))
        preferred = rng.choice(
            config.num_weekly_slots, size=preferred_count, replace=False, p=base_slot_weights
        )
        weights = np.full(config.num_weekly_slots, 0.2, dtype=np.float64)
        weights[preferred] = 3.0
        weights /= weights.sum()
        total_checkins = int(rng.integers(checkin_low, checkin_high + 1))
        slots = rng.choice(config.num_weekly_slots, size=total_checkins, p=weights)
        for slot in slots:
            network.add_checkin(CheckIn(member_id=member.id, slot=int(slot)))

    return network


def sample_event_topics(
    rng: np.random.Generator,
    count: int,
    *,
    topics_per_event: Tuple[int, int] = (1, 3),
    category_bias: Optional[Sequence[str]] = None,
) -> List[Tuple[str, ...]]:
    """Draw topic tuples for ``count`` candidate/competing events.

    ``category_bias`` restricts sampling to topics of the given categories
    (e.g. a music festival's candidate events are mostly "music" + "arts").
    """
    if category_bias:
        pool = [topic for category in category_bias for topic in topics_in_category(category)]
    else:
        pool = [topic for topics in CATEGORIES.values() for topic in topics]
    low, high = topics_per_event
    result: List[Tuple[str, ...]] = []
    for _ in range(count):
        size = int(rng.integers(low, high + 1))
        size = max(1, min(size, len(pool)))
        chosen = rng.choice(pool, size=size, replace=False)
        result.append(tuple(str(topic) for topic in chosen))
    return result
