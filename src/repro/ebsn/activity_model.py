"""Social-activity probability derivation from check-in histories.

The paper estimates σ_u^t — the probability that user ``u`` participates in
*some* social activity during interval ``t`` — from the user's past behaviour
("e.g., number of check-ins").  The model here maps each candidate interval to
one of the EBSN's weekly slots and converts a member's per-slot check-in
counts into probabilities with additive smoothing:

.. math::

    σ_u^t = \\frac{\\text{checkins}_u[\\text{slot}(t)] + λ}
                  {\\max_s \\text{checkins}_u[s] + λ}
            · a_u

where ``a_u`` is the member's overall activity level (their total check-ins
relative to the most active member, floored so that even inactive members
keep a small participation probability).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.errors import DatasetError
from repro.ebsn.network import EventBasedSocialNetwork


def derive_activity_matrix(
    network: EventBasedSocialNetwork,
    interval_slots: Sequence[int],
    *,
    smoothing: float = 1.0,
    min_overall_activity: float = 0.25,
    rng: Optional[np.random.Generator] = None,
    noise_scale: float = 0.02,
) -> np.ndarray:
    """Activity-probability matrix (members × intervals).

    Parameters
    ----------
    network:
        The EBSN providing per-member check-in histories.
    interval_slots:
        Weekly slot index of each candidate interval (length = number of
        intervals).  Slots must be valid for the network.
    smoothing:
        Additive smoothing λ, so members with no check-ins in a slot still
        have a non-zero probability.
    min_overall_activity:
        Floor of the per-member overall activity multiplier.
    noise_scale, rng:
        Small Gaussian perturbation to avoid artificial ties.
    """
    if smoothing < 0:
        raise DatasetError("smoothing must be non-negative")
    if not (0.0 <= min_overall_activity <= 1.0):
        raise DatasetError("min_overall_activity must lie in [0, 1]")
    for slot in interval_slots:
        if not (0 <= int(slot) < network.num_weekly_slots):
            raise DatasetError(
                f"interval slot {slot} outside [0, {network.num_weekly_slots})"
            )
    rng = rng if rng is not None else np.random.default_rng(1)

    members = network.members()
    counts = np.array([network.checkin_counts(member.id) for member in members], dtype=np.float64)
    if counts.size == 0:
        return np.zeros((0, len(interval_slots)), dtype=np.float64)

    per_slot_max = counts.max(axis=1, keepdims=True)
    slot_probability = (counts + smoothing) / (per_slot_max + smoothing)

    totals = counts.sum(axis=1)
    busiest = totals.max() if totals.max() > 0 else 1.0
    overall = np.maximum(min_overall_activity, totals / busiest)

    slot_indices = np.array([int(slot) for slot in interval_slots], dtype=np.intp)
    matrix = slot_probability[:, slot_indices] * overall[:, np.newaxis]
    if noise_scale > 0:
        matrix += rng.normal(0.0, noise_scale, size=matrix.shape)
    return np.clip(matrix, 0.0, 1.0)


def weekly_slot_for_interval(interval_index: int, num_weekly_slots: int) -> int:
    """Default mapping of candidate intervals onto weekly slots (round robin)."""
    if num_weekly_slots < 1:
        raise DatasetError("num_weekly_slots must be positive")
    return interval_index % num_weekly_slots
