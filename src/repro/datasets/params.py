"""The experimental parameter grid of Table 1, plus scaled reproduction defaults.

Two grids are exposed:

* :data:`PAPER_GRID` / :data:`PAPER_DEFAULTS` — the values exactly as printed
  in Table 1 of the paper (defaults are the bold entries).  These document
  the original experiment and are used by the tests that verify the grid is
  encoded faithfully.
* :data:`REPRO_GRID` / :data:`REPRO_DEFAULTS` — the scaled-down values used
  by this repository's benchmark harness so that every figure can be
  regenerated on a laptop in pure Python.  The scaling preserves every ratio
  the paper's analysis relies on (k vs |T|, |E| vs k, competing events per
  interval, resources per event vs θ); EXPERIMENTS.md records the factor for
  each experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.errors import ExperimentError


@dataclass(frozen=True)
class ParameterGrid:
    """An immutable named parameter grid (defaults + examined values)."""

    name: str
    defaults: Dict[str, object] = field(default_factory=dict)
    values: Dict[str, Tuple[object, ...]] = field(default_factory=dict)

    def default(self, parameter: str) -> object:
        """Default value of a parameter."""
        try:
            return self.defaults[parameter]
        except KeyError:
            raise ExperimentError(
                f"unknown parameter {parameter!r} in grid {self.name!r}; "
                f"known: {', '.join(sorted(self.defaults))}"
            ) from None

    def examined(self, parameter: str) -> Tuple[object, ...]:
        """All values examined for a parameter."""
        try:
            return self.values[parameter]
        except KeyError:
            raise ExperimentError(
                f"unknown parameter {parameter!r} in grid {self.name!r}; "
                f"known: {', '.join(sorted(self.values))}"
            ) from None

    def parameters(self) -> List[str]:
        """All parameter names."""
        return sorted(self.defaults)


# --------------------------------------------------------------------------- #
# Table 1 — the paper's parameters (defaults in bold in the paper)
# --------------------------------------------------------------------------- #
PAPER_GRID = ParameterGrid(
    name="paper",
    defaults={
        "k": 100,
        "num_candidate_events": 300,          # 3k
        "num_intervals": 150,                 # 3k/2
        "competing_per_interval_range": (1, 16),   # mean 8.1 measured on Meetup
        "num_locations": 25,
        "available_resources": 30,
        "required_resources_range": (1, 15),  # Uniform [1, θ/2]
        "activity_distribution": "uniform",
        "num_users": 100_000,
        "interest_distribution": "uniform",
        "zipf_exponent": 2,
    },
    values={
        "k": (50, 70, 100, 200, 500),
        "num_candidate_events": ("k", "2k", "3k", "5k", "10k"),
        "num_intervals": ("k/5", "k/2", "k", "3k/2", "2k", "3k"),
        "competing_per_interval_range": ((1, 4), (1, 8), (1, 16), (1, 32), (1, 64)),
        "num_locations": (5, 10, 25, 50, 70),
        "available_resources": (10, 20, 30, 50, 100),
        "required_resources_range": ("[1,θ/4]", "[1,θ/3]", "[1,θ/2]", "[1,3θ/4]", "[1,θ]"),
        "activity_distribution": ("uniform", "normal"),
        "num_users": (10_000, 50_000, 100_000, 500_000, 1_000_000),
        "interest_distribution": ("uniform", "normal", "zipfian"),
        "zipf_exponent": (1, 2, 3),
    },
)

PAPER_DEFAULTS: Dict[str, object] = dict(PAPER_GRID.defaults)


# --------------------------------------------------------------------------- #
# Scaled reproduction grid (pure-Python laptop scale)
# --------------------------------------------------------------------------- #
#: Linear scale factor applied to k (and therefore |E|, |T|) and to |U|.
K_SCALE = 0.24
USER_SCALE = 0.02

REPRO_GRID = ParameterGrid(
    name="repro",
    defaults={
        "k": 24,
        "num_candidate_events": 72,           # 3k
        "num_intervals": 36,                  # 3k/2
        "competing_per_interval_range": (1, 16),
        "num_locations": 12,
        "available_resources": 30,
        "required_resources_range": (1, 15),
        "activity_distribution": "uniform",
        "num_users": 2_000,
        "interest_distribution": "uniform",
        "zipf_exponent": 2,
    },
    values={
        "k": (12, 17, 24, 48, 120),
        "num_candidate_events": ("k", "2k", "3k", "5k", "10k"),
        "num_intervals": ("k/5", "k/2", "k", "3k/2", "2k", "3k"),
        "competing_per_interval_range": ((1, 4), (1, 8), (1, 16), (1, 32), (1, 64)),
        "num_locations": (3, 6, 12, 24, 34),
        "available_resources": (10, 20, 30, 50, 100),
        "required_resources_range": ("[1,θ/4]", "[1,θ/3]", "[1,θ/2]", "[1,3θ/4]", "[1,θ]"),
        "activity_distribution": ("uniform", "normal"),
        "num_users": (200, 1_000, 2_000, 10_000, 20_000),
        "interest_distribution": ("uniform", "normal", "zipfian"),
        "zipf_exponent": (1, 2, 3),
    },
)

REPRO_DEFAULTS: Dict[str, object] = dict(REPRO_GRID.defaults)


def default(parameter: str, *, paper: bool = False) -> object:
    """Default value of a parameter in the reproduction (or the paper) grid."""
    grid = PAPER_GRID if paper else REPRO_GRID
    return grid.default(parameter)


def paper_values(parameter: str) -> Tuple[object, ...]:
    """Values examined in the paper for a parameter (Table 1 row)."""
    return PAPER_GRID.examined(parameter)


def repro_values(parameter: str) -> Tuple[object, ...]:
    """Values examined in the scaled reproduction for a parameter."""
    return REPRO_GRID.examined(parameter)


def resolve_relative(expression: object, k: int) -> int:
    """Resolve Table 1 expressions like ``"3k/2"`` or ``"k/5"`` against a concrete ``k``.

    Integers pass through unchanged; strings must be of the form ``a*k/b``
    written as ``"k"``, ``"2k"``, ``"k/5"``, ``"3k/2"`` and so on.
    """
    if isinstance(expression, bool):
        raise ExperimentError(f"cannot resolve boolean {expression!r} as a parameter value")
    if isinstance(expression, int):
        return expression
    if isinstance(expression, float):
        return int(round(expression))
    text = str(expression).strip().lower().replace(" ", "")
    if "k" not in text:
        raise ExperimentError(f"cannot resolve parameter expression {expression!r}")
    multiplier_text, _, divisor_text = text.partition("/")
    multiplier_text = multiplier_text.replace("k", "") or "1"
    try:
        multiplier = int(multiplier_text)
        divisor = int(divisor_text) if divisor_text else 1
    except ValueError:
        raise ExperimentError(f"cannot resolve parameter expression {expression!r}") from None
    if divisor <= 0:
        raise ExperimentError(f"divisor must be positive in {expression!r}")
    return max(1, (multiplier * k) // divisor)


def mean_of_range(bounds: Sequence[int]) -> float:
    """Mean of a uniform integer range given as ``(low, high)`` (inclusive)."""
    low, high = bounds
    return (float(low) + float(high)) / 2.0
