"""Synthetic SES instance generator (paper §4.1, Table 1).

The paper generates synthetic users' interest values from three distribution
families — Uniform, Normal(0.5, 0.25) and Zipfian (exponents 1–3) — and the
social activity probabilities from Uniform or Normal(0.5, 0.25).  Everything
else (number of events, intervals, competing events per interval, locations,
resources) follows the Table 1 grid.

The qualitative property the distributions are meant to induce (and that the
paper's results hinge on) is the *spread of assignment scores*:

* **Uniform/Normal** interest makes every assignment score nearly equal, so
  the bound-based pruning of INC and HOR-I barely helps (Fig. 5g, 6g, 7d).
* **Zipfian** interest concentrates attractiveness on a few events, producing
  widely spread scores and strong pruning.

The generator reproduces this by drawing, for the Zipfian family, a per-event
popularity ∝ rank^(−s) that multiplies per-user uniform noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.errors import DatasetError
from repro.core.instance import SESInstance
from repro.datasets.params import REPRO_DEFAULTS

#: Interest / activity distribution names accepted by the generator.
INTEREST_DISTRIBUTIONS = ("uniform", "normal", "zipfian")
ACTIVITY_DISTRIBUTIONS = ("uniform", "normal")


@dataclass
class SyntheticConfig:
    """Configuration of one synthetic SES instance (Table 1 parameters).

    All counts follow the scaled reproduction defaults
    (:data:`repro.datasets.params.REPRO_DEFAULTS`) unless overridden.
    """

    num_users: int = int(REPRO_DEFAULTS["num_users"])
    num_events: int = int(REPRO_DEFAULTS["num_candidate_events"])
    num_intervals: int = int(REPRO_DEFAULTS["num_intervals"])
    competing_per_interval_range: Tuple[int, int] = tuple(  # type: ignore[assignment]
        REPRO_DEFAULTS["competing_per_interval_range"]
    )
    num_locations: int = int(REPRO_DEFAULTS["num_locations"])
    available_resources: float = float(REPRO_DEFAULTS["available_resources"])
    required_resources_range: Tuple[float, float] = tuple(  # type: ignore[assignment]
        REPRO_DEFAULTS["required_resources_range"]
    )
    interest_distribution: str = str(REPRO_DEFAULTS["interest_distribution"])
    zipf_exponent: float = float(REPRO_DEFAULTS["zipf_exponent"])
    activity_distribution: str = str(REPRO_DEFAULTS["activity_distribution"])
    seed: Optional[int] = 7
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_events < 1 or self.num_intervals < 1:
            raise DatasetError("num_users, num_events and num_intervals must be positive")
        if self.num_locations < 1:
            raise DatasetError("num_locations must be positive")
        if self.interest_distribution not in INTEREST_DISTRIBUTIONS:
            raise DatasetError(
                f"unknown interest distribution {self.interest_distribution!r}; "
                f"choose one of {INTEREST_DISTRIBUTIONS}"
            )
        if self.activity_distribution not in ACTIVITY_DISTRIBUTIONS:
            raise DatasetError(
                f"unknown activity distribution {self.activity_distribution!r}; "
                f"choose one of {ACTIVITY_DISTRIBUTIONS}"
            )
        low, high = self.competing_per_interval_range
        if low < 0 or high < low:
            raise DatasetError(
                f"invalid competing_per_interval_range {self.competing_per_interval_range}"
            )
        res_low, res_high = self.required_resources_range
        if res_low < 0 or res_high < res_low:
            raise DatasetError(
                f"invalid required_resources_range {self.required_resources_range}"
            )
        if self.available_resources < 0:
            raise DatasetError("available_resources must be non-negative")
        if not self.name:
            self.name = f"synthetic-{self.interest_distribution}"

    def describe(self) -> Dict[str, object]:
        """Flat dict of the configuration (stored in the instance metadata)."""
        return {
            "num_users": self.num_users,
            "num_events": self.num_events,
            "num_intervals": self.num_intervals,
            "competing_per_interval_range": list(self.competing_per_interval_range),
            "num_locations": self.num_locations,
            "available_resources": self.available_resources,
            "required_resources_range": list(self.required_resources_range),
            "interest_distribution": self.interest_distribution,
            "zipf_exponent": self.zipf_exponent,
            "activity_distribution": self.activity_distribution,
            "seed": self.seed,
        }


def _draw_probability_matrix(
    rng: np.random.Generator,
    shape: Tuple[int, int],
    distribution: str,
    zipf_exponent: float,
) -> np.ndarray:
    """Draw a matrix of values in [0, 1] from the requested distribution family."""
    if distribution == "uniform":
        return rng.random(shape)
    if distribution == "normal":
        return np.clip(rng.normal(loc=0.5, scale=0.25, size=shape), 0.0, 1.0)
    if distribution == "zipfian":
        num_items = shape[1]
        ranks = rng.permutation(num_items) + 1
        popularity = ranks.astype(np.float64) ** (-float(zipf_exponent))
        popularity /= popularity.max()
        return rng.random(shape) * popularity[np.newaxis, :]
    raise DatasetError(f"unknown distribution {distribution!r}")


def generate_synthetic(config: Optional[SyntheticConfig] = None, **overrides: object) -> SESInstance:
    """Generate a synthetic SES instance.

    Either pass a fully-built :class:`SyntheticConfig` or keyword overrides of
    its fields (the common pattern in the experiment sweeps)::

        instance = generate_synthetic(interest_distribution="zipfian", num_users=500)
    """
    if config is None:
        config = SyntheticConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise DatasetError("pass either a config object or keyword overrides, not both")

    # One independent stream per component, so that sweeping one parameter
    # (e.g. the number of candidate events in Fig. 7) does not implicitly
    # resample the others (competing events, activity, resources).
    seed_sequence = np.random.SeedSequence(config.seed)
    interest_rng, activity_rng, competing_rng, layout_rng = (
        np.random.default_rng(child) for child in seed_sequence.spawn(4)
    )

    interest = _draw_probability_matrix(
        interest_rng,
        (config.num_users, config.num_events),
        config.interest_distribution,
        config.zipf_exponent,
    )
    activity = _draw_probability_matrix(
        activity_rng,
        (config.num_users, config.num_intervals),
        config.activity_distribution,
        config.zipf_exponent,
    )

    # Competing events: a uniform number per interval within the configured range.
    low, high = config.competing_per_interval_range
    competing_counts = competing_rng.integers(low, high + 1, size=config.num_intervals)
    competing_interval_indices = [
        interval_index
        for interval_index, count in enumerate(competing_counts)
        for _ in range(int(count))
    ]
    num_competing = len(competing_interval_indices)
    competing_interest = _draw_probability_matrix(
        competing_rng,
        (config.num_users, num_competing),
        config.interest_distribution,
        config.zipf_exponent,
    )

    locations = [
        f"loc{int(value)}"
        for value in layout_rng.integers(0, config.num_locations, config.num_events)
    ]
    res_low, res_high = config.required_resources_range
    required = layout_rng.uniform(res_low, res_high, config.num_events)

    metadata: Dict[str, object] = {"generator": "synthetic", "config": config.describe()}
    return SESInstance.from_arrays(
        interest=interest,
        activity=activity,
        competing_interest=competing_interest,
        competing_interval_indices=competing_interval_indices,
        locations=locations,
        required_resources=list(required),
        available_resources=config.available_resources,
        name=config.name,
        metadata=metadata,
    )


def generate_uniform(**overrides: object) -> SESInstance:
    """Shorthand for the paper's "Unf" dataset."""
    overrides.setdefault("interest_distribution", "uniform")
    overrides.setdefault("name", "Unf")
    return generate_synthetic(**overrides)


def generate_normal(**overrides: object) -> SESInstance:
    """Shorthand for the paper's "Nrm" dataset (results match Unf in the paper)."""
    overrides.setdefault("interest_distribution", "normal")
    overrides.setdefault("name", "Nrm")
    return generate_synthetic(**overrides)


def generate_zipfian(**overrides: object) -> SESInstance:
    """Shorthand for the paper's "Zip" dataset (exponent 2 by default)."""
    overrides.setdefault("interest_distribution", "zipfian")
    overrides.setdefault("name", "Zip")
    return generate_synthetic(**overrides)
