"""Persistence for SES instances.

Two formats are supported:

* **JSON** (``.json``) — fully self-contained, human-inspectable, suitable for
  small instances and golden-file tests.
* **NPZ bundle** (``.npz``) — the numeric matrices stored as NumPy array
  members with the entity lists embedded as a JSON string; the right choice
  for benchmark-scale instances.  Compressed by default; pass
  ``compressed=False`` to write uncompressed members, which is what makes
  ``load_npz(..., mmap=True)`` able to memory-map the matrices in place
  instead of reading them into RAM (the ``"mmap"`` storage).

The NPZ schema itself lives in :mod:`repro.core.instance_io` (so the
distributed layer can rebuild instances from shipped files without importing
the dataset layer); this module re-exports it next to the JSON format behind
one suffix-dispatching ``save_instance`` / ``load_instance`` pair.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.errors import DatasetError
from repro.core.instance import SESInstance
from repro.core.instance_io import load_npz, save_npz

PathLike = Union[str, Path]

__all__ = ["save_instance", "load_instance", "save_npz", "load_npz"]


def save_instance(
    instance: SESInstance, path: PathLike, *, compressed: bool = True
) -> Path:
    """Save an instance; the format is chosen from the file extension.

    ``compressed`` applies to the ``.npz`` format only (JSON is always plain
    text).  Returns the resolved path written to.
    """
    target = Path(path)
    if target.suffix == ".json":
        _save_json(instance, target)
    elif target.suffix == ".npz":
        save_npz(instance, target, compressed=compressed)
    else:
        raise DatasetError(
            f"unsupported instance format {target.suffix!r}; use '.json' or '.npz'"
        )
    return target


def load_instance(path: PathLike, *, mmap: bool = False) -> SESInstance:
    """Load an instance previously written by :func:`save_instance`.

    ``mmap=True`` memory-maps the matrices of an uncompressed CSR ``.npz``
    instead of materialising them (and is rejected for JSON files, which have
    nothing to map).
    """
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"instance file not found: {source}")
    if source.suffix == ".json":
        if mmap:
            raise DatasetError(
                f"{source}: JSON instances cannot be memory-mapped; save the "
                "instance as an uncompressed '.npz' first"
            )
        return _load_json(source)
    if source.suffix == ".npz":
        return load_npz(source, mmap=mmap)
    raise DatasetError(f"unsupported instance format {source.suffix!r}; use '.json' or '.npz'")


# --------------------------------------------------------------------------- #
# JSON
# --------------------------------------------------------------------------- #
def _save_json(instance: SESInstance, target: Path) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = instance.to_dict()
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def _load_json(source: Path) -> SESInstance:
    with source.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return SESInstance.from_dict(payload)
