"""Persistence for SES instances.

Two formats are supported:

* **JSON** (``.json``) — fully self-contained, human-inspectable, suitable for
  small instances and golden-file tests.
* **NPZ bundle** (``.npz``) — the numeric matrices stored as compressed NumPy
  arrays with the entity lists embedded as a JSON string; the right choice
  for benchmark-scale instances.

Both round-trip through :meth:`repro.core.instance.SESInstance.to_dict` /
``from_dict`` so they stay in sync with the instance schema automatically.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.core.errors import DatasetError
from repro.core.instance import SESInstance

PathLike = Union[str, Path]


def save_instance(instance: SESInstance, path: PathLike) -> Path:
    """Save an instance; the format is chosen from the file extension.

    Returns the resolved path written to.
    """
    target = Path(path)
    if target.suffix == ".json":
        _save_json(instance, target)
    elif target.suffix == ".npz":
        _save_npz(instance, target)
    else:
        raise DatasetError(
            f"unsupported instance format {target.suffix!r}; use '.json' or '.npz'"
        )
    return target


def load_instance(path: PathLike) -> SESInstance:
    """Load an instance previously written by :func:`save_instance`."""
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"instance file not found: {source}")
    if source.suffix == ".json":
        return _load_json(source)
    if source.suffix == ".npz":
        return _load_npz(source)
    raise DatasetError(f"unsupported instance format {source.suffix!r}; use '.json' or '.npz'")


# --------------------------------------------------------------------------- #
# JSON
# --------------------------------------------------------------------------- #
def _save_json(instance: SESInstance, target: Path) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = instance.to_dict()
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def _load_json(source: Path) -> SESInstance:
    with source.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return SESInstance.from_dict(payload)


# --------------------------------------------------------------------------- #
# NPZ
# --------------------------------------------------------------------------- #
def _save_npz(instance: SESInstance, target: Path) -> None:
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = instance.to_dict()
    # Strip the heavy numeric parts out of the JSON payload; they go into
    # dedicated compressed arrays instead.
    entities: Dict[str, object] = {
        key: value
        for key, value in payload.items()
        if key not in ("interest", "competing_interest", "activity")
    }
    np.savez_compressed(
        target,
        interest=instance.interest.values,
        competing_interest=instance.competing_interest.values,
        activity=instance.activity,
        entities=np.frombuffer(json.dumps(entities, sort_keys=True).encode("utf-8"), dtype=np.uint8),
    )


def _load_npz(source: Path) -> SESInstance:
    with np.load(source, allow_pickle=False) as bundle:
        entities = json.loads(bytes(bundle["entities"].tobytes()).decode("utf-8"))
        interest = np.asarray(bundle["interest"], dtype=np.float64)
        competing_interest = np.asarray(bundle["competing_interest"], dtype=np.float64)
        activity = np.asarray(bundle["activity"], dtype=np.float64)
    payload = dict(entities)
    # The arrays go into the payload as-is: ``from_dict`` (via
    # ``InterestMatrix.from_serialized`` and ``np.asarray``) accepts ndarrays
    # without copying, so benchmark-scale NPZ loads never materialise Python
    # lists of the matrices.
    payload["interest"] = {"shape": list(interest.shape), "values": interest}
    payload["competing_interest"] = {
        "shape": list(competing_interest.shape),
        "values": competing_interest,
    }
    payload["activity"] = activity
    return SESInstance.from_dict(payload)
