"""The "Concerts" dataset substitute: SES instances from simulated music ratings.

The paper's largest dataset is built from the Yahoo! "Music user ratings of
musical tracks, albums, artists and genres" collection: albums represent the
candidate events (music concerts of a festival) and a user's interest in an
album is derived from the user's *genre* ratings:

.. math::  µ(u, a) = \\Big(\\sum_{g ∈ G_a} r_g\\Big) / |G_a|

with ``r_g = 1`` for genres the user did not rate (the paper notes that the
alternative conventions — treating unrated genres as 0, or averaging only
over the commonly rated genres — give similar results; both are implemented
here as ``missing_policy`` options).

The raw Yahoo! data is not redistributable, so the ratings themselves are
simulated: each user has a latent preference over a small number of favourite
genres, rates a subset of genres accordingly, and albums carry one-to-four
genres with Zipf-distributed genre popularity.  This preserves the structural
property the SES experiments depend on: albums sharing genres have correlated
interest columns, and a few popular genres dominate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import DatasetError
from repro.core.instance import SESInstance
from repro.datasets.params import REPRO_DEFAULTS

#: Genre taxonomy of the simulated ratings (a few broad, popular genres first).
GENRES: Tuple[str, ...] = (
    "pop", "rock", "hip-hop", "electronic", "r-and-b", "indie", "metal", "jazz",
    "classical", "country", "folk", "latin", "reggae", "blues", "punk", "soul",
    "funk", "house", "techno", "ambient", "gospel", "opera", "ska", "grunge",
)

#: Accepted conventions for genres a user did not rate (paper §4.1).
MISSING_POLICIES = ("missing_as_one", "missing_as_zero", "common_only")


@dataclass
class ConcertsConfig:
    """Configuration of the Concerts-substitute dataset."""

    num_users: int = int(REPRO_DEFAULTS["num_users"])
    num_events: int = int(REPRO_DEFAULTS["num_candidate_events"])
    num_intervals: int = int(REPRO_DEFAULTS["num_intervals"])
    competing_per_interval_range: Tuple[int, int] = tuple(  # type: ignore[assignment]
        REPRO_DEFAULTS["competing_per_interval_range"]
    )
    num_locations: int = int(REPRO_DEFAULTS["num_locations"])
    available_resources: float = float(REPRO_DEFAULTS["available_resources"])
    required_resources_range: Tuple[float, float] = tuple(  # type: ignore[assignment]
        REPRO_DEFAULTS["required_resources_range"]
    )
    genres_per_album_range: Tuple[int, int] = (1, 4)
    rated_genres_range: Tuple[int, int] = (10, 18)
    favourite_genres_per_user: int = 4
    missing_policy: str = "missing_as_one"
    genre_popularity_exponent: float = 1.2
    seed: Optional[int] = 31
    name: str = "Concerts"

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_events < 1 or self.num_intervals < 1:
            raise DatasetError("num_users, num_events and num_intervals must be positive")
        if self.missing_policy not in MISSING_POLICIES:
            raise DatasetError(
                f"unknown missing_policy {self.missing_policy!r}; choose one of {MISSING_POLICIES}"
            )
        low, high = self.rated_genres_range
        if not (1 <= low <= high <= len(GENRES)):
            raise DatasetError(
                f"rated_genres_range {self.rated_genres_range} must lie within [1, {len(GENRES)}]"
            )
        album_low, album_high = self.genres_per_album_range
        if not (1 <= album_low <= album_high <= len(GENRES)):
            raise DatasetError(
                f"genres_per_album_range {self.genres_per_album_range} must lie within "
                f"[1, {len(GENRES)}]"
            )


def interest_from_genre_ratings(
    ratings: Dict[int, float],
    album_genres: Sequence[int],
    *,
    missing_policy: str = "missing_as_one",
) -> float:
    """The paper's album-interest formula for one user and one album.

    ``ratings`` maps genre index → rating in [0, 1] (only rated genres appear);
    ``album_genres`` is the album's genre index list.
    """
    if missing_policy not in MISSING_POLICIES:
        raise DatasetError(f"unknown missing_policy {missing_policy!r}")
    if not album_genres:
        return 0.0
    if missing_policy == "common_only":
        common = [ratings[genre] for genre in album_genres if genre in ratings]
        return float(sum(common) / len(common)) if common else 0.0
    default = 1.0 if missing_policy == "missing_as_one" else 0.0
    total = sum(ratings.get(genre, default) for genre in album_genres)
    return float(total / len(album_genres))


def _simulate_ratings(
    rng: np.random.Generator, config: ConcertsConfig
) -> Tuple[np.ndarray, np.ndarray]:
    """Simulate the user × genre rating matrix.

    Returns ``(ratings, rated_mask)`` where ``ratings`` holds values in [0, 1]
    (meaningful only where ``rated_mask`` is True).
    """
    num_genres = len(GENRES)
    ratings = np.zeros((config.num_users, num_genres), dtype=np.float64)
    rated_mask = np.zeros((config.num_users, num_genres), dtype=bool)

    genre_popularity = np.arange(1, num_genres + 1, dtype=np.float64) ** (
        -config.genre_popularity_exponent
    )
    genre_popularity /= genre_popularity.sum()

    low, high = config.rated_genres_range
    for user_index in range(config.num_users):
        favourites = rng.choice(
            num_genres, size=config.favourite_genres_per_user, replace=False, p=genre_popularity
        )
        num_rated = int(rng.integers(low, high + 1))
        rated = rng.choice(num_genres, size=num_rated, replace=False, p=genre_popularity)
        rated = np.union1d(rated, favourites)
        rated_mask[user_index, rated] = True
        base = rng.beta(1.6, 4.0, size=rated.shape)          # most ratings are lukewarm
        ratings[user_index, rated] = base
        favourite_boost = rng.beta(6.0, 1.8, size=favourites.shape)  # favourites rate high
        ratings[user_index, favourites] = favourite_boost
    return ratings, rated_mask


def _album_interest_matrix(
    ratings: np.ndarray,
    rated_mask: np.ndarray,
    album_genres: List[List[int]],
    missing_policy: str,
) -> np.ndarray:
    """Vectorised application of the paper's interest formula to every album."""
    num_users = ratings.shape[0]
    num_albums = len(album_genres)
    num_genres = ratings.shape[1]

    membership = np.zeros((num_genres, num_albums), dtype=np.float64)
    for album_index, genres in enumerate(album_genres):
        for genre in genres:
            membership[genre, album_index] = 1.0
    genres_per_album = np.maximum(membership.sum(axis=0), 1.0)

    if missing_policy == "missing_as_one":
        effective = np.where(rated_mask, ratings, 1.0)
        return (effective @ membership) / genres_per_album[np.newaxis, :]
    if missing_policy == "missing_as_zero":
        effective = np.where(rated_mask, ratings, 0.0)
        return (effective @ membership) / genres_per_album[np.newaxis, :]
    # common_only: average over the genres the user actually rated.
    rated = rated_mask.astype(np.float64)
    sums = (np.where(rated_mask, ratings, 0.0)) @ membership
    counts = rated @ membership
    with np.errstate(divide="ignore", invalid="ignore"):
        result = np.divide(sums, counts, out=np.zeros((num_users, num_albums)), where=counts > 0)
    return result


def generate_concerts(config: Optional[ConcertsConfig] = None, **overrides: object) -> SESInstance:
    """Build the Concerts-substitute SES instance.

    Accepts a full :class:`ConcertsConfig` or keyword overrides of its fields.
    """
    if config is None:
        config = ConcertsConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise DatasetError("pass either a config object or keyword overrides, not both")

    rng = np.random.default_rng(config.seed)
    num_genres = len(GENRES)
    genre_popularity = np.arange(1, num_genres + 1, dtype=np.float64) ** (
        -config.genre_popularity_exponent
    )
    genre_popularity /= genre_popularity.sum()

    ratings, rated_mask = _simulate_ratings(rng, config)

    def draw_album_genres(count: int) -> List[List[int]]:
        album_low, album_high = config.genres_per_album_range
        albums: List[List[int]] = []
        for _ in range(count):
            size = int(rng.integers(album_low, album_high + 1))
            genres = rng.choice(num_genres, size=size, replace=False, p=genre_popularity)
            albums.append([int(genre) for genre in genres])
        return albums

    candidate_genres = draw_album_genres(config.num_events)
    low, high = config.competing_per_interval_range
    competing_counts = rng.integers(low, high + 1, size=config.num_intervals)
    competing_interval_indices = [
        interval_index
        for interval_index, count in enumerate(competing_counts)
        for _ in range(int(count))
    ]
    competing_genres = draw_album_genres(len(competing_interval_indices))

    interest = _album_interest_matrix(ratings, rated_mask, candidate_genres, config.missing_policy)
    competing_interest = _album_interest_matrix(
        ratings, rated_mask, competing_genres, config.missing_policy
    )

    # Festival-goers' availability: every user has a handful of preferred slots.
    activity = np.clip(
        rng.beta(2.2, 2.8, size=(config.num_users, config.num_intervals)), 0.0, 1.0
    )

    locations = [
        f"stage{int(value)}" for value in rng.integers(0, config.num_locations, config.num_events)
    ]
    res_low, res_high = config.required_resources_range
    required = rng.uniform(res_low, res_high, config.num_events)

    metadata: Dict[str, object] = {
        "generator": "concerts-ratings",
        "num_genres": num_genres,
        "missing_policy": config.missing_policy,
        "seed": config.seed,
        "candidate_genres": [[GENRES[genre] for genre in genres] for genres in candidate_genres],
    }
    return SESInstance.from_arrays(
        interest=np.clip(interest, 0.0, 1.0),
        activity=activity,
        competing_interest=np.clip(competing_interest, 0.0, 1.0),
        competing_interval_indices=competing_interval_indices,
        locations=locations,
        required_resources=list(required),
        available_resources=config.available_resources,
        name=config.name,
        metadata=metadata,
    )
