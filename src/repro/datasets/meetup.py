"""The "Meetup" dataset substitute: SES instances derived from a simulated EBSN.

The paper's Meetup dataset (California dump from [21]; 42,444 users, ~16K
events) provides topic-based interest values and check-in-derived activity
probabilities.  This module builds an equivalent instance from the synthetic
Event-Based Social Network of :mod:`repro.ebsn`:

1. generate a network (members, interest groups, past events, RSVPs,
   check-ins);
2. sample topic tags for the *candidate* events (the events the organiser
   may schedule) and for the *competing* events;
3. derive the interest matrices from topic overlap + attendance behaviour,
   and the activity matrix from per-slot check-in counts;
4. attach locations, resource requirements and competing-event counts from
   the Table 1 defaults.

The resulting interest matrix is sparse-ish and clustered (most users care
about a handful of topics), which is exactly the structural difference
between the paper's "Meetup" curves and its Uniform synthetic curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.errors import DatasetError
from repro.core.instance import SESInstance
from repro.datasets.params import REPRO_DEFAULTS
from repro.ebsn.activity_model import derive_activity_matrix, weekly_slot_for_interval
from repro.ebsn.generator import EBSNConfig, generate_network, sample_event_topics
from repro.ebsn.interest_model import derive_interest_matrix


@dataclass
class MeetupConfig:
    """Configuration of the Meetup-substitute dataset."""

    num_users: int = int(REPRO_DEFAULTS["num_users"])
    num_events: int = int(REPRO_DEFAULTS["num_candidate_events"])
    num_intervals: int = int(REPRO_DEFAULTS["num_intervals"])
    competing_per_interval_range: Tuple[int, int] = tuple(  # type: ignore[assignment]
        REPRO_DEFAULTS["competing_per_interval_range"]
    )
    num_locations: int = int(REPRO_DEFAULTS["num_locations"])
    available_resources: float = float(REPRO_DEFAULTS["available_resources"])
    required_resources_range: Tuple[float, float] = tuple(  # type: ignore[assignment]
        REPRO_DEFAULTS["required_resources_range"]
    )
    num_groups: int = 60
    num_past_events: int = 300
    num_weekly_slots: int = 21
    seed: Optional[int] = 23
    name: str = "Meetup"
    ebsn_overrides: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_users < 1 or self.num_events < 1 or self.num_intervals < 1:
            raise DatasetError("num_users, num_events and num_intervals must be positive")
        low, high = self.competing_per_interval_range
        if low < 0 or high < low:
            raise DatasetError(
                f"invalid competing_per_interval_range {self.competing_per_interval_range}"
            )


def generate_meetup(config: Optional[MeetupConfig] = None, **overrides: object) -> SESInstance:
    """Build the Meetup-substitute SES instance.

    Accepts a full :class:`MeetupConfig` or keyword overrides of its fields.
    """
    if config is None:
        config = MeetupConfig(**overrides)  # type: ignore[arg-type]
    elif overrides:
        raise DatasetError("pass either a config object or keyword overrides, not both")

    rng = np.random.default_rng(config.seed)

    ebsn_config = EBSNConfig(
        num_members=config.num_users,
        num_groups=config.num_groups,
        num_past_events=config.num_past_events,
        num_weekly_slots=config.num_weekly_slots,
        seed=None if config.seed is None else config.seed + 1,
        **config.ebsn_overrides,  # type: ignore[arg-type]
    )
    network = generate_network(ebsn_config)

    # Candidate and competing event topics.
    candidate_topics = sample_event_topics(rng, config.num_events)
    low, high = config.competing_per_interval_range
    competing_counts = rng.integers(low, high + 1, size=config.num_intervals)
    competing_interval_indices = [
        interval_index
        for interval_index, count in enumerate(competing_counts)
        for _ in range(int(count))
    ]
    competing_topics = sample_event_topics(rng, len(competing_interval_indices))

    # Derived matrices.
    interest = derive_interest_matrix(network, candidate_topics, rng=rng)
    competing_interest = derive_interest_matrix(network, competing_topics, rng=rng)
    interval_slots = [
        weekly_slot_for_interval(interval_index, config.num_weekly_slots)
        for interval_index in range(config.num_intervals)
    ]
    activity = derive_activity_matrix(network, interval_slots, rng=rng)

    locations = [
        f"loc{int(value)}" for value in rng.integers(0, config.num_locations, config.num_events)
    ]
    res_low, res_high = config.required_resources_range
    required = rng.uniform(res_low, res_high, config.num_events)

    metadata: Dict[str, object] = {
        "generator": "meetup-ebsn",
        "network_summary": network.summary(),
        "num_groups": config.num_groups,
        "seed": config.seed,
        "candidate_topics": [list(topics) for topics in candidate_topics],
    }
    return SESInstance.from_arrays(
        interest=interest,
        activity=activity,
        competing_interest=competing_interest,
        competing_interval_indices=competing_interval_indices,
        locations=locations,
        required_resources=list(required),
        available_resources=config.available_resources,
        name=config.name,
        metadata=metadata,
    )
