"""Named dataset builders used by the experiment harness and the CLI.

The paper evaluates on four datasets — Meetup, Concerts, Unf (uniform
synthetic) and Zip (Zipfian synthetic).  The experiment figures refer to them
by name, so this module offers a single entry point::

    instance = build_dataset("Zip", num_users=2000, num_events=72, ...)

Repeated builds of the same configuration are cached per process: the figure
sweeps re-use the same base instance across algorithms and parameter points
instead of regenerating it.
"""

from __future__ import annotations

import json
from functools import lru_cache
from typing import Dict, List

from repro.core.errors import DatasetError
from repro.core.instance import SESInstance
from repro.datasets.concerts import ConcertsConfig, generate_concerts
from repro.datasets.meetup import MeetupConfig, generate_meetup
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic

#: Dataset names as used in the paper's figures.
DATASET_NAMES = ("Meetup", "Concerts", "Unf", "Nrm", "Zip")


def dataset_names() -> List[str]:
    """The dataset names understood by :func:`build_dataset`."""
    return list(DATASET_NAMES)


def _normalise(name: str) -> str:
    lowered = name.strip().lower()
    aliases = {
        "meetup": "Meetup",
        "concerts": "Concerts",
        "concert": "Concerts",
        "unf": "Unf",
        "uniform": "Unf",
        "nrm": "Nrm",
        "normal": "Nrm",
        "zip": "Zip",
        "zipf": "Zip",
        "zipfian": "Zip",
    }
    try:
        return aliases[lowered]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; known: {', '.join(DATASET_NAMES)}"
        ) from None


@lru_cache(maxsize=64)
def _build_cached(name: str, frozen_overrides: str) -> SESInstance:
    overrides: Dict[str, object] = json.loads(frozen_overrides)
    overrides = {key: _thaw(value) for key, value in overrides.items()}
    if name == "Meetup":
        return generate_meetup(MeetupConfig(**overrides))  # type: ignore[arg-type]
    if name == "Concerts":
        return generate_concerts(ConcertsConfig(**overrides))  # type: ignore[arg-type]
    if name == "Unf":
        overrides.setdefault("interest_distribution", "uniform")
        overrides.setdefault("name", "Unf")
        return generate_synthetic(SyntheticConfig(**overrides))  # type: ignore[arg-type]
    if name == "Nrm":
        overrides.setdefault("interest_distribution", "normal")
        overrides.setdefault("name", "Nrm")
        return generate_synthetic(SyntheticConfig(**overrides))  # type: ignore[arg-type]
    if name == "Zip":
        overrides.setdefault("interest_distribution", "zipfian")
        overrides.setdefault("name", "Zip")
        return generate_synthetic(SyntheticConfig(**overrides))  # type: ignore[arg-type]
    raise DatasetError(f"unknown dataset {name!r}")


def _thaw(value: object) -> object:
    """JSON round-trips tuples as lists; restore tuples for range parameters."""
    if isinstance(value, list):
        return tuple(value)
    return value


def build_dataset(name: str, **overrides: object) -> SESInstance:
    """Build (or fetch from the per-process cache) a named dataset instance.

    Keyword overrides are passed to the dataset's config class; see
    :class:`~repro.datasets.synthetic.SyntheticConfig`,
    :class:`~repro.datasets.meetup.MeetupConfig` and
    :class:`~repro.datasets.concerts.ConcertsConfig` for the accepted fields.
    """
    canonical = _normalise(name)
    frozen = json.dumps(overrides, sort_keys=True, default=list)
    return _build_cached(canonical, frozen)


def clear_dataset_cache() -> None:
    """Drop every cached instance (mainly useful in tests)."""
    _build_cached.cache_clear()
