"""Dataset substrates used by the paper's evaluation (§4.1).

The paper evaluates on two real datasets — a Meetup dump and the Yahoo! Music
ratings collection — and on synthetic interest matrices drawn from Uniform,
Normal and Zipfian distributions.  The real datasets are not redistributable,
so this package provides faithful *simulators* that produce SES instances
with the same structural characteristics (see DESIGN.md for the substitution
rationale):

* :mod:`repro.datasets.synthetic` — Uniform / Normal / Zipfian generators
  driven by the Table 1 parameter grid.
* :mod:`repro.datasets.meetup` — an Event-Based Social Network simulator
  (topic-overlap interest, check-in-derived activity), standing in for the
  Meetup dataset.
* :mod:`repro.datasets.concerts` — a music-ratings simulator (genres, albums,
  user ratings) using the paper's exact interest-derivation formula, standing
  in for the Yahoo! "Concerts" dataset.
* :mod:`repro.datasets.params` — the Table 1 parameter grid and the scaled
  reproduction defaults.
* :mod:`repro.datasets.loaders` — JSON/NPZ persistence for instances.
"""

from repro.datasets.params import (
    PAPER_DEFAULTS,
    PAPER_GRID,
    REPRO_DEFAULTS,
    REPRO_GRID,
    ParameterGrid,
    default,
    paper_values,
    repro_values,
)
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.datasets.meetup import MeetupConfig, generate_meetup
from repro.datasets.concerts import ConcertsConfig, generate_concerts
from repro.datasets.loaders import load_instance, save_instance
from repro.datasets.builders import build_dataset, dataset_names

__all__ = [
    "PAPER_DEFAULTS",
    "PAPER_GRID",
    "REPRO_DEFAULTS",
    "REPRO_GRID",
    "ParameterGrid",
    "default",
    "paper_values",
    "repro_values",
    "SyntheticConfig",
    "generate_synthetic",
    "MeetupConfig",
    "generate_meetup",
    "ConcertsConfig",
    "generate_concerts",
    "load_instance",
    "save_instance",
    "build_dataset",
    "dataset_names",
]
