"""repro — reproduction of "Social Event Scheduling" (Bikakis, Kalogeraki, Gunopulos; EDBT 2019).

The package implements the Social Event Scheduling (SES) problem: given
candidate events, candidate time intervals, already-scheduled competing
events and a set of users, select and place ``k`` events into intervals so
that the expected total attendance is maximised, subject to location and
resource constraints.

Top-level re-exports cover the public API most users need:

* :class:`~repro.core.instance.SESInstance` — the problem instance container.
* :class:`~repro.core.schedule.Schedule` — an event-to-interval assignment set.
* :class:`~repro.core.scoring.ScoringEngine` — the Luce-choice attendance model.
* :class:`~repro.core.execution.ExecutionConfig` and
  :func:`~repro.core.execution.register_backend` — the execution layer: one
  config object selecting a registered backend strategy (``scalar``,
  ``batch``, ``parallel``, ``process``, ``cluster``) and its knobs;
  :func:`~repro.core.execution.available_backends` lists the registry.
* :func:`~repro.algorithms.registry.get_scheduler` and the scheduler classes
  (:class:`~repro.algorithms.alg.AlgScheduler`, :class:`~repro.algorithms.inc.IncScheduler`,
  :class:`~repro.algorithms.hor.HorScheduler`, :class:`~repro.algorithms.hor_i.HorIScheduler`,
  :class:`~repro.algorithms.top.TopScheduler`, :class:`~repro.algorithms.rand.RandScheduler`).
* Dataset builders in :mod:`repro.datasets`.
* The experiment harness in :mod:`repro.experiments`.

``docs/ARCHITECTURE.md`` has the layer diagram and the backend decision
table; ``docs/PAPER_MAPPING.md`` maps each paper concept to its module,
entry point and locking test suite.
"""

from __future__ import annotations

from repro._version import __version__
from repro.core.counters import ComputationCounter
from repro.core.entities import CompetingEvent, Event, Organizer, TimeInterval, User
from repro.core.errors import (
    InfeasibleAssignmentError,
    InstanceValidationError,
    ReproError,
    ScheduleError,
)
from repro.core.execution import (
    ExecutionBackend,
    ExecutionConfig,
    ScoringPlan,
    available_backends,
    available_plans,
    register_backend,
    register_plan,
)
from repro.core.instance import SESInstance
from repro.core.schedule import Assignment, Schedule
from repro.core.scoring import DEFAULT_BACKEND, ScoringEngine


def __getattr__(name: str):
    """Registry-backed ``SCORING_BACKENDS`` / ``BULK_BACKENDS`` re-exports.

    Resolved on access (not snapshotted at import), so custom backends added
    through :func:`register_backend` appear here too.
    """
    if name in ("SCORING_BACKENDS", "BULK_BACKENDS"):
        from repro.core import execution

        return getattr(execution, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from repro.algorithms.base import SchedulerResult
from repro.algorithms.registry import available_schedulers, get_scheduler
from repro.algorithms.alg import AlgScheduler
from repro.algorithms.inc import IncScheduler
from repro.algorithms.hor import HorScheduler
from repro.algorithms.hor_i import HorIScheduler
from repro.algorithms.top import TopScheduler
from repro.algorithms.rand import RandScheduler
from repro.algorithms.exact import ExactScheduler

# Importing the analysis module registers the "blocked" scoring plan, so any
# `repro.*` import (which initialises this package first) makes it selectable
# by name everywhere — mirroring how the cluster backend registers itself.
import repro.analysis.blocks  # noqa: E402,F401  (registration side effect)

__all__ = [
    "__version__",
    "ComputationCounter",
    "CompetingEvent",
    "Event",
    "Organizer",
    "TimeInterval",
    "User",
    "ReproError",
    "InstanceValidationError",
    "InfeasibleAssignmentError",
    "ScheduleError",
    "SESInstance",
    "Assignment",
    "Schedule",
    "ScoringEngine",
    "ExecutionBackend",
    "ExecutionConfig",
    "ScoringPlan",
    "available_backends",
    "available_plans",
    "register_backend",
    "register_plan",
    "SCORING_BACKENDS",
    "BULK_BACKENDS",
    "DEFAULT_BACKEND",
    "SchedulerResult",
    "available_schedulers",
    "get_scheduler",
    "AlgScheduler",
    "IncScheduler",
    "HorScheduler",
    "HorIScheduler",
    "TopScheduler",
    "RandScheduler",
    "ExactScheduler",
]
