"""Cross-cutting validation helpers for instances, schedules and results.

:mod:`repro.core.instance` validates structural consistency at construction
time; this module adds *semantic* checks used by tests, the CLI and the
experiment harness:

* :func:`validate_solution` — verify that a scheduler's output respects the
  requested ``k``, the feasibility constraints and the claimed utility.
* :func:`instance_report` — a dictionary of sanity statistics useful when
  debugging dataset generators.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.constraints import violations
from repro.core.errors import InstanceValidationError
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule
from repro.core.scoring import utility_of_schedule


def validate_solution(
    instance: SESInstance,
    schedule: Schedule,
    *,
    k: int,
    claimed_utility: float | None = None,
    utility_tolerance: float = 1e-6,
) -> List[str]:
    """Return a list of problems with a scheduler's output (empty when OK).

    Checks performed:

    * at most ``k`` events are scheduled, and every index is in range;
    * the schedule respects the location and resources constraints;
    * when ``claimed_utility`` is given, it matches a from-scratch evaluation
      of the schedule within ``utility_tolerance`` (relative).
    """
    problems: List[str] = []
    if len(schedule) > k:
        problems.append(f"schedule contains {len(schedule)} assignments but k={k}")
    indices_ok = True
    for assignment in schedule.assignments():
        if not (0 <= assignment.event_index < instance.num_events):
            problems.append(f"event index {assignment.event_index} out of range")
            indices_ok = False
        if not (0 <= assignment.interval_index < instance.num_intervals):
            problems.append(f"interval index {assignment.interval_index} out of range")
            indices_ok = False
    if not indices_ok:
        # Constraint and utility checks would index out of bounds.
        return problems
    problems.extend(violations(instance, schedule))
    if claimed_utility is not None:
        actual = utility_of_schedule(instance, schedule)
        scale = max(1.0, abs(actual))
        if not math.isclose(claimed_utility, actual, rel_tol=utility_tolerance, abs_tol=1e-9 * scale):
            problems.append(
                f"claimed utility {claimed_utility:.6f} differs from recomputed "
                f"utility {actual:.6f}"
            )
    return problems


def assert_valid_solution(
    instance: SESInstance,
    schedule: Schedule,
    *,
    k: int,
    claimed_utility: float | None = None,
) -> None:
    """Raise :class:`InstanceValidationError` when :func:`validate_solution` finds problems."""
    problems = validate_solution(instance, schedule, k=k, claimed_utility=claimed_utility)
    if problems:
        raise InstanceValidationError("; ".join(problems))


def instance_report(instance: SESInstance) -> Dict[str, object]:
    """Sanity statistics for a problem instance.

    Includes the :meth:`~repro.core.instance.SESInstance.describe` summary plus
    derived quantities that matter for the algorithms' behaviour (how many
    events fit in an interval given θ, average competing pressure, …).
    """
    report: Dict[str, object] = dict(instance.describe())
    resources = instance.event_required_resources()
    theta = instance.available_resources
    if len(resources) and resources.max() > 0 and math.isfinite(theta):
        report["max_events_per_interval_by_resources"] = int(theta // max(resources.min(), 1e-9))
        report["mean_required_resources"] = float(resources.mean())
    else:
        report["max_events_per_interval_by_resources"] = None
        report["mean_required_resources"] = float(resources.mean()) if len(resources) else 0.0
    competing_per_interval = [
        len(instance.competing_events_at(t)) for t in range(instance.num_intervals)
    ]
    report["mean_competing_per_interval"] = (
        sum(competing_per_interval) / len(competing_per_interval) if competing_per_interval else 0.0
    )
    report["max_competing_per_interval"] = max(competing_per_interval, default=0)
    location_counts: Dict[str, int] = {}
    for location in instance.event_locations():
        location_counts[location] = location_counts.get(location, 0) + 1
    report["max_events_sharing_location"] = max(location_counts.values(), default=0)
    return report
