"""Exact user equivalence classes of an instance's interest structure.

Users whose µ rows, σ rows and competing-interest rows are all identical are
indistinguishable to every scoring kernel under *every* schedule: identical µ
rows imply identical per-interval scheduled sums forever, so the per-user
attendance terms of equivalent users coincide element for element.  Mining
the classes once per instance therefore yields a decomposition that never
needs refreshing as the schedule grows.

This module is the storage-agnostic mining primitive: chunked NumPy lexsort
partition refinement over the event-major row blocks (never materialising
more than one block, so million-user instances stay inside the engine's
chunk-size memory envelope).  Two consumers build on it:

* the scoring engine's structural per-interval Φ bound
  (:meth:`~repro.core.scoring.ScoringEngine.interval_score_bound`) — one
  genuine term per pattern instead of one per user;
* the ``blocked`` scoring plan and the BBK-style dense-block analysis of
  :mod:`repro.analysis.blocks`, which re-exports this module's public names
  as part of the block-decomposition subsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.storage import EventRowSource


@dataclass(frozen=True)
class InterestStructure:
    """Exact user equivalence classes of one instance's interest structure.

    Users belong to the same class iff their µ rows, σ rows and
    competing-interest rows are all identical — a property preserved under
    every schedule, so the decomposition is mined once per instance.

    Attributes
    ----------
    labels:
        ``labels[u]`` is the class index of user ``u``.  Classes are
        canonically numbered by first occurrence: class 0 contains user 0.
    representatives:
        ``representatives[c]`` is the smallest user index of class ``c``
        (ascending, one per class).
    counts:
        ``counts[c]`` is the class size (multiplicity of the pattern).
    """

    labels: np.ndarray
    representatives: np.ndarray
    counts: np.ndarray

    @property
    def num_users(self) -> int:
        """Users covered by the decomposition."""
        return int(self.labels.size)

    @property
    def num_classes(self) -> int:
        """Distinct interest patterns."""
        return int(self.representatives.size)

    @property
    def duplication_ratio(self) -> float:
        """``|U| / P`` — the expansion factor a blocked kernel exploits."""
        if self.num_classes == 0:
            return 1.0
        return self.num_users / self.num_classes

    def stats(self) -> Dict[str, object]:
        """Flat structure counters (benchmark / plan reporting)."""
        return {
            "num_users": self.num_users,
            "num_classes": self.num_classes,
            "duplication_ratio": self.duplication_ratio,
            "largest_class": int(self.counts.max()) if self.num_classes else 0,
        }


def _refine_labels(labels: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Refine a user partition by a block of per-user value rows.

    ``block`` has one row per attribute (an event's µ column, an interval's σ
    or competing-interest column) and one column per user; two users stay in
    the same class iff they already were *and* agree on every row of the
    block.  One :func:`numpy.lexsort` over ``rows + 1`` keys per call — the
    partition-refinement work is proportional to the block, never to the full
    attribute set.
    """
    if labels.size == 0 or block.shape[0] == 0:
        return labels
    # lexsort sorts by the *last* key first: current labels are the primary
    # key so refinement only ever splits classes, never merges them.
    keys = np.vstack((block[::-1], labels[np.newaxis, :].astype(np.float64)))
    order = np.lexsort(keys)
    sorted_keys = keys[:, order]
    boundary = np.empty(order.size, dtype=bool)
    boundary[0] = True
    if order.size > 1:
        boundary[1:] = np.any(sorted_keys[:, 1:] != sorted_keys[:, :-1], axis=0)
    compact = np.cumsum(boundary) - 1
    refined = np.empty_like(labels)
    refined[order] = compact
    return refined


def _canonicalise(labels: np.ndarray) -> InterestStructure:
    """Renumber classes by first occurrence and derive the class tables."""
    num_users = labels.size
    if num_users == 0:
        empty = np.empty(0, dtype=np.intp)
        return InterestStructure(labels=empty, representatives=empty.copy(), counts=empty.copy())
    num_classes = int(labels.max()) + 1
    first_seen = np.full(num_classes, num_users, dtype=np.intp)
    np.minimum.at(first_seen, labels, np.arange(num_users, dtype=np.intp))
    order = np.argsort(first_seen, kind="stable")
    rank = np.empty(num_classes, dtype=np.intp)
    rank[order] = np.arange(num_classes, dtype=np.intp)
    canonical = rank[labels]
    return InterestStructure(
        labels=canonical,
        representatives=first_seen[order],
        counts=np.bincount(canonical, minlength=num_classes).astype(np.intp),
    )


def mine_structure(
    event_rows: EventRowSource,
    sigma: np.ndarray,
    comp: np.ndarray,
    chunk_size: int,
) -> InterestStructure:
    """Mine the equivalence classes from prebuilt kernel inputs.

    ``event_rows`` streams the µ matrix event-major (one block of at most
    ``chunk_size`` events at a time, so the memory envelope matches the bulk
    kernels); ``sigma`` and ``comp`` are the ``(|U|, |T|)`` static arrays of
    :func:`~repro.core.scoring.build_static_arrays`.  The result is
    deterministic and storage-independent: every registered storage densifies
    to the same float values, and first-occurrence canonical numbering does
    not depend on chunk boundaries.
    """
    num_users = sigma.shape[0]
    labels = np.zeros(num_users, dtype=np.intp)
    num_events = event_rows.num_rows
    step = max(1, chunk_size)
    for start in range(0, num_events, step):
        stop = min(start + step, num_events)
        mu_rows, _ = event_rows.block(start, stop)
        labels = _refine_labels(labels, mu_rows)
    # σ and comp are (|U|, |T|) with small |T|: one refinement block each.
    labels = _refine_labels(labels, np.ascontiguousarray(sigma.T))
    labels = _refine_labels(labels, np.ascontiguousarray(comp.T))
    return _canonicalise(labels)


__all__ = ["InterestStructure", "mine_structure"]
