"""Pluggable storage for interest matrices: dense, CSR-sparse and memory-mapped.

The paper's EBSN setting produces interest matrices that are overwhelmingly
zero at realistic scale — a 10⁶-user × 10³-event instance is 8 GB as a dense
``float64`` matrix but a few hundred MB as compressed sparse rows.  This
module turns the representation into a strategy:

* :class:`DenseStore` — the in-memory 2-D array the library always used
  (the ``"dense"`` storage, still the default);
* :class:`SparseStore` — an event-major CSR built with plain NumPy arrays
  (``indptr`` / ``indices`` / ``data``, no SciPy): the ``"sparse"`` storage;
* :class:`MmapStore` — the same CSR whose arrays are ``np.memmap`` views
  into an uncompressed ``.npz`` on disk, streaming blocks without ever
  materialising the matrix: the ``"mmap"`` storage.

Stores register by name through :func:`register_store`, mirroring the
execution layer's ``register_backend()`` registry, so external code can plug
in new representations.  The scoring kernels consume stores through
:class:`EventRowSource`, which yields event-major row blocks; sparse and
mmap stores densify one block at a time (bounded by the engine's chunk
size), feed the *same* kernel as the dense path and therefore produce
bit-identical scores, utilities, schedules and counters.

``CSR`` here is always event-major: row ``e`` of the CSR holds the non-zero
``µ(u, e)`` entries of event ``e`` over users, because the scoring kernels
iterate event rows and the competing-load precomputation gathers event
columns.  Within a row, user indices are strictly ascending.
"""

from __future__ import annotations

import os
import zipfile
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

import numpy as np

from repro.core.errors import (
    InstanceValidationError,
    SolverError,
    StorageCapacityError,
)

#: Name of the storage used when none is requested.
DEFAULT_STORAGE = "dense"

#: Environment variable overriding :func:`dense_capacity_limit` (elements).
DENSE_CAPACITY_ENV = "REPRO_DENSE_CAPACITY"

#: Default ceiling on dense materialisation, in elements (~3.2 GB float64).
DEFAULT_DENSE_CAPACITY = 400_000_000


def dense_capacity_limit() -> int:
    """Maximum number of elements a dense interest matrix may materialise.

    Reads ``REPRO_DENSE_CAPACITY`` on every call (so tests and benchmarks can
    lower it per-process) and falls back to :data:`DEFAULT_DENSE_CAPACITY`.
    """
    raw = os.environ.get(DENSE_CAPACITY_ENV)
    if raw is None:
        return DEFAULT_DENSE_CAPACITY
    try:
        limit = int(raw)
    except ValueError:
        raise InstanceValidationError(
            f"{DENSE_CAPACITY_ENV} must be an integer element count, got {raw!r}"
        ) from None
    if limit <= 0:
        raise InstanceValidationError(
            f"{DENSE_CAPACITY_ENV} must be positive, got {limit}"
        )
    return limit


def ensure_dense_capacity(shape: Tuple[int, int]) -> None:
    """Raise :class:`StorageCapacityError` if a dense ``shape`` is too large.

    Called *before* allocating, so an oversized request fails with a clear
    error instead of an allocator failure (or a machine brought to its knees).
    """
    num_users, num_items = int(shape[0]), int(shape[1])
    elements = num_users * num_items
    limit = dense_capacity_limit()
    if elements > limit:
        gib = elements * 8 / 2**30
        raise StorageCapacityError(
            f"dense interest matrix of shape {num_users} x {num_items} needs "
            f"{elements} elements ({gib:.1f} GiB as float64), above the dense "
            f"capacity limit of {limit} elements; use the 'sparse' or 'mmap' "
            f"storage for instances of this size, or raise {DENSE_CAPACITY_ENV}"
        )


def _last_write_wins(
    user_indices: np.ndarray,
    item_indices: np.ndarray,
    values: np.ndarray,
    *,
    num_users: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Resolve duplicate ``(user, item)`` cells keeping the final occurrence.

    Shared by every store's ``with_updates`` so duplicate resolution is
    identical (and therefore bit-identical) across representations.
    """
    flat = item_indices * np.int64(num_users) + user_indices
    _, keep_reversed = np.unique(flat[::-1], return_index=True)
    keep = flat.shape[0] - 1 - keep_reversed
    return user_indices[keep], item_indices[keep], values[keep]


# --------------------------------------------------------------------------- #
# Store hierarchy
# --------------------------------------------------------------------------- #
class InterestStore:
    """Abstract representation of a ``|U| × |H|`` interest matrix.

    Concrete stores expose the matrix through dense *views* — single columns,
    column gathers and event-major row blocks — so the scoring layer never
    needs to know how the values are laid out.  Every accessor returns plain
    ``float64`` arrays holding exactly the values of the logical matrix, which
    is what keeps every storage bit-identical under the scoring kernels.
    """

    #: Registry name of the storage (e.g. ``"dense"``); set by subclasses.
    name: str = ""
    #: One-line description shown by catalogs and docs.
    description: str = ""

    # -- shape ---------------------------------------------------------- #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(num_users, num_items)``."""
        raise NotImplementedError

    @property
    def num_users(self) -> int:
        return int(self.shape[0])

    @property
    def num_items(self) -> int:
        return int(self.shape[1])

    @property
    def size(self) -> int:
        """Number of logical elements (``num_users * num_items``)."""
        return self.num_users * self.num_items

    @property
    def nnz(self) -> int:
        """Number of explicitly stored entries."""
        raise NotImplementedError

    @property
    def is_file_backed(self) -> bool:
        """Whether the store streams from a file on disk."""
        return False

    @property
    def path(self) -> Optional[str]:
        """Backing file of a file-backed store, ``None`` otherwise."""
        return None

    # -- construction --------------------------------------------------- #
    @classmethod
    def from_dense(cls, values: np.ndarray, *, path: Optional[str] = None) -> "InterestStore":
        """Build this store from a validated dense ``float64`` matrix."""
        raise NotImplementedError

    # -- functional updates (used by the online service's mutations) ----- #
    def with_updates(
        self,
        user_indices: np.ndarray,
        item_indices: np.ndarray,
        values: np.ndarray,
    ) -> "InterestStore":
        """A new store with the ``(user, item)`` cells overwritten by ``values``.

        Later triples win over earlier ones for the same cell.  The update
        never round-trips through a dense matrix: the dense store copies its
        array (capacity-guarded as always), the sparse store rebuilds its CSR
        from coordinate arrays, and the mmap store returns an *in-memory*
        sparse store (a mutated matrix no longer matches its backing file).
        """
        raise NotImplementedError

    def with_appended_item(self, column: np.ndarray) -> "InterestStore":
        """A new store with one item column appended (for add-event mutations)."""
        raise NotImplementedError

    def without_item(self, item_index: int) -> "InterestStore":
        """A new store with one item column removed (for remove-event mutations)."""
        raise NotImplementedError

    # -- dense views ---------------------------------------------------- #
    def column(self, item_index: int) -> np.ndarray:
        """Dense ``(num_users,)`` column of one item."""
        raise NotImplementedError

    def columns(self, item_indices: Sequence[int]) -> np.ndarray:
        """Dense ``(num_users, k)`` gather of ``k`` item columns."""
        raise NotImplementedError

    def item_rows(self, start: int, stop: int) -> np.ndarray:
        """Dense event-major block ``µ.T[start:stop]`` of shape ``(stop-start, num_users)``."""
        raise NotImplementedError

    def item_rows_at(self, item_indices: np.ndarray) -> np.ndarray:
        """Dense event-major gather ``µ.T[item_indices]``."""
        raise NotImplementedError

    def row(self, user_index: int) -> np.ndarray:
        """Dense ``(num_items,)`` row of one user."""
        raise NotImplementedError

    def value(self, user_index: int, item_index: int) -> float:
        """A single ``µ(u, i)`` entry."""
        raise NotImplementedError

    def to_dense(self) -> np.ndarray:
        """Materialise the full ``(num_users, num_items)`` array (capacity-guarded)."""
        raise NotImplementedError

    # -- statistics ----------------------------------------------------- #
    def mean(self) -> float:
        """Mean over all logical entries (0.0 for an empty matrix)."""
        raise NotImplementedError

    def density(self, *, threshold: float = 0.0) -> float:
        """Fraction of logical entries strictly greater than ``threshold``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        users, items = self.shape
        return f"{type(self).__name__}(num_users={users}, num_items={items}, nnz={self.nnz})"


class DenseStore(InterestStore):
    """The in-memory 2-D array representation (the ``"dense"`` storage)."""

    name = "dense"
    description = "in-memory 2-D float64 array (the default)"

    __slots__ = ("_values",)

    def __init__(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        ensure_dense_capacity(values.shape)
        self._values = values

    @classmethod
    def from_dense(cls, values: np.ndarray, *, path: Optional[str] = None) -> "DenseStore":
        return cls(values)

    @classmethod
    def zeros(cls, num_users: int, num_items: int) -> "DenseStore":
        ensure_dense_capacity((num_users, num_items))
        return cls(np.zeros((num_users, num_items), dtype=np.float64))

    @property
    def values(self) -> np.ndarray:
        """The underlying ``(num_users, num_items)`` array (a view, not a copy)."""
        return self._values

    @property
    def shape(self) -> Tuple[int, int]:
        return self._values.shape  # type: ignore[return-value]

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self._values))

    def column(self, item_index: int) -> np.ndarray:
        return self._values[:, item_index]

    def columns(self, item_indices: Sequence[int]) -> np.ndarray:
        return self._values[:, np.asarray(item_indices, dtype=np.int64)]

    def item_rows(self, start: int, stop: int) -> np.ndarray:
        return np.ascontiguousarray(self._values.T[start:stop])

    def item_rows_at(self, item_indices: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(self._values.T[np.asarray(item_indices, dtype=np.int64)])

    def row(self, user_index: int) -> np.ndarray:
        return self._values[user_index, :]

    def value(self, user_index: int, item_index: int) -> float:
        return float(self._values[user_index, item_index])

    def with_updates(
        self,
        user_indices: np.ndarray,
        item_indices: np.ndarray,
        values: np.ndarray,
    ) -> "DenseStore":
        user_indices = np.asarray(user_indices, dtype=np.int64)
        item_indices = np.asarray(item_indices, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        user_indices, item_indices, values = _last_write_wins(
            user_indices, item_indices, values, num_users=self.num_users
        )
        out = np.array(self._values, copy=True)
        out[user_indices, item_indices] = values
        return DenseStore(out)

    def with_appended_item(self, column: np.ndarray) -> "DenseStore":
        column = np.asarray(column, dtype=np.float64).reshape(self.num_users, 1)
        return DenseStore(np.concatenate([self._values, column], axis=1))

    def without_item(self, item_index: int) -> "DenseStore":
        return DenseStore(np.delete(self._values, item_index, axis=1))

    def to_dense(self) -> np.ndarray:
        return self._values

    def mean(self) -> float:
        if self._values.size == 0:
            return 0.0
        return float(self._values.mean())

    def density(self, *, threshold: float = 0.0) -> float:
        if self._values.size == 0:
            return 0.0
        return float(np.count_nonzero(self._values > threshold) / self._values.size)


def _validate_csr(
    shape: Tuple[int, int],
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    *,
    deep: bool,
) -> None:
    """Structural (and optionally value-level) checks on event-major CSR arrays."""
    num_users, num_items = shape
    if indptr.ndim != 1 or indptr.shape[0] != num_items + 1:
        raise InstanceValidationError(
            f"CSR indptr must have length num_items + 1 = {num_items + 1}, "
            f"got shape {indptr.shape}"
        )
    if int(indptr[0]) != 0:
        raise InstanceValidationError("CSR indptr must start at 0")
    if indices.shape != data.shape or indices.ndim != 1:
        raise InstanceValidationError(
            f"CSR indices/data must be equal-length 1-D arrays, got shapes "
            f"{indices.shape} and {data.shape}"
        )
    if int(indptr[-1]) != indices.shape[0]:
        raise InstanceValidationError(
            f"CSR indptr ends at {int(indptr[-1])} but {indices.shape[0]} "
            "entries are stored"
        )
    if not deep:
        return
    if np.any(np.diff(indptr) < 0):
        raise InstanceValidationError("CSR indptr must be non-decreasing")
    if indices.size:
        if int(indices.min()) < 0 or int(indices.max()) >= num_users:
            raise InstanceValidationError(
                f"CSR user indices must lie in [0, {num_users})"
            )
        low, high = float(np.min(data)), float(np.max(data))
        if low < 0.0 or high > 1.0:
            raise InstanceValidationError(
                "interest values must lie in [0, 1]; found values in "
                f"[{low:.4f}, {high:.4f}]"
            )


class SparseStore(InterestStore):
    """Event-major CSR over plain NumPy arrays (the ``"sparse"`` storage).

    Row ``e`` of the CSR is event ``e``'s user vector: ``indices`` holds the
    user indices with non-zero interest (ascending within a row) and ``data``
    the matching ``µ`` values.  Built from the same ``(user, item, value)``
    triples that feed ``InterestMatrix.from_entries`` — no SciPy involved.
    """

    name = "sparse"
    description = "event-major CSR (indptr/indices/data) held in memory"

    __slots__ = ("_shape", "_indptr", "_indices", "_data")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        self._shape = (int(shape[0]), int(shape[1]))
        self._indptr = indptr
        self._indices = indices
        self._data = data
        if validate:
            _validate_csr(self._shape, indptr, indices, data, deep=True)

    # -- construction --------------------------------------------------- #
    @classmethod
    def from_dense(cls, values: np.ndarray, *, path: Optional[str] = None) -> "SparseStore":
        values = np.asarray(values, dtype=np.float64)
        transposed = values.T
        item_idx, user_idx = np.nonzero(transposed)
        data = np.ascontiguousarray(transposed[item_idx, user_idx], dtype=np.float64)
        counts = np.bincount(item_idx, minlength=values.shape[1])
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return cls(
            values.shape, indptr, user_idx.astype(np.int64), data, validate=False
        )

    @classmethod
    def from_coo(
        cls,
        num_users: int,
        num_items: int,
        user_indices: np.ndarray,
        item_indices: np.ndarray,
        data: np.ndarray,
        *,
        deduplicated: bool = True,
    ) -> "SparseStore":
        """Build from parallel coordinate arrays (one triple per entry).

        ``deduplicated=True`` asserts the caller already removed duplicate
        ``(user, item)`` cells; the arrays are sorted into event-major order
        here.  This is the vectorised back end of ``from_entries``.
        """
        user_indices = np.asarray(user_indices, dtype=np.int64)
        item_indices = np.asarray(item_indices, dtype=np.int64)
        data = np.asarray(data, dtype=np.float64)
        if not deduplicated:
            flat = item_indices * np.int64(num_users) + user_indices
            _, keep_rev = np.unique(flat[::-1], return_index=True)
            keep = flat.shape[0] - 1 - keep_rev
            user_indices, item_indices, data = (
                user_indices[keep],
                item_indices[keep],
                data[keep],
            )
        order = np.lexsort((user_indices, item_indices))
        user_indices = user_indices[order]
        item_indices = item_indices[order]
        data = np.ascontiguousarray(data[order])
        counts = np.bincount(item_indices, minlength=num_items)
        indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
        return cls((num_users, num_items), indptr, user_indices, data)

    # -- CSR array access (used by serialisation and shipping) ----------- #
    @property
    def csr_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(indptr, indices, data)`` — the raw CSR arrays."""
        return self._indptr, self._indices, self._data

    # -- store API ------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        return self._shape

    @property
    def nnz(self) -> int:
        return int(self._indptr[-1])

    def column(self, item_index: int) -> np.ndarray:
        lo, hi = int(self._indptr[item_index]), int(self._indptr[item_index + 1])
        out = np.zeros(self._shape[0], dtype=np.float64)
        out[self._indices[lo:hi]] = self._data[lo:hi]
        return out

    def columns(self, item_indices: Sequence[int]) -> np.ndarray:
        item_indices = np.asarray(item_indices, dtype=np.int64)
        out = np.zeros((self._shape[0], item_indices.shape[0]), dtype=np.float64)
        for position, item_index in enumerate(item_indices):
            lo, hi = int(self._indptr[item_index]), int(self._indptr[item_index + 1])
            out[self._indices[lo:hi], position] = self._data[lo:hi]
        return out

    def item_rows(self, start: int, stop: int) -> np.ndarray:
        lo, hi = int(self._indptr[start]), int(self._indptr[stop])
        out = np.zeros((stop - start, self._shape[0]), dtype=np.float64)
        lengths = np.diff(self._indptr[start : stop + 1])
        block_rows = np.repeat(np.arange(stop - start), lengths)
        out[block_rows, self._indices[lo:hi]] = self._data[lo:hi]
        return out

    def item_rows_at(self, item_indices: np.ndarray) -> np.ndarray:
        item_indices = np.asarray(item_indices, dtype=np.int64)
        out = np.zeros((item_indices.shape[0], self._shape[0]), dtype=np.float64)
        for position, item_index in enumerate(item_indices):
            lo, hi = int(self._indptr[item_index]), int(self._indptr[item_index + 1])
            out[position, self._indices[lo:hi]] = self._data[lo:hi]
        return out

    def row(self, user_index: int) -> np.ndarray:
        out = np.zeros(self._shape[1], dtype=np.float64)
        for item_index in range(self._shape[1]):
            out[item_index] = self.value(user_index, item_index)
        return out

    def value(self, user_index: int, item_index: int) -> float:
        lo, hi = int(self._indptr[item_index]), int(self._indptr[item_index + 1])
        segment = self._indices[lo:hi]
        position = int(np.searchsorted(segment, user_index))
        if position < segment.shape[0] and int(segment[position]) == user_index:
            return float(self._data[lo + position])
        return 0.0

    def _coo_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The stored entries as in-memory ``(users, items, data)`` triples."""
        indptr = np.asarray(self._indptr, dtype=np.int64)
        users = np.array(self._indices, dtype=np.int64)
        data = np.array(self._data, dtype=np.float64)
        items = np.repeat(
            np.arange(self._shape[1], dtype=np.int64), np.diff(indptr)
        )
        return users, items, data

    def with_updates(
        self,
        user_indices: np.ndarray,
        item_indices: np.ndarray,
        values: np.ndarray,
    ) -> "SparseStore":
        base_users, base_items, base_data = self._coo_arrays()
        # Updates go AFTER the existing entries so last-write-wins lets them
        # overwrite; an explicit zero update then deletes the stored entry.
        users = np.concatenate([base_users, np.asarray(user_indices, dtype=np.int64)])
        items = np.concatenate([base_items, np.asarray(item_indices, dtype=np.int64)])
        data = np.concatenate([base_data, np.asarray(values, dtype=np.float64)])
        users, items, data = _last_write_wins(
            users, items, data, num_users=self._shape[0]
        )
        nonzero = data != 0.0
        return SparseStore.from_coo(
            self._shape[0],
            self._shape[1],
            users[nonzero],
            items[nonzero],
            data[nonzero],
        )

    def with_appended_item(self, column: np.ndarray) -> "SparseStore":
        column = np.asarray(column, dtype=np.float64).reshape(-1)
        stored = np.nonzero(column)[0].astype(np.int64)
        indptr = np.asarray(self._indptr, dtype=np.int64)
        new_indptr = np.concatenate([indptr, [indptr[-1] + stored.shape[0]]])
        new_indices = np.concatenate([np.array(self._indices, dtype=np.int64), stored])
        new_data = np.concatenate(
            [np.array(self._data, dtype=np.float64), column[stored]]
        )
        return SparseStore(
            (self._shape[0], self._shape[1] + 1),
            new_indptr.astype(np.int64),
            new_indices,
            new_data,
        )

    def without_item(self, item_index: int) -> "SparseStore":
        indptr = np.asarray(self._indptr, dtype=np.int64)
        indices = np.array(self._indices, dtype=np.int64)
        data = np.array(self._data, dtype=np.float64)
        lo, hi = int(indptr[item_index]), int(indptr[item_index + 1])
        new_indptr = np.concatenate(
            [indptr[: item_index + 1], indptr[item_index + 2 :] - (hi - lo)]
        ).astype(np.int64)
        return SparseStore(
            (self._shape[0], self._shape[1] - 1),
            new_indptr,
            np.concatenate([indices[:lo], indices[hi:]]),
            np.concatenate([data[:lo], data[hi:]]),
            validate=False,
        )

    def to_dense(self) -> np.ndarray:
        ensure_dense_capacity(self._shape)
        out = np.zeros(self._shape, dtype=np.float64)
        lengths = np.diff(self._indptr)
        item_of_entry = np.repeat(np.arange(self._shape[1]), lengths)
        out[np.asarray(self._indices), item_of_entry] = np.asarray(self._data)
        return out

    def mean(self) -> float:
        if self.size == 0:
            return 0.0
        return float(np.asarray(self._data, dtype=np.float64).sum() / self.size)

    def density(self, *, threshold: float = 0.0) -> float:
        if self.size == 0:
            return 0.0
        stored = int(np.count_nonzero(np.asarray(self._data) > threshold))
        if threshold < 0.0:
            stored += self.size - self._data.shape[0]
        return float(stored / self.size)


# --------------------------------------------------------------------------- #
# Memory-mapped NPZ members
# --------------------------------------------------------------------------- #
def map_npz_member(path: str, member: str, *, mode: str = "r") -> np.ndarray:
    """Memory-map one array member of an *uncompressed* ``.npz`` file.

    ``np.savez`` stores each array as a ``ZIP_STORED`` (uncompressed) member
    holding plain ``.npy`` bytes, so the array data lives contiguously in the
    file and can be mapped in place: the data offset is the member's local
    header offset plus the local header size plus the ``.npy`` header.  A
    compressed member cannot be mapped and raises a clear error.
    """
    member_name = member if member.endswith(".npy") else member + ".npy"
    with zipfile.ZipFile(path) as archive:
        try:
            info = archive.getinfo(member_name)
        except KeyError:
            raise InstanceValidationError(
                f"{path}: no member {member_name!r} in archive"
            ) from None
        if info.compress_type != zipfile.ZIP_STORED:
            raise InstanceValidationError(
                f"{path}: member {member_name!r} is compressed and cannot be "
                "memory-mapped; re-save with compressed=False"
            )
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local_header = handle.read(30)
        if local_header[:4] != b"PK\x03\x04":
            raise InstanceValidationError(
                f"{path}: corrupt local header for member {member_name!r}"
            )
        name_length = int.from_bytes(local_header[26:28], "little")
        extra_length = int.from_bytes(local_header[28:30], "little")
        handle.seek(info.header_offset + 30 + name_length + extra_length)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran_order, dtype = np.lib.format.read_array_header_2_0(handle)
        else:  # pragma: no cover - npy format 3.0 stores non-latin names only
            raise InstanceValidationError(
                f"{path}: unsupported .npy format version {version} "
                f"for member {member_name!r}"
            )
        data_offset = handle.tell()
    order = "F" if fortran_order else "C"
    if int(np.prod(shape)) == 0:
        # mmap cannot map zero bytes; an empty array needs no backing anyway.
        return np.zeros(shape, dtype=dtype, order=order)
    return np.memmap(path, dtype=dtype, mode=mode, offset=data_offset, shape=shape, order=order)


class MmapStore(SparseStore):
    """File-backed event-major CSR streaming from an uncompressed NPZ.

    The three CSR arrays are ``np.memmap`` views into the backing file, so
    opening a store reads only the ZIP directory and the array headers; data
    pages are faulted in on demand as the scoring kernels walk event blocks.
    The matrix is never materialised (the ``"mmap"`` storage).
    """

    name = "mmap"
    description = "event-major CSR memory-mapped from an uncompressed .npz"

    __slots__ = ("_path", "_prefix")

    def __init__(
        self,
        shape: Tuple[int, int],
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        *,
        path: str,
        prefix: str = "interest",
        validate: bool = True,
    ) -> None:
        # Deep validation would stream every page of the backing file at open
        # time; structural checks on the (small) indptr are enough here
        # because spill() validates values before writing.
        super().__init__(shape, indptr, indices, data, validate=False)
        if validate:
            _validate_csr(self._shape, indptr, indices, data, deep=False)
        self._path = os.fspath(path)
        self._prefix = str(prefix)

    @property
    def is_file_backed(self) -> bool:
        return True

    @property
    def path(self) -> Optional[str]:
        return self._path

    @property
    def prefix(self) -> str:
        """Member-name prefix of the CSR arrays inside the backing NPZ."""
        return self._prefix

    @classmethod
    def open(cls, path: str, *, prefix: str = "interest") -> "MmapStore":
        """Map the CSR members ``{prefix}_indptr/indices/data`` of ``path``."""
        shape_member = map_npz_member(path, f"{prefix}_shape")
        shape = (int(shape_member[0]), int(shape_member[1]))
        return cls(
            shape,
            map_npz_member(path, f"{prefix}_indptr"),
            map_npz_member(path, f"{prefix}_indices"),
            map_npz_member(path, f"{prefix}_data"),
            path=path,
            prefix=prefix,
        )

    @classmethod
    def spill(cls, store: InterestStore, path: str, *, prefix: str = "interest") -> "MmapStore":
        """Write ``store`` as an uncompressed CSR NPZ at ``path`` and map it."""
        members = csr_members(store, prefix=prefix)
        # np.savez appends ".npz" to extension-less paths; normalise first so
        # the path we re-open is the path actually written.
        target = os.fspath(path)
        if not target.endswith(".npz"):
            target += ".npz"
        np.savez(target, **members)
        return cls.open(target, prefix=prefix)

    @classmethod
    def from_dense(cls, values: np.ndarray, *, path: Optional[str] = None) -> "MmapStore":
        if path is None:
            raise InstanceValidationError(
                "the 'mmap' storage is file-backed: pass a path (or directory) "
                "to spill the matrix to"
            )
        return cls.spill(SparseStore.from_dense(values), path)


def as_sparse(store: InterestStore) -> SparseStore:
    """View/convert any store as an (in-memory-API) event-major CSR."""
    if isinstance(store, SparseStore):
        return store
    return SparseStore.from_dense(store.to_dense())


def csr_members(store: InterestStore, *, prefix: str = "interest") -> Dict[str, np.ndarray]:
    """The four NPZ members serialising ``store`` as event-major CSR."""
    sparse = as_sparse(store)
    indptr, indices, data = sparse.csr_arrays
    return {
        f"{prefix}_shape": np.asarray(sparse.shape, dtype=np.int64),
        f"{prefix}_indptr": np.asarray(indptr, dtype=np.int64),
        f"{prefix}_indices": np.asarray(indices, dtype=np.int64),
        f"{prefix}_data": np.asarray(data, dtype=np.float64),
    }


# --------------------------------------------------------------------------- #
# Store registry (mirrors the execution layer's register_backend())
# --------------------------------------------------------------------------- #
_STORE_REGISTRY: Dict[str, Type[InterestStore]] = {}

#: Built-in storage names protected from unregistration.
_BUILTIN_STORE_NAMES = ("dense", "sparse", "mmap")


def register_store(store_class: Type[InterestStore], *, replace_existing: bool = False):
    """Register an :class:`InterestStore` subclass under its ``name``.

    Mirrors ``register_backend()``: duplicate names raise unless
    ``replace_existing=True``, and the class is returned so the function can
    be used as a decorator.
    """
    name = getattr(store_class, "name", "")
    if not name or not isinstance(name, str):
        raise SolverError(
            f"store class {store_class!r} must define a non-empty string 'name'"
        )
    if name in _STORE_REGISTRY and not replace_existing:
        raise SolverError(
            f"storage {name!r} is already registered; pass replace_existing=True "
            "to override it"
        )
    _STORE_REGISTRY[name] = store_class
    return store_class


def unregister_store(name: str) -> None:
    """Remove a non-built-in storage from the registry."""
    if name in _BUILTIN_STORE_NAMES:
        raise SolverError(f"built-in storage {name!r} cannot be unregistered")
    if name not in _STORE_REGISTRY:
        raise SolverError(f"storage {name!r} is not registered")
    del _STORE_REGISTRY[name]


def available_stores() -> List[str]:
    """Registered storage names, in registration order."""
    return list(_STORE_REGISTRY)


def get_store(name: str) -> Type[InterestStore]:
    """Look up a storage class by name, with a friendly error."""
    try:
        return _STORE_REGISTRY[name]
    except KeyError:
        known = ", ".join(available_stores())
        raise SolverError(f"unknown storage {name!r}; available: {known}") from None


def store_catalog() -> Dict[str, str]:
    """``{name: description}`` for every registered storage."""
    return {name: cls.description for name, cls in _STORE_REGISTRY.items()}


register_store(DenseStore)
register_store(SparseStore)
register_store(MmapStore)


def convert_store(
    store: InterestStore, storage: str, *, path: Optional[str] = None
) -> InterestStore:
    """Re-represent ``store`` under the named storage.

    Dense → sparse goes through CSR extraction without an extra dense copy;
    sparse/mmap → dense is capacity-guarded; anything → mmap requires a
    ``path`` to spill to.  Conversions never change a single value, only the
    layout, so the scoring results stay bit-identical.
    """
    target = get_store(storage)
    if type(store) is target and not (target is MmapStore and path is not None):
        return store
    if target is DenseStore:
        return DenseStore(store.to_dense())
    if target is SparseStore:
        return as_sparse(store) if not isinstance(store, MmapStore) else SparseStore(
            store.shape,
            *(np.array(arr) for arr in store.csr_arrays),
            validate=False,
        )
    if target is MmapStore:
        if path is None:
            raise InstanceValidationError(
                "converting to the 'mmap' storage needs a path to spill the "
                "matrix to"
            )
        return MmapStore.spill(store, path)
    return target.from_dense(store.to_dense(), path=path)


# --------------------------------------------------------------------------- #
# Event-major row sources consumed by the scoring kernels
# --------------------------------------------------------------------------- #
class EventRowSource:
    """Chunked provider of event-major ``(µ.T, value·µ.T)`` row blocks.

    The scoring kernels iterate events in blocks; a row source yields, for
    rows ``[start, stop)``, the pair ``(mu_rows, value_mu_rows)`` where
    ``value_mu_rows[r] = value(event_r) * mu_rows[r]``.  The dense engine
    precomputes both matrices once and serves views; sparse and mmap stores
    densify one block at a time, so peak memory is bounded by the chunk size
    regardless of the instance size.
    """

    #: Whether blocks are zero-copy views over precomputed dense arrays.
    is_dense = False

    @property
    def num_rows(self) -> int:
        raise NotImplementedError

    def block(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        """Event-major blocks ``(mu_rows, value_mu_rows)`` for rows ``[start, stop)``."""
        raise NotImplementedError

    def select(self, indices: np.ndarray) -> "EventRowSource":
        """A row source restricted (and reordered) to ``indices``."""
        raise NotImplementedError


class DenseEventRows(EventRowSource):
    """Zero-copy views over precomputed dense ``mu_rows`` / ``value_mu_rows``."""

    __slots__ = ("_mu_rows", "_value_mu_rows")

    is_dense = True

    def __init__(self, mu_rows: np.ndarray, value_mu_rows: np.ndarray) -> None:
        self._mu_rows = mu_rows
        self._value_mu_rows = value_mu_rows

    @property
    def num_rows(self) -> int:
        return int(self._mu_rows.shape[0])

    @property
    def arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The full backing pair ``(mu_rows, value_mu_rows)``."""
        return self._mu_rows, self._value_mu_rows

    def block(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._mu_rows[start:stop], self._value_mu_rows[start:stop]

    def select(self, indices: np.ndarray) -> "DenseEventRows":
        return DenseEventRows(self._mu_rows[indices], self._value_mu_rows[indices])


class StoreEventRows(EventRowSource):
    """Blocks densified on demand from a sparse or memory-mapped store.

    ``value_mu_rows`` is computed per block as ``values[:, None] * mu_rows``
    — elementwise-identical to the dense engine's precompute-then-slice, so
    scores stay bit-identical.
    """

    __slots__ = ("_store", "_event_values", "_indices")

    def __init__(
        self,
        store: InterestStore,
        event_values: np.ndarray,
        indices: Optional[np.ndarray] = None,
    ) -> None:
        self._store = store
        self._event_values = np.asarray(event_values, dtype=np.float64)
        self._indices = None if indices is None else np.asarray(indices, dtype=np.int64)

    @property
    def num_rows(self) -> int:
        if self._indices is None:
            return self._store.num_items
        return int(self._indices.shape[0])

    def block(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        if self._indices is None:
            mu_rows = self._store.item_rows(start, stop)
            values = self._event_values[start:stop]
        else:
            selected = self._indices[start:stop]
            mu_rows = self._store.item_rows_at(selected)
            values = self._event_values[selected]
        return mu_rows, values[:, np.newaxis] * mu_rows

    def select(self, indices: np.ndarray) -> "StoreEventRows":
        indices = np.asarray(indices, dtype=np.int64)
        if self._indices is not None:
            indices = self._indices[indices]
        return StoreEventRows(self._store, self._event_values, indices)


__all__ = [
    "DEFAULT_STORAGE",
    "DENSE_CAPACITY_ENV",
    "DEFAULT_DENSE_CAPACITY",
    "dense_capacity_limit",
    "ensure_dense_capacity",
    "InterestStore",
    "DenseStore",
    "SparseStore",
    "MmapStore",
    "as_sparse",
    "csr_members",
    "map_npz_member",
    "register_store",
    "unregister_store",
    "available_stores",
    "get_store",
    "store_catalog",
    "convert_store",
    "EventRowSource",
    "DenseEventRows",
    "StoreEventRows",
]
