"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch a single class to handle any library-level failure while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class InstanceValidationError(ReproError):
    """A problem instance is structurally invalid.

    Raised when entity lists and matrices disagree in shape, probabilities
    fall outside ``[0, 1]``, resources are negative, or a competing event
    refers to an unknown time interval.
    """


class ScheduleError(ReproError):
    """A schedule operation is inconsistent.

    Raised when an event is assigned twice, an assignment is removed that
    does not exist, or indices are out of range.
    """


class InfeasibleAssignmentError(ReproError):
    """An assignment violates the location or resource constraints."""


class DatasetError(ReproError):
    """A dataset generator or loader received invalid configuration/data."""


class StorageCapacityError(ReproError):
    """A dense materialisation would exceed the configured capacity limit.

    Raised when an interest matrix is about to be allocated (or densified)
    with more elements than :func:`repro.core.storage.dense_capacity_limit`
    allows.  The message points at the ``sparse`` / ``mmap`` stores, which
    handle such instances without materialising.
    """


class ExperimentError(ReproError):
    """An experiment definition or harness invocation is invalid."""


class SolverError(ReproError):
    """A scheduler was configured or invoked incorrectly."""
