"""Feasibility constraints of the SES problem (paper §2.1).

A schedule ``S`` is feasible when, for every interval ``t``:

1. no two events scheduled at ``t`` share a location (*location constraint*);
2. the required resources of the events scheduled at ``t`` do not exceed the
   organiser's available resources θ (*resources constraint*);
3. when the interval declares a ``capacity``, at most that many events are
   scheduled at ``t`` (*capacity constraint* — a beyond-the-paper extension
   used by the online service; ``capacity=None`` keeps the paper's setting).

An assignment ``α_e^t`` is *feasible* w.r.t. a schedule when adding it keeps
both constraints satisfied for ``t``, and *valid* when it is feasible and the
event is not already scheduled.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.errors import InfeasibleAssignmentError
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule


class ConstraintChecker:
    """Incremental feasibility checker bound to one instance.

    The checker caches per-event locations and resource requirements as plain
    Python lists so that the solvers' inner loops avoid attribute lookups on
    dataclasses, and offers both schedule-based checks (recomputed from the
    schedule) and state-based checks (maintained incrementally via
    :meth:`commit`) — the latter are what the schedulers use.
    """

    def __init__(self, instance: SESInstance) -> None:
        self._instance = instance
        self._locations = instance.event_locations()
        self._resources = [event.required_resources for event in instance.events]
        self._theta = instance.available_resources
        num_intervals = instance.num_intervals
        self._capacities = [interval.capacity for interval in instance.intervals]
        self._used_locations: list[set[str]] = [set() for _ in range(num_intervals)]
        self._used_resources: list[float] = [0.0] * num_intervals
        self._used_counts: list[int] = [0] * num_intervals

    # ------------------------------------------------------------------ #
    # Incremental state
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Forget every committed assignment."""
        for used in self._used_locations:
            used.clear()
        self._used_resources = [0.0] * self._instance.num_intervals
        self._used_counts = [0] * self._instance.num_intervals

    def commit(self, event_index: int, interval_index: int) -> None:
        """Record that ``event_index`` has been scheduled at ``interval_index``.

        Raises
        ------
        InfeasibleAssignmentError
            If the assignment violates the location or resources constraint
            given the previously committed assignments.
        """
        if not self.is_feasible(event_index, interval_index):
            raise InfeasibleAssignmentError(
                f"assignment of event {event_index} to interval {interval_index} violates "
                "the location, resources or capacity constraint"
            )
        self._used_locations[interval_index].add(self._locations[event_index])
        self._used_resources[interval_index] += self._resources[event_index]
        self._used_counts[interval_index] += 1

    def release(self, event_index: int, interval_index: int) -> None:
        """Undo a previous :meth:`commit` (used by the exact solver's backtracking)."""
        self._used_locations[interval_index].discard(self._locations[event_index])
        self._used_resources[interval_index] -= self._resources[event_index]
        if self._used_resources[interval_index] < 0:
            self._used_resources[interval_index] = 0.0
        if self._used_counts[interval_index] > 0:
            self._used_counts[interval_index] -= 1

    # ------------------------------------------------------------------ #
    # Checks against the incremental state
    # ------------------------------------------------------------------ #
    def is_feasible(self, event_index: int, interval_index: int) -> bool:
        """``True`` when adding the assignment keeps the interval feasible."""
        if self._locations[event_index] in self._used_locations[interval_index]:
            return False
        capacity = self._capacities[interval_index]
        if capacity is not None and self._used_counts[interval_index] >= capacity:
            return False
        needed = self._used_resources[interval_index] + self._resources[event_index]
        return needed <= self._theta + 1e-12

    def remaining_resources(self, interval_index: int) -> float:
        """Resources still available in an interval."""
        return self._theta - self._used_resources[interval_index]

    def used_locations(self, interval_index: int) -> set[str]:
        """Locations already occupied in an interval (a copy)."""
        return set(self._used_locations[interval_index])


# ---------------------------------------------------------------------- #
# Schedule-level (stateless) checks
# ---------------------------------------------------------------------- #
def is_assignment_feasible(
    instance: SESInstance,
    schedule: Schedule,
    event_index: int,
    interval_index: int,
) -> bool:
    """Check feasibility of adding ``α_e^t`` to ``schedule`` (stateless)."""
    locations = instance.event_locations()
    event_location = locations[event_index]
    capacity = instance.intervals[interval_index].capacity
    if capacity is not None and schedule.num_events_at(interval_index) >= capacity:
        return False
    total_resources = instance.events[event_index].required_resources
    for other in schedule.events_at(interval_index):
        if locations[other] == event_location:
            return False
        total_resources += instance.events[other].required_resources
    return total_resources <= instance.available_resources + 1e-12


def is_assignment_valid(
    instance: SESInstance,
    schedule: Schedule,
    event_index: int,
    interval_index: int,
) -> bool:
    """Feasible *and* the event is not already scheduled (paper's "valid")."""
    if schedule.is_scheduled(event_index):
        return False
    return is_assignment_feasible(instance, schedule, event_index, interval_index)


def is_schedule_feasible(instance: SESInstance, schedule: Schedule) -> bool:
    """Check the location and resources constraints for a whole schedule."""
    return not list(violations(instance, schedule))


def violations(instance: SESInstance, schedule: Schedule) -> Iterable[str]:
    """Yield human-readable descriptions of every constraint violation."""
    locations = instance.event_locations()
    theta = instance.available_resources
    for interval_index in sorted(schedule.used_intervals()):
        events_here = sorted(schedule.events_at(interval_index))
        seen_locations: dict[str, int] = {}
        total_resources = 0.0
        for event_index in events_here:
            location = locations[event_index]
            if location in seen_locations:
                yield (
                    f"interval {interval_index}: events {seen_locations[location]} and "
                    f"{event_index} share location {location!r}"
                )
            else:
                seen_locations[location] = event_index
            total_resources += instance.events[event_index].required_resources
        if total_resources > theta + 1e-12:
            yield (
                f"interval {interval_index}: required resources {total_resources:.3f} exceed "
                f"available θ={theta:.3f}"
            )
        capacity = instance.intervals[interval_index].capacity
        if capacity is not None and len(events_here) > capacity:
            yield (
                f"interval {interval_index}: {len(events_here)} events exceed "
                f"capacity {capacity}"
            )


def assert_schedule_feasible(instance: SESInstance, schedule: Schedule) -> None:
    """Raise :class:`InfeasibleAssignmentError` listing every violation, if any."""
    problems = list(violations(instance, schedule))
    if problems:
        raise InfeasibleAssignmentError("; ".join(problems))
