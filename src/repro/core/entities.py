"""Entities of the Social Event Scheduling problem (paper §2.1).

The SES problem involves five kinds of entities:

* :class:`Event` — a *candidate* event the organiser may schedule.  Each event
  has a location (the venue/stage hosting it) and a resource requirement.
* :class:`TimeInterval` — a candidate time period available for scheduling.
* :class:`CompetingEvent` — an event already scheduled by a third party that
  overlaps one of the candidate intervals and competes for the same audience.
* :class:`User` — a potential attendee, with an optional importance weight
  (the "weights over the users" extension mentioned in §2.1).
* :class:`Organizer` — the entity that owns the available resources θ.

The classes are intentionally lightweight, immutable dataclasses: all heavy
numeric data (interest values, activity probabilities) lives in the instance
container (:mod:`repro.core.instance`) as NumPy arrays indexed by entity
position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class Event:
    """A candidate event ``e ∈ E``.

    Parameters
    ----------
    id:
        Stable external identifier (unique among candidate events).
    location:
        Identifier of the place (stage, room, hall) hosting the event.  Two
        events sharing a location cannot be scheduled in the same interval
        (location constraint).
    required_resources:
        The amount ξ_e of organiser resources consumed when the event is
        scheduled (resources constraint).
    value:
        Multiplier applied to the event's expected attendance when computing
        utility.  ``1.0`` reproduces the paper; other values implement the
        "profit-oriented" extension of §2.1.
    cost:
        Fixed organisation cost subtracted from the utility when the event is
        scheduled (profit-oriented extension; ``0.0`` reproduces the paper).
    tags:
        Optional descriptive topics (used by the dataset substrates when
        deriving interest, ignored by the solvers).
    """

    id: str
    location: str
    required_resources: float = 0.0
    value: float = 1.0
    cost: float = 0.0
    tags: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.required_resources < 0:
            raise ValueError(
                f"event {self.id!r}: required_resources must be >= 0, "
                f"got {self.required_resources}"
            )
        if self.value < 0:
            raise ValueError(f"event {self.id!r}: value must be >= 0, got {self.value}")


@dataclass(frozen=True)
class TimeInterval:
    """A candidate time interval ``t ∈ T``.

    ``start`` and ``end`` are optional wall-clock anchors (hours from an
    arbitrary origin) used by dataset builders for human-readable scenarios;
    the solvers only use the interval's index.  ``capacity`` optionally caps
    how many candidate events may be scheduled in the interval (a venue with a
    fixed number of stages); ``None`` reproduces the paper's unbounded setting.
    """

    id: str
    label: str = ""
    start: Optional[float] = None
    end: Optional[float] = None
    capacity: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start is not None and self.end is not None and self.end < self.start:
            raise ValueError(
                f"interval {self.id!r}: end ({self.end}) precedes start ({self.start})"
            )
        if self.capacity is not None and (
            not isinstance(self.capacity, int)
            or isinstance(self.capacity, bool)
            or self.capacity < 1
        ):
            raise ValueError(
                f"interval {self.id!r}: capacity must be a positive integer or None, "
                f"got {self.capacity!r}"
            )

    @property
    def duration(self) -> Optional[float]:
        """Length of the interval in the same unit as ``start``/``end``."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start


@dataclass(frozen=True)
class CompetingEvent:
    """An already-scheduled third-party event ``c ∈ C``.

    Each competing event is associated with exactly one candidate interval
    (the interval its schedule overlaps); users interested in it are less
    likely to attend candidate events placed in that interval.
    """

    id: str
    interval_id: str
    tags: Tuple[str, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class User:
    """A potential attendee ``u ∈ U``.

    ``weight`` implements the §2.1 extension of weighting users (e.g. by
    influence); the paper's formulation corresponds to ``weight == 1.0``.
    """

    id: str
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError(f"user {self.id!r}: weight must be >= 0, got {self.weight}")


@dataclass(frozen=True)
class Organizer:
    """The organiser owning θ available resources (staff, budget, materials)."""

    name: str = "organizer"
    available_resources: float = float("inf")

    def __post_init__(self) -> None:
        if self.available_resources < 0:
            raise ValueError(
                f"organizer {self.name!r}: available_resources must be >= 0, "
                f"got {self.available_resources}"
            )
