"""Instrumentation counters reproducing the paper's evaluation metrics.

The experimental section of the paper (§4.1) measures, besides utility and
wall-clock time:

* the *number of computations for assignment scores*, where each assignment
  score costs ``|U|`` elementary computations (one per user), and
* the *number of assignments examined* (the "search space" of Fig. 10b).

:class:`ComputationCounter` tracks both, plus a few secondary counters that
are useful when analysing the algorithms (how many of the score computations
were initial vs. update recomputations, how many selections were made).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict


@dataclass
class ComputationCounter:
    """Mutable counter bundle shared between a scoring engine and a scheduler.

    Attributes
    ----------
    score_computations:
        Number of assignment-score evaluations (Eq. 4 of the paper).
    user_computations:
        ``score_computations`` weighted by the number of users of each
        evaluation — the paper's "number of computations" metric.
    initial_computations:
        Score evaluations performed while generating the initial assignments.
    update_computations:
        Score evaluations performed to refresh stale assignments after a
        selection (the quantity the INC/HOR/HOR-I schemes reduce).
    assignments_examined:
        Number of assignment entries touched while selecting, updating or
        validating (the Fig. 10b "search space" metric).
    assignments_generated:
        Number of (event, interval) assignment entries materialised.
    selections:
        Number of assignments added to the schedule.
    """

    num_users: int = 0
    score_computations: int = 0
    user_computations: int = 0
    initial_computations: int = 0
    update_computations: int = 0
    assignments_examined: int = 0
    assignments_generated: int = 0
    selections: int = 0
    extra: Dict[str, int] = field(default_factory=dict)

    def count_score(self, *, initial: bool = False, num_users: int | None = None) -> None:
        """Record one assignment-score evaluation.

        Parameters
        ----------
        initial:
            ``True`` if the evaluation belongs to the initial assignment
            generation phase, ``False`` if it is an update.
        num_users:
            Number of users involved; defaults to the counter's configured
            ``num_users``.
        """
        self.count_scores(1, initial=initial, num_users=num_users)

    def count_scores(
        self, amount: int, *, initial: bool = False, num_users: int | None = None
    ) -> None:
        """Record ``amount`` assignment-score evaluations in one call.

        Used by the batched scoring backend, which evaluates many assignments
        in a single vectorised pass but must report exactly the same totals as
        ``amount`` individual :meth:`count_score` calls, so the paper's
        "number of computations" metric is backend-independent.
        """
        users = self.num_users if num_users is None else num_users
        self.score_computations += amount
        self.user_computations += amount * users
        if initial:
            self.initial_computations += amount
        else:
            self.update_computations += amount

    def count_examined(self, amount: int = 1) -> None:
        """Record that ``amount`` assignment entries were examined."""
        self.assignments_examined += amount

    def count_generated(self, amount: int = 1) -> None:
        """Record that ``amount`` assignment entries were materialised."""
        self.assignments_generated += amount

    def count_selection(self, amount: int = 1) -> None:
        """Record that ``amount`` assignments were added to the schedule."""
        self.selections += amount

    def bump(self, key: str, amount: int = 1) -> None:
        """Increment a free-form named counter (stored under ``extra``)."""
        self.extra[key] = self.extra.get(key, 0) + amount

    def reset(self) -> None:
        """Zero every counter (``num_users`` is preserved)."""
        self.score_computations = 0
        self.user_computations = 0
        self.initial_computations = 0
        self.update_computations = 0
        self.assignments_examined = 0
        self.assignments_generated = 0
        self.selections = 0
        self.extra = {}

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy of the current counter values."""
        data = asdict(self)
        extra = data.pop("extra")
        data.update({f"extra.{key}": value for key, value in extra.items()})
        return data

    def merge(self, other: "ComputationCounter") -> None:
        """Add another counter's totals into this one (used for aggregation)."""
        self.score_computations += other.score_computations
        self.user_computations += other.user_computations
        self.initial_computations += other.initial_computations
        self.update_computations += other.update_computations
        self.assignments_examined += other.assignments_examined
        self.assignments_generated += other.assignments_generated
        self.selections += other.selections
        for key, value in other.extra.items():
            self.bump(key, value)
