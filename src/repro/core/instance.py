"""The Social Event Scheduling problem instance container.

:class:`SESInstance` bundles every input of the SES problem (paper §2.1):

* the candidate events ``E`` with locations and resource requirements,
* the candidate time intervals ``T``,
* the competing events ``C`` (each anchored to one interval),
* the users ``U``,
* the interest matrices µ (users × candidate events and users × competing
  events),
* the social-activity probabilities σ (users × intervals), and
* the organiser's available resources θ.

The container validates all of this on construction, exposes index lookups,
pre-computes the per-interval competing-interest sums that the scoring engine
needs, and (de)serialises to a JSON-friendly dict so instances can be saved
and reloaded by the dataset loaders and the CLI.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.entities import CompetingEvent, Event, Organizer, TimeInterval, User
from repro.core.errors import InstanceValidationError
from repro.core.interest import InterestMatrix


@dataclass
class SESInstance:
    """A complete, validated instance of the Social Event Scheduling problem.

    Parameters
    ----------
    events:
        The candidate events ``E``.
    intervals:
        The candidate time intervals ``T``.
    competing_events:
        The competing events ``C``; each must reference an interval id present
        in ``intervals``.
    users:
        The users ``U``.
    interest:
        ``|U| × |E|`` matrix of interest values µ(u, e) in ``[0, 1]``.
    competing_interest:
        ``|U| × |C|`` matrix of interest values µ(u, c) in ``[0, 1]``.
    activity:
        ``|U| × |T|`` matrix of social-activity probabilities σ_u^t in
        ``[0, 1]``.
    organizer:
        The organiser; its ``available_resources`` is the θ of the resources
        constraint.
    name:
        Human-readable dataset name (used in experiment reports).
    metadata:
        Free-form provenance information stored by dataset generators.
    """

    events: List[Event]
    intervals: List[TimeInterval]
    competing_events: List[CompetingEvent]
    users: List[User]
    interest: InterestMatrix
    competing_interest: InterestMatrix
    activity: np.ndarray
    organizer: Organizer = field(default_factory=Organizer)
    name: str = "instance"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.activity = np.array(self.activity, dtype=np.float64, copy=True)
        #: Path of the NPZ the instance was memory-mapped from (set by the
        #: loaders for ``mmap``-storage instances), ``None`` otherwise.  Lets
        #: the execution layers map / ship the backing file instead of copying
        #: matrices.
        self.backing_file: Optional[str] = None
        self._validate()
        self._event_index = {event.id: idx for idx, event in enumerate(self.events)}
        self._interval_index = {interval.id: idx for idx, interval in enumerate(self.intervals)}
        self._competing_index = {comp.id: idx for idx, comp in enumerate(self.competing_events)}
        self._user_index = {user.id: idx for idx, user in enumerate(self.users)}
        self._competing_by_interval = self._group_competing_by_interval()
        self._competing_sums = self._compute_competing_sums()
        self._user_weights = np.array([user.weight for user in self.users], dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if not self.events:
            raise InstanceValidationError("an SES instance needs at least one candidate event")
        if not self.intervals:
            raise InstanceValidationError("an SES instance needs at least one time interval")
        if not self.users:
            raise InstanceValidationError("an SES instance needs at least one user")

        self._require_unique_ids("event", [event.id for event in self.events])
        self._require_unique_ids("interval", [interval.id for interval in self.intervals])
        self._require_unique_ids("competing event", [comp.id for comp in self.competing_events])
        self._require_unique_ids("user", [user.id for user in self.users])

        num_users = len(self.users)
        num_events = len(self.events)
        num_competing = len(self.competing_events)
        num_intervals = len(self.intervals)

        if self.interest.shape != (num_users, num_events):
            raise InstanceValidationError(
                f"interest matrix shape {self.interest.shape} does not match "
                f"({num_users} users, {num_events} events)"
            )
        if self.competing_interest.shape != (num_users, num_competing):
            raise InstanceValidationError(
                f"competing-interest matrix shape {self.competing_interest.shape} does not "
                f"match ({num_users} users, {num_competing} competing events)"
            )
        if self.activity.ndim != 2 or self.activity.shape != (num_users, num_intervals):
            raise InstanceValidationError(
                f"activity matrix shape {self.activity.shape} does not match "
                f"({num_users} users, {num_intervals} intervals)"
            )
        if self.activity.size and (self.activity.min() < 0.0 or self.activity.max() > 1.0):
            raise InstanceValidationError(
                "activity probabilities must lie in [0, 1]; found values in "
                f"[{self.activity.min():.4f}, {self.activity.max():.4f}]"
            )

        interval_ids = {interval.id for interval in self.intervals}
        for comp in self.competing_events:
            if comp.interval_id not in interval_ids:
                raise InstanceValidationError(
                    f"competing event {comp.id!r} references unknown interval "
                    f"{comp.interval_id!r}"
                )

        theta = self.organizer.available_resources
        for event in self.events:
            if event.required_resources > theta:
                # Allowed (the event simply can never be scheduled), but worth
                # flagging as metadata for the dataset generators/tests.
                self.metadata.setdefault("unschedulable_events", []).append(event.id)  # type: ignore[union-attr]

    @staticmethod
    def _require_unique_ids(kind: str, ids: Sequence[str]) -> None:
        seen = set()
        for identifier in ids:
            if identifier in seen:
                raise InstanceValidationError(f"duplicate {kind} id: {identifier!r}")
            seen.add(identifier)

    # ------------------------------------------------------------------ #
    # Derived data
    # ------------------------------------------------------------------ #
    def _group_competing_by_interval(self) -> List[List[int]]:
        groups: List[List[int]] = [[] for _ in self.intervals]
        for comp_idx, comp in enumerate(self.competing_events):
            groups[self._interval_index[comp.interval_id]].append(comp_idx)
        return groups

    def _compute_competing_sums(self) -> np.ndarray:
        """Per-user, per-interval sums ``Σ_{c ∈ C_t} µ(u, c)`` (shape |U| × |T|).

        Goes through the interest store's column gather, so sparse and mmap
        stores densify only the ``|U| × |C_t|`` slice of one interval at a
        time.  The gathered block holds exactly the dense matrix's values,
        and the ``axis=1`` sum is the same pairwise reduction — the result is
        bit-identical across storages.
        """
        sums = np.zeros((len(self.users), len(self.intervals)), dtype=np.float64)
        comp_store = self.competing_interest.store
        for interval_idx, comp_indices in enumerate(self._competing_by_interval):
            if comp_indices:
                sums[:, interval_idx] = comp_store.columns(comp_indices).sum(axis=1)
        return sums

    # ------------------------------------------------------------------ #
    # Sizes and lookups
    # ------------------------------------------------------------------ #
    @property
    def num_events(self) -> int:
        """``|E|``."""
        return len(self.events)

    @property
    def num_intervals(self) -> int:
        """``|T|``."""
        return len(self.intervals)

    @property
    def num_competing_events(self) -> int:
        """``|C|``."""
        return len(self.competing_events)

    @property
    def num_users(self) -> int:
        """``|U|``."""
        return len(self.users)

    @property
    def available_resources(self) -> float:
        """The organiser's θ."""
        return self.organizer.available_resources

    @property
    def competing_sums(self) -> np.ndarray:
        """Per-user, per-interval competing-interest sums (read-only view)."""
        return self._competing_sums

    @property
    def storage(self) -> str:
        """Registry name of the interest matrices' storage (``"dense"``, …)."""
        return self.interest.storage

    def with_storage(
        self, storage: str, *, directory: Optional[str] = None
    ) -> "SESInstance":
        """This instance with both interest matrices under the named storage.

        Values are unchanged, so schedules, utilities, scores and counters
        stay bit-identical.  Converting to the ``"mmap"`` storage writes the
        whole instance as an uncompressed NPZ under ``directory`` and
        memory-maps it back (setting :attr:`backing_file`); converting to the
        ``"dense"`` storage is capacity-guarded.
        """
        if storage == "mmap":
            if directory is None:
                raise InstanceValidationError(
                    "converting to the 'mmap' storage needs a directory to "
                    "spill the instance NPZ to"
                )
            from repro.core.instance_io import spill_instance

            return spill_instance(self, directory)
        return dataclasses.replace(
            self,
            interest=self.interest.with_storage(storage),
            competing_interest=self.competing_interest.with_storage(storage),
            metadata=dict(self.metadata),
        )

    @property
    def user_weights(self) -> np.ndarray:
        """Per-user weights (all ones in the paper's formulation)."""
        return self._user_weights

    def event_index(self, event_id: str) -> int:
        """Index of the candidate event with the given id."""
        try:
            return self._event_index[event_id]
        except KeyError:
            raise InstanceValidationError(f"unknown event id: {event_id!r}") from None

    def interval_index(self, interval_id: str) -> int:
        """Index of the interval with the given id."""
        try:
            return self._interval_index[interval_id]
        except KeyError:
            raise InstanceValidationError(f"unknown interval id: {interval_id!r}") from None

    def competing_index(self, competing_id: str) -> int:
        """Index of the competing event with the given id."""
        try:
            return self._competing_index[competing_id]
        except KeyError:
            raise InstanceValidationError(f"unknown competing event id: {competing_id!r}") from None

    def user_index(self, user_id: str) -> int:
        """Index of the user with the given id."""
        try:
            return self._user_index[user_id]
        except KeyError:
            raise InstanceValidationError(f"unknown user id: {user_id!r}") from None

    def competing_events_at(self, interval_index: int) -> List[int]:
        """Indices of the competing events anchored to an interval (``C_t``)."""
        return list(self._competing_by_interval[interval_index])

    def event_required_resources(self) -> np.ndarray:
        """Vector of ξ_e for every candidate event."""
        return np.array([event.required_resources for event in self.events], dtype=np.float64)

    def event_values(self) -> np.ndarray:
        """Vector of value multipliers for every candidate event (ones by default)."""
        return np.array([event.value for event in self.events], dtype=np.float64)

    def event_costs(self) -> np.ndarray:
        """Vector of organisation costs for every candidate event (zeros by default)."""
        return np.array([event.cost for event in self.events], dtype=np.float64)

    def event_locations(self) -> List[str]:
        """Location id of every candidate event, by index."""
        return [event.location for event in self.events]

    def num_locations(self) -> int:
        """Number of distinct event locations."""
        return len({event.location for event in self.events})

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self, *, include_matrices: bool = True) -> Dict[str, object]:
        """Serialise the instance to a JSON-friendly dictionary.

        ``include_matrices=False`` omits the ``interest`` /
        ``competing_interest`` / ``activity`` entries entirely — the NPZ
        writer stores those as binary array members and must not round-trip
        them through Python lists.
        """
        payload: Dict[str, object] = {
            "name": self.name,
            "metadata": dict(self.metadata),
            "organizer": {
                "name": self.organizer.name,
                "available_resources": self.organizer.available_resources,
            },
            "events": [
                {
                    "id": event.id,
                    "location": event.location,
                    "required_resources": event.required_resources,
                    "value": event.value,
                    "cost": event.cost,
                    "tags": list(event.tags),
                }
                for event in self.events
            ],
            "intervals": [
                {
                    "id": interval.id,
                    "label": interval.label,
                    "start": interval.start,
                    "end": interval.end,
                    "capacity": interval.capacity,
                }
                for interval in self.intervals
            ],
            "competing_events": [
                {"id": comp.id, "interval_id": comp.interval_id, "tags": list(comp.tags)}
                for comp in self.competing_events
            ],
            "users": [{"id": user.id, "weight": user.weight} for user in self.users],
        }
        if include_matrices:
            payload["interest"] = self.interest.to_dict()
            payload["competing_interest"] = self.competing_interest.to_dict()
            payload["activity"] = self.activity.tolist()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SESInstance":
        """Inverse of :meth:`to_dict`.

        Array-aware: the ``interest`` / ``competing_interest`` ``values`` and
        the ``activity`` entry may be NumPy ``float64`` arrays instead of
        nested lists.  Arrays are passed straight through ``np.asarray`` (the
        interest matrices are adopted without copying; activity keeps its one
        defensive copy), so no Python lists are ever materialised — the fast
        path the NPZ loader relies on for benchmark-scale instances.  The two
        matrix entries may also be ready-made :class:`InterestMatrix` objects
        (e.g. wrapping memory-mapped stores), which are adopted as-is.
        """
        organizer_payload = payload.get("organizer", {}) or {}
        organizer = Organizer(
            name=str(organizer_payload.get("name", "organizer")),
            available_resources=float(organizer_payload.get("available_resources", float("inf"))),
        )
        events = [
            Event(
                id=str(item["id"]),
                location=str(item["location"]),
                required_resources=float(item.get("required_resources", 0.0)),
                value=float(item.get("value", 1.0)),
                cost=float(item.get("cost", 0.0)),
                tags=tuple(item.get("tags", ())),
            )
            for item in payload["events"]  # type: ignore[index]
        ]
        intervals = [
            TimeInterval(
                id=str(item["id"]),
                label=str(item.get("label", "")),
                start=item.get("start"),
                end=item.get("end"),
                capacity=(
                    None
                    if item.get("capacity") is None
                    else int(item["capacity"])
                ),
            )
            for item in payload["intervals"]  # type: ignore[index]
        ]
        competing = [
            CompetingEvent(
                id=str(item["id"]),
                interval_id=str(item["interval_id"]),
                tags=tuple(item.get("tags", ())),
            )
            for item in payload["competing_events"]  # type: ignore[index]
        ]
        users = [
            User(id=str(item["id"]), weight=float(item.get("weight", 1.0)))
            for item in payload["users"]  # type: ignore[index]
        ]
        num_users = len(users)
        interest_payload = payload["interest"]  # type: ignore[index]
        if isinstance(interest_payload, InterestMatrix):
            interest = interest_payload
        else:
            interest = InterestMatrix.from_serialized(interest_payload)  # type: ignore[arg-type]
        competing_payload = payload["competing_interest"]  # type: ignore[index]
        if isinstance(competing_payload, InterestMatrix):
            competing_interest = competing_payload
        else:
            competing_interest = InterestMatrix.from_serialized(competing_payload)  # type: ignore[arg-type]
        if competing_interest.num_items == 0 and competing_interest.num_users != num_users:
            competing_interest = InterestMatrix.zeros(num_users, 0)
        activity = np.asarray(payload["activity"], dtype=np.float64)
        if activity.size == 0:
            activity = activity.reshape((num_users, len(intervals)))
        return cls(
            events=events,
            intervals=intervals,
            competing_events=competing,
            users=users,
            interest=interest,
            competing_interest=competing_interest,
            activity=activity,
            organizer=organizer,
            name=str(payload.get("name", "instance")),
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_arrays(
        cls,
        *,
        interest: np.ndarray,
        activity: np.ndarray,
        competing_interest: Optional[np.ndarray] = None,
        competing_interval_indices: Optional[Sequence[int]] = None,
        locations: Optional[Sequence[str]] = None,
        required_resources: Optional[Sequence[float]] = None,
        available_resources: float = float("inf"),
        event_values: Optional[Sequence[float]] = None,
        event_costs: Optional[Sequence[float]] = None,
        user_weights: Optional[Sequence[float]] = None,
        name: str = "instance",
        metadata: Optional[Dict[str, object]] = None,
    ) -> "SESInstance":
        """Build an instance directly from numeric arrays.

        The helper generates sequential ids (``e0``, ``t0``, ``c0``, ``u0`` …)
        and is the workhorse of the dataset generators and the tests.

        Parameters
        ----------
        interest:
            ``|U| × |E|`` interest matrix.
        activity:
            ``|U| × |T|`` activity-probability matrix.
        competing_interest:
            Optional ``|U| × |C|`` matrix; defaults to no competing events.
        competing_interval_indices:
            Interval index for each competing event (required when
            ``competing_interest`` has at least one column).
        locations:
            Location id per event; defaults to a distinct location per event
            (i.e. no location conflicts).
        required_resources:
            ξ_e per event; defaults to zero.
        available_resources:
            The organiser's θ; defaults to unbounded.
        event_values, event_costs, user_weights:
            Optional extension vectors (profit-oriented / weighted users).
        """
        interest_array = np.asarray(interest, dtype=np.float64)
        activity_array = np.asarray(activity, dtype=np.float64)
        num_users, num_events = interest_array.shape
        num_intervals = activity_array.shape[1]

        if competing_interest is None:
            competing_array = np.zeros((num_users, 0), dtype=np.float64)
            competing_interval_indices = []
        else:
            competing_array = np.asarray(competing_interest, dtype=np.float64)
            if competing_interval_indices is None:
                raise InstanceValidationError(
                    "competing_interval_indices is required when competing_interest is given"
                )
            if len(competing_interval_indices) != competing_array.shape[1]:
                raise InstanceValidationError(
                    "competing_interval_indices length must equal the number of competing events"
                )

        if locations is None:
            locations = [f"loc{idx}" for idx in range(num_events)]
        if len(locations) != num_events:
            raise InstanceValidationError("locations length must equal the number of events")
        if required_resources is None:
            required_resources = [0.0] * num_events
        if len(required_resources) != num_events:
            raise InstanceValidationError(
                "required_resources length must equal the number of events"
            )
        values = list(event_values) if event_values is not None else [1.0] * num_events
        costs = list(event_costs) if event_costs is not None else [0.0] * num_events
        weights = list(user_weights) if user_weights is not None else [1.0] * num_users

        events = [
            Event(
                id=f"e{idx}",
                location=str(locations[idx]),
                required_resources=float(required_resources[idx]),
                value=float(values[idx]),
                cost=float(costs[idx]),
            )
            for idx in range(num_events)
        ]
        intervals = [TimeInterval(id=f"t{idx}", label=f"interval-{idx}") for idx in range(num_intervals)]
        competing = [
            CompetingEvent(id=f"c{idx}", interval_id=f"t{int(competing_interval_indices[idx])}")
            for idx in range(competing_array.shape[1])
        ]
        users = [User(id=f"u{idx}", weight=float(weights[idx])) for idx in range(num_users)]

        return cls(
            events=events,
            intervals=intervals,
            competing_events=competing,
            users=users,
            interest=InterestMatrix(interest_array),
            competing_interest=InterestMatrix(competing_array),
            activity=activity_array,
            organizer=Organizer(available_resources=available_resources),
            name=name,
            metadata=metadata or {},
        )

    def describe(self) -> Dict[str, object]:
        """Summary statistics used by the CLI ``info`` command and reports."""
        return {
            "name": self.name,
            "num_events": self.num_events,
            "num_intervals": self.num_intervals,
            "num_competing_events": self.num_competing_events,
            "num_users": self.num_users,
            "num_locations": self.num_locations(),
            "storage": self.storage,
            "available_resources": self.available_resources,
            "mean_interest": self.interest.mean(),
            "mean_competing_interest": self.competing_interest.mean(),
            "mean_activity": float(self.activity.mean()) if self.activity.size else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SESInstance(name={self.name!r}, events={self.num_events}, "
            f"intervals={self.num_intervals}, competing={self.num_competing_events}, "
            f"users={self.num_users})"
        )
