"""The attendance model and scoring engine (paper Eq. 1–4).

The probability that user ``u`` attends candidate event ``e`` scheduled at
interval ``t`` follows Luce's choice model (Eq. 1):

.. math::

    ρ_{u,e}^t = σ_u^t · \\frac{µ_{u,e}}
        {\\sum_{c ∈ C_t} µ_{u,c} + \\sum_{p ∈ E_t(S)} µ_{u,p}}

The expected attendance of the event is the sum of these probabilities over
users (Eq. 2), the utility of a schedule is the sum of expected attendances of
its scheduled events (Eq. 3), and the *assignment score* of adding ``α_e^t``
to a schedule is the resulting gain in interval utility (Eq. 4).

:class:`ScoringEngine` maintains, per interval, the per-user sums needed to
evaluate a score in a single vectorised pass over the users, and reports every
evaluation to a :class:`~repro.core.counters.ComputationCounter` so that the
paper's "number of computations" metric (``|U|`` per score) can be reproduced
exactly.

The engine also supports the §2.1 extensions: per-user weights (applied to σ)
and per-event value multipliers / organisation costs (profit-oriented SES).
With the default entity values these reduce exactly to the paper's equations.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.counters import ComputationCounter
from repro.core.errors import ScheduleError
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule


class ScoringEngine:
    """Incremental evaluator of interval utilities and assignment scores.

    The engine holds, for every interval ``t``:

    * ``comp[:, t]`` — the per-user competing-interest sums (static),
    * ``A[t]`` — the per-user sums of interest over events currently scheduled
      at ``t`` (updated by :meth:`apply`),
    * ``V[t]`` — the value-weighted variant of ``A[t]`` (identical when all
      event values are 1.0),
    * the interval's current utility.

    Every call to :meth:`assignment_score` costs one pass over the users and
    is counted as one score computation (``|U|`` user computations), matching
    the paper's metric.
    """

    def __init__(
        self,
        instance: SESInstance,
        counter: Optional[ComputationCounter] = None,
    ) -> None:
        self._instance = instance
        self._counter = counter if counter is not None else ComputationCounter()
        if self._counter.num_users == 0:
            self._counter.num_users = instance.num_users

        self._mu = instance.interest.values
        self._comp = instance.competing_sums
        weights = instance.user_weights
        self._sigma = instance.activity * weights[:, np.newaxis]
        self._values = instance.event_values()
        self._costs = instance.event_costs()

        num_intervals = instance.num_intervals
        num_users = instance.num_users
        self._scheduled_interest = np.zeros((num_intervals, num_users), dtype=np.float64)
        self._scheduled_value_interest = np.zeros((num_intervals, num_users), dtype=np.float64)
        self._interval_utility = np.zeros(num_intervals, dtype=np.float64)
        self._applied_cost = 0.0
        self._events_applied: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> SESInstance:
        """The instance the engine evaluates."""
        return self._instance

    @property
    def counter(self) -> ComputationCounter:
        """The counter receiving score-computation events."""
        return self._counter

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Forget every applied assignment (counters are *not* reset)."""
        self._scheduled_interest.fill(0.0)
        self._scheduled_value_interest.fill(0.0)
        self._interval_utility.fill(0.0)
        self._applied_cost = 0.0
        self._events_applied.clear()

    def apply(self, event_index: int, interval_index: int, score: Optional[float] = None) -> float:
        """Add event ``event_index`` to interval ``interval_index``.

        Parameters
        ----------
        score:
            The previously computed assignment score for this pair.  When
            given, the interval utility is advanced by it without recomputing
            (this mirrors how the paper's algorithms reuse the score of the
            selected assignment); otherwise the score is computed (and
            counted) first.

        Returns
        -------
        float
            The gain in total utility caused by the assignment.
        """
        if event_index in self._events_applied:
            raise ScheduleError(
                f"event {event_index} was already applied to interval "
                f"{self._events_applied[event_index]}"
            )
        if score is None:
            score = self.assignment_score(event_index, interval_index)
        column = self._mu[:, event_index]
        self._scheduled_interest[interval_index] += column
        self._scheduled_value_interest[interval_index] += self._values[event_index] * column
        self._interval_utility[interval_index] += score
        self._applied_cost += self._costs[event_index]
        self._events_applied[event_index] = interval_index
        return score

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def _interval_utility_of(
        self,
        interval_index: int,
        scheduled_interest: np.ndarray,
        scheduled_value_interest: np.ndarray,
    ) -> float:
        """Utility of one interval for given per-user scheduled-interest sums."""
        denominator = self._comp[:, interval_index] + scheduled_interest
        numerator = self._sigma[:, interval_index] * scheduled_value_interest
        with np.errstate(divide="ignore", invalid="ignore"):
            contributions = np.divide(
                numerator,
                denominator,
                out=np.zeros_like(numerator),
                where=denominator > 0.0,
            )
        return float(contributions.sum())

    def assignment_score(
        self,
        event_index: int,
        interval_index: int,
        *,
        initial: bool = False,
        count: bool = True,
    ) -> float:
        """Assignment score (Eq. 4): utility gain of adding ``α_e^t`` now.

        Parameters
        ----------
        initial:
            Whether the computation belongs to the initial assignment
            generation phase (kept separate in the counters).
        count:
            Set to ``False`` for evaluations that should not affect the
            paper's computation metric (e.g. reporting).
        """
        if count:
            self._counter.count_score(initial=initial)
        column = self._mu[:, event_index]
        new_interest = self._scheduled_interest[interval_index] + column
        new_value_interest = (
            self._scheduled_value_interest[interval_index] + self._values[event_index] * column
        )
        new_utility = self._interval_utility_of(interval_index, new_interest, new_value_interest)
        return new_utility - self._interval_utility[interval_index]

    def interval_utility(self, interval_index: int) -> float:
        """Current utility of one interval."""
        return float(self._interval_utility[interval_index])

    def total_utility(self, *, include_costs: bool = False) -> float:
        """Current total utility Ω (optionally net of organisation costs)."""
        total = float(self._interval_utility.sum())
        if include_costs:
            total -= self._applied_cost
        return total

    def expected_attendance(self, event_index: int, *, count: bool = False) -> float:
        """Expected attendance ω of an already-applied event under the current state."""
        if event_index not in self._events_applied:
            raise ScheduleError(f"event {event_index} has not been applied")
        interval_index = self._events_applied[event_index]
        denominator = self._comp[:, interval_index] + self._scheduled_interest[interval_index]
        numerator = self._sigma[:, interval_index] * self._mu[:, event_index]
        if count:
            self._counter.count_score()
        with np.errstate(divide="ignore", invalid="ignore"):
            probabilities = np.divide(
                numerator,
                denominator,
                out=np.zeros_like(numerator),
                where=denominator > 0.0,
            )
        return float(probabilities.sum()) * float(self._values[event_index])

    def attendance_probabilities(self, event_index: int) -> np.ndarray:
        """Per-user attendance probabilities ρ of an already-applied event (Eq. 1)."""
        if event_index not in self._events_applied:
            raise ScheduleError(f"event {event_index} has not been applied")
        interval_index = self._events_applied[event_index]
        denominator = self._comp[:, interval_index] + self._scheduled_interest[interval_index]
        numerator = self._sigma[:, interval_index] * self._mu[:, event_index]
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.divide(
                numerator,
                denominator,
                out=np.zeros_like(numerator),
                where=denominator > 0.0,
            )

    # ------------------------------------------------------------------ #
    # Stateless schedule evaluation
    # ------------------------------------------------------------------ #
    def evaluate_schedule(
        self, schedule: Schedule, *, include_costs: bool = False, count: bool = False
    ) -> float:
        """Utility Ω(S) of an arbitrary schedule, independent of the engine state.

        This is used by the exact solver, the RAND baseline and the tests to
        evaluate schedules without mutating the incremental state.
        """
        total = 0.0
        cost = 0.0
        for interval_index in schedule.used_intervals():
            events_here = sorted(schedule.events_at(interval_index))
            interest_sum = np.zeros(self._instance.num_users, dtype=np.float64)
            value_sum = np.zeros(self._instance.num_users, dtype=np.float64)
            for event_index in events_here:
                column = self._mu[:, event_index]
                interest_sum += column
                value_sum += self._values[event_index] * column
                cost += self._costs[event_index]
                if count:
                    self._counter.count_score()
            total += self._interval_utility_of(interval_index, interest_sum, value_sum)
        if include_costs:
            total -= cost
        return total

    def per_event_attendance(self, schedule: Schedule) -> Dict[int, float]:
        """Expected attendance ω of every scheduled event of an arbitrary schedule."""
        attendance: Dict[int, float] = {}
        for interval_index in schedule.used_intervals():
            events_here = sorted(schedule.events_at(interval_index))
            interest_sum = np.zeros(self._instance.num_users, dtype=np.float64)
            for event_index in events_here:
                interest_sum += self._mu[:, event_index]
            denominator = self._comp[:, interval_index] + interest_sum
            sigma = self._sigma[:, interval_index]
            for event_index in events_here:
                numerator = sigma * self._mu[:, event_index]
                with np.errstate(divide="ignore", invalid="ignore"):
                    probabilities = np.divide(
                        numerator,
                        denominator,
                        out=np.zeros_like(numerator),
                        where=denominator > 0.0,
                    )
                attendance[event_index] = float(probabilities.sum()) * float(
                    self._values[event_index]
                )
        return attendance


def utility_of_schedule(
    instance: SESInstance, schedule: Schedule, *, include_costs: bool = False
) -> float:
    """Convenience wrapper: evaluate Ω(S) for a schedule on a fresh engine."""
    engine = ScoringEngine(instance)
    return engine.evaluate_schedule(schedule, include_costs=include_costs)
