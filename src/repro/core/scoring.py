"""The attendance model and scoring engine (paper Eq. 1–4).

The probability that user ``u`` attends candidate event ``e`` scheduled at
interval ``t`` follows Luce's choice model (Eq. 1):

.. math::

    ρ_{u,e}^t = σ_u^t · \\frac{µ_{u,e}}
        {\\sum_{c ∈ C_t} µ_{u,c} + \\sum_{p ∈ E_t(S)} µ_{u,p}}

The expected attendance of the event is the sum of these probabilities over
users (Eq. 2), the utility of a schedule is the sum of expected attendances of
its scheduled events (Eq. 3), and the *assignment score* of adding ``α_e^t``
to a schedule is the resulting gain in interval utility (Eq. 4).

:class:`ScoringEngine` maintains, per interval, the per-user sums needed to
evaluate a score in a single vectorised pass over the users, and reports every
evaluation to a :class:`~repro.core.counters.ComputationCounter` so that the
paper's "number of computations" metric (``|U|`` per score) can be reproduced
exactly.

The engine offers three *backends* for bulk evaluation:

* ``"scalar"`` — the reference implementation: one pass over the users per
  (event, interval) pair, exactly the per-pair arithmetic described above;
* ``"batch"`` (the default) — :meth:`ScoringEngine.interval_scores` evaluates
  *all* candidate events of one interval in a handful of NumPy matrix
  operations, and :meth:`ScoringEngine.score_matrix` assembles the full
  ``|E| × |T|`` score matrix from them;
* ``"parallel"`` — the batch backend's event-axis chunks dispatched to a
  thread pool (``workers`` threads, defaulting to the machine's CPU count).
  The chunk kernel is NumPy-bound and releases the GIL, so the blocks run
  concurrently; because every event row's reduction is independent of the
  others, the block decomposition — serial or parallel, whatever the split —
  never changes a result bit.  ``workers=1`` degrades to the serial batch
  path exactly.

All backends perform the same elementary operations in the same order per
(user, event) element, so their scores agree to machine precision, and all
report one score computation (``|U|`` user computations) per (event, interval)
pair to the counter — the paper's metric is backend-independent by
construction.

Two facilities support the incremental schedulers and large instances:

* :meth:`ScoringEngine.refresh_scores` is the bulk *stale-refresh* entry
  point: it recomputes the current scores of a selected set of events at one
  interval (the update-phase counterpart of the generation-phase bulk calls).
  INC and HOR-I use it to resolve whole prefixes of stale assignments in a
  few vectorised passes instead of one ``assignment_score`` call per pair.
* The batch backend *chunks the event axis*: bulk evaluations never
  materialise more than ``chunk_size × |U|`` temporary elements at once
  (``chunk_size`` defaults to :data:`DEFAULT_CHUNK_ELEMENTS` divided by
  ``|U|``), so million-user instances stay within a bounded memory envelope.
  Chunking splits only the event axis — every row's per-user reduction is
  unchanged — so chunked and unchunked results are bit-identical.

The engine also supports the §2.1 extensions: per-user weights (applied to σ)
and per-event value multipliers / organisation costs (profit-oriented SES).
With the default entity values these reduce exactly to the paper's equations.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.counters import ComputationCounter
from repro.core.errors import ScheduleError, SolverError
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule

#: The available scoring backends (``DEFAULT_BACKEND`` is used when unset).
SCORING_BACKENDS: Tuple[str, ...] = ("scalar", "batch", "parallel")

#: The backends whose bulk entry points evaluate whole event blocks at once
#: (the incremental schedulers use this to decide whether speculative bulk
#: refresh pays off).
BULK_BACKENDS: Tuple[str, ...] = ("batch", "parallel")

#: Backend used when none is requested explicitly.
DEFAULT_BACKEND: str = "batch"

#: Memory budget of one bulk evaluation, in matrix *elements* (events × users).
#: The default chunk size is this budget divided by ``|U|``, which caps every
#: batched temporary at ~64 MB of float64 regardless of instance size.
DEFAULT_CHUNK_ELEMENTS: int = 8_000_000


def resolve_backend(backend: Optional[str]) -> str:
    """Validate a backend name (``None`` means :data:`DEFAULT_BACKEND`)."""
    if backend is None:
        return DEFAULT_BACKEND
    if backend not in SCORING_BACKENDS:
        raise SolverError(
            f"unknown scoring backend {backend!r}; available: {', '.join(SCORING_BACKENDS)}"
        )
    return backend


def resolve_chunk_size(chunk_size: Optional[int], num_users: int) -> int:
    """Validate the event-axis chunk size (``None`` derives it from the memory budget).

    The automatic default keeps one batched temporary at
    :data:`DEFAULT_CHUNK_ELEMENTS` elements: ``max(1, budget // |U|)`` events
    per chunk.  An explicit value is the number of events evaluated per
    vectorised pass and must be a positive integer.
    """
    if chunk_size is None:
        return max(1, DEFAULT_CHUNK_ELEMENTS // max(1, num_users))
    if not isinstance(chunk_size, int) or isinstance(chunk_size, bool) or chunk_size < 1:
        raise SolverError(f"chunk_size must be a positive integer or None, got {chunk_size!r}")
    return chunk_size


def resolve_workers(workers: Optional[int], backend: Optional[str] = None) -> int:
    """Validate the parallel backend's worker count (``None`` means auto).

    The automatic default is the machine's CPU count (at least 1).  An
    explicit value must be a positive integer; ``1`` makes the parallel
    backend degrade to the serial batch path.

    When ``backend`` is given and is not ``"parallel"``, the resolved count is
    pinned to 1 (after validation): the serial backends never fan out, and
    recording the machine's CPU count for them would make otherwise-identical
    runs look different across machines in the harness tables.
    """
    if workers is not None and (
        not isinstance(workers, int) or isinstance(workers, bool) or workers < 1
    ):
        raise SolverError(f"workers must be a positive integer or None, got {workers!r}")
    if backend is not None and backend != "parallel":
        return 1
    if workers is None:
        return max(1, os.cpu_count() or 1)
    return workers


def _guarded_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise ``numerator / denominator`` with zeros where the denominator is not positive.

    This is the library's single division guard: every per-user attendance
    term — scalar or batched — goes through it, so a user whose competing +
    scheduled interest sums to zero contributes exactly 0.0 on every code
    path.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(
            numerator,
            denominator,
            out=np.zeros_like(numerator),
            where=denominator > 0.0,
        )


class ScoringEngine:
    """Incremental evaluator of interval utilities and assignment scores.

    The engine holds, for every interval ``t``:

    * ``comp[:, t]`` — the per-user competing-interest sums (static),
    * ``A[t]`` — the per-user sums of interest over events currently scheduled
      at ``t`` (updated by :meth:`apply`),
    * ``V[t]`` — the value-weighted variant of ``A[t]`` (identical when all
      event values are 1.0),
    * the interval's current utility.

    Every call to :meth:`assignment_score` costs one pass over the users and
    is counted as one score computation (``|U|`` user computations), matching
    the paper's metric.  :meth:`interval_scores` and :meth:`score_matrix`
    evaluate many assignments at once (vectorised over events when the
    ``backend`` is ``"batch"``) and count one score computation per evaluated
    pair, so counter totals are identical across backends.

    Parameters
    ----------
    backend:
        ``"scalar"`` or ``"batch"`` (``None`` selects :data:`DEFAULT_BACKEND`).
        Only affects how :meth:`interval_scores` / :meth:`score_matrix`
        compute their results — never the values, which agree to machine
        precision.
    chunk_size:
        Maximum number of events evaluated per vectorised pass of the batch
        backend (``None`` derives it from :data:`DEFAULT_CHUNK_ELEMENTS`).
        Bounds the size of batched temporaries at ``chunk_size × |U|``
        elements without changing any result bit (the scalar backend ignores
        it — its temporaries are one user-vector per pair already).  Under the
        parallel backend up to ``workers`` chunks are in flight at once, so
        the envelope is ``workers ×`` the chunk budget.
    workers:
        Thread count of the ``"parallel"`` backend (``None`` selects the
        machine's CPU count).  Ignored by the other backends; ``workers=1``
        degrades to the serial batch path.
    """

    def __init__(
        self,
        instance: SESInstance,
        counter: Optional[ComputationCounter] = None,
        *,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        self._instance = instance
        self._counter = counter if counter is not None else ComputationCounter()
        if self._counter.num_users == 0:
            self._counter.num_users = instance.num_users
        self._backend = resolve_backend(backend)
        self._chunk_size = resolve_chunk_size(chunk_size, instance.num_users)
        self._workers = resolve_workers(workers, self._backend)
        self._executor: Optional[ThreadPoolExecutor] = None

        self._mu = instance.interest.values
        self._comp = instance.competing_sums
        weights = instance.user_weights
        self._sigma = instance.activity * weights[:, np.newaxis]
        self._values = instance.event_values()
        self._costs = instance.event_costs()

        if self._backend in BULK_BACKENDS:
            # Event-major copies of µ and value·µ: each row is one event's
            # per-user column, contiguous so that the per-row reductions in
            # interval_scores() use the same pairwise summation as the scalar
            # path's 1-D sums (keeping the backends bit-identical).
            self._mu_rows = np.ascontiguousarray(self._mu.T)
            self._value_mu_rows = self._values[:, np.newaxis] * self._mu_rows
        else:
            self._mu_rows = None
            self._value_mu_rows = None

        num_intervals = instance.num_intervals
        num_users = instance.num_users
        self._scheduled_interest = np.zeros((num_intervals, num_users), dtype=np.float64)
        self._scheduled_value_interest = np.zeros((num_intervals, num_users), dtype=np.float64)
        self._interval_utility = np.zeros(num_intervals, dtype=np.float64)
        self._applied_cost = 0.0
        self._events_applied: Dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> SESInstance:
        """The instance the engine evaluates."""
        return self._instance

    @property
    def counter(self) -> ComputationCounter:
        """The counter receiving score-computation events."""
        return self._counter

    @property
    def backend(self) -> str:
        """The active bulk-evaluation backend (``"scalar"`` or ``"batch"``)."""
        return self._backend

    @property
    def chunk_size(self) -> int:
        """Events evaluated per vectorised pass (the batch memory guard)."""
        return self._chunk_size

    @property
    def workers(self) -> int:
        """Thread count of the parallel backend (1 for the serial backends)."""
        return self._workers

    def close(self) -> None:
        """Release the parallel backend's thread pool (safe to call repeatedly)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Forget every applied assignment (counters are *not* reset)."""
        self._scheduled_interest.fill(0.0)
        self._scheduled_value_interest.fill(0.0)
        self._interval_utility.fill(0.0)
        self._applied_cost = 0.0
        self._events_applied.clear()

    def apply(self, event_index: int, interval_index: int, score: Optional[float] = None) -> float:
        """Add event ``event_index`` to interval ``interval_index``.

        Parameters
        ----------
        score:
            The previously computed assignment score for this pair.  When
            given, the interval utility is advanced by it without recomputing
            (this mirrors how the paper's algorithms reuse the score of the
            selected assignment); otherwise the score is computed (and
            counted) first.

        Returns
        -------
        float
            The gain in total utility caused by the assignment.
        """
        if event_index in self._events_applied:
            raise ScheduleError(
                f"event {event_index} was already applied to interval "
                f"{self._events_applied[event_index]}"
            )
        if score is None:
            score = self.assignment_score(event_index, interval_index)
        column = self._mu[:, event_index]
        self._scheduled_interest[interval_index] += column
        self._scheduled_value_interest[interval_index] += self._values[event_index] * column
        self._interval_utility[interval_index] += score
        self._applied_cost += self._costs[event_index]
        self._events_applied[event_index] = interval_index
        return score

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def _interval_utility_of(
        self,
        interval_index: int,
        scheduled_interest: np.ndarray,
        scheduled_value_interest: np.ndarray,
    ) -> float:
        """Utility of one interval for given per-user scheduled-interest sums."""
        denominator = self._comp[:, interval_index] + scheduled_interest
        numerator = self._sigma[:, interval_index] * scheduled_value_interest
        contributions = _guarded_divide(numerator, denominator)
        return float(contributions.sum())

    def assignment_score(
        self,
        event_index: int,
        interval_index: int,
        *,
        initial: bool = False,
        count: bool = True,
    ) -> float:
        """Assignment score (Eq. 4): utility gain of adding ``α_e^t`` now.

        Parameters
        ----------
        initial:
            Whether the computation belongs to the initial assignment
            generation phase (kept separate in the counters).
        count:
            Set to ``False`` for evaluations that should not affect the
            paper's computation metric (e.g. reporting).
        """
        if count:
            self._counter.count_score(initial=initial)
        return self._pair_score(event_index, interval_index)

    def _pair_score(self, event_index: int, interval_index: int) -> float:
        """The scalar (reference) score computation of one (event, interval) pair."""
        column = self._mu[:, event_index]
        new_interest = self._scheduled_interest[interval_index] + column
        new_value_interest = (
            self._scheduled_value_interest[interval_index] + self._values[event_index] * column
        )
        new_utility = self._interval_utility_of(interval_index, new_interest, new_value_interest)
        return new_utility - self._interval_utility[interval_index]

    def interval_scores(
        self,
        interval_index: int,
        event_indices: Optional[Sequence[int]] = None,
        *,
        initial: bool = False,
        count: bool = True,
    ) -> np.ndarray:
        """Assignment scores of many candidate events for one interval (Eq. 4, batched).

        Parameters
        ----------
        event_indices:
            Events to evaluate (defaults to every candidate event), in the
            order the returned vector follows.
        initial, count:
            As in :meth:`assignment_score`; when counting, one score
            computation is recorded per evaluated event, so the paper's
            metric is identical to per-pair evaluation.

        Returns
        -------
        numpy.ndarray
            ``scores[i]`` is the assignment score of
            ``(event_indices[i], interval_index)`` against the current state.
        """
        all_events = event_indices is None
        if all_events:
            events = np.arange(self._instance.num_events, dtype=np.intp)
        else:
            events = np.asarray(event_indices, dtype=np.intp)
        if count and events.size:
            self._counter.count_scores(int(events.size), initial=initial)
        if self._backend == "scalar":
            return np.array(
                [self._pair_score(int(event), interval_index) for event in events],
                dtype=np.float64,
            )
        # Batch backend: evaluate every event's hypothetical interval state at
        # once.  Rows are events, columns users; the per-element operation
        # order matches _pair_score exactly (µ added to the scheduled sums
        # first, competing sums last; value·µ added to the value sums before
        # the σ product), so each element is bit-identical to the scalar path.
        mu_rows, value_mu_rows = self._select_event_rows(None if all_events else events)
        return self._batch_interval_scores(interval_index, mu_rows, value_mu_rows)

    def refresh_scores(
        self,
        interval_index: int,
        event_indices: Sequence[int],
        *,
        count: bool = True,
    ) -> np.ndarray:
        """Bulk stale refresh: recompute current scores of selected events at one interval.

        This is the update-phase counterpart of the generation-phase bulk
        calls — semantically identical to one :meth:`assignment_score` per
        (event, interval) pair against the current state, evaluated under the
        active backend (vectorised and chunked when ``"batch"``).

        Parameters
        ----------
        count:
            When ``True`` each refreshed pair is recorded as one *update*
            computation.  The incremental schedulers (INC, HOR-I) pass
            ``False`` because they fetch stale prefixes *speculatively*: they
            count one update computation per score their walk actually
            consumes, so the paper's metric stays bit-identical to the scalar
            reference even when a speculative block is cut short by the Φ
            bound.
        """
        return self.interval_scores(interval_index, event_indices, initial=False, count=count)

    def _select_event_rows(self, events: Optional[np.ndarray]):
        """Event-major µ and value·µ rows for a selection (``None`` = all events)."""
        if events is None:
            return self._mu_rows, self._value_mu_rows
        return self._mu_rows[events], self._value_mu_rows[events]

    def _batch_interval_scores(
        self, interval_index: int, mu_rows: np.ndarray, value_mu_rows: np.ndarray
    ) -> np.ndarray:
        """Vectorised score evaluation of pre-selected event rows at one interval.

        The event axis is processed in chunks of at most ``chunk_size`` rows,
        so the temporaries stay bounded on huge instances.  Each row's
        reduction is independent of the others, so chunked and unchunked
        evaluations are bit-identical — and under the parallel backend the
        chunks are dispatched to the worker pool, which changes only *where*
        each block is computed, never its result.
        """
        num_rows = int(mu_rows.shape[0])
        step = self._chunk_size
        parallel = self._backend == "parallel" and self._workers > 1 and num_rows > 1
        if parallel:
            # Split into enough blocks to keep every worker busy while still
            # honouring the chunk-size memory bound per block.
            step = max(1, min(step, -(-num_rows // self._workers)))
        if num_rows <= step:
            return self._batch_block(interval_index, mu_rows, value_mu_rows)
        bounds = [(start, min(start + step, num_rows)) for start in range(0, num_rows, step)]
        scores = np.empty(num_rows, dtype=np.float64)
        if parallel and len(bounds) > 1:
            executor = self._ensure_executor()
            futures = [
                executor.submit(
                    self._batch_block,
                    interval_index,
                    mu_rows[start:stop],
                    value_mu_rows[start:stop],
                )
                for start, stop in bounds
            ]
            for (start, stop), future in zip(bounds, futures):
                scores[start:stop] = future.result()
            return scores
        for start, stop in bounds:
            scores[start:stop] = self._batch_block(
                interval_index, mu_rows[start:stop], value_mu_rows[start:stop]
            )
        return scores

    def _ensure_executor(self) -> ThreadPoolExecutor:
        """The lazily-created worker pool of the parallel backend."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._workers, thread_name_prefix="ses-score"
            )
        return self._executor

    def _batch_block(
        self, interval_index: int, mu_rows: np.ndarray, value_mu_rows: np.ndarray
    ) -> np.ndarray:
        """One vectorised pass over a block of event rows (the batch kernel)."""
        denominator = self._comp[:, interval_index] + (
            self._scheduled_interest[interval_index] + mu_rows
        )
        numerator = self._sigma[:, interval_index] * (
            self._scheduled_value_interest[interval_index] + value_mu_rows
        )
        contributions = _guarded_divide(numerator, denominator)
        return contributions.sum(axis=1) - self._interval_utility[interval_index]

    def score_matrix(
        self,
        event_indices: Optional[Sequence[int]] = None,
        *,
        initial: bool = False,
        count: bool = True,
    ) -> np.ndarray:
        """The full score matrix of the candidate bipartite space.

        Returns an ``(len(event_indices), |T|)`` array whose ``[i, t]`` entry
        is the assignment score of ``(event_indices[i], t)`` against the
        current engine state (``event_indices`` defaults to all events).
        Counts one score computation per (event, interval) pair.
        """
        if event_indices is None:
            selector = None
            num_selected = self._instance.num_events
        else:
            selector = np.asarray(event_indices, dtype=np.intp)
            num_selected = int(selector.size)
        num_intervals = self._instance.num_intervals
        matrix = np.empty((num_selected, num_intervals), dtype=np.float64)
        if self._backend in BULK_BACKENDS:
            # Hoist the event-row selection out of the per-interval loop: the
            # selection is state-independent, so one copy serves every column.
            mu_rows, value_mu_rows = self._select_event_rows(selector)
            for interval_index in range(num_intervals):
                if count and num_selected:
                    self._counter.count_scores(num_selected, initial=initial)
                matrix[:, interval_index] = self._batch_interval_scores(
                    interval_index, mu_rows, value_mu_rows
                )
            return matrix
        for interval_index in range(num_intervals):
            matrix[:, interval_index] = self.interval_scores(
                interval_index, selector, initial=initial, count=count
            )
        return matrix

    def interval_utility(self, interval_index: int) -> float:
        """Current utility of one interval."""
        return float(self._interval_utility[interval_index])

    def total_utility(self, *, include_costs: bool = False) -> float:
        """Current total utility Ω (optionally net of organisation costs)."""
        total = float(self._interval_utility.sum())
        if include_costs:
            total -= self._applied_cost
        return total

    def expected_attendance(self, event_index: int, *, count: bool = False) -> float:
        """Expected attendance ω of an already-applied event under the current state."""
        if event_index not in self._events_applied:
            raise ScheduleError(f"event {event_index} has not been applied")
        interval_index = self._events_applied[event_index]
        denominator = self._comp[:, interval_index] + self._scheduled_interest[interval_index]
        numerator = self._sigma[:, interval_index] * self._mu[:, event_index]
        if count:
            self._counter.count_score()
        probabilities = _guarded_divide(numerator, denominator)
        return float(probabilities.sum()) * float(self._values[event_index])

    def attendance_probabilities(self, event_index: int) -> np.ndarray:
        """Per-user attendance probabilities ρ of an already-applied event (Eq. 1)."""
        if event_index not in self._events_applied:
            raise ScheduleError(f"event {event_index} has not been applied")
        interval_index = self._events_applied[event_index]
        denominator = self._comp[:, interval_index] + self._scheduled_interest[interval_index]
        numerator = self._sigma[:, interval_index] * self._mu[:, event_index]
        return _guarded_divide(numerator, denominator)

    # ------------------------------------------------------------------ #
    # Stateless schedule evaluation
    # ------------------------------------------------------------------ #
    def evaluate_schedule(
        self, schedule: Schedule, *, include_costs: bool = False, count: bool = False
    ) -> float:
        """Utility Ω(S) of an arbitrary schedule, independent of the engine state.

        This is used by the exact solver, the RAND baseline and the tests to
        evaluate schedules without mutating the incremental state.
        """
        total = 0.0
        cost = 0.0
        for interval_index in schedule.used_intervals():
            events_here = sorted(schedule.events_at(interval_index))
            interest_sum = np.zeros(self._instance.num_users, dtype=np.float64)
            value_sum = np.zeros(self._instance.num_users, dtype=np.float64)
            for event_index in events_here:
                column = self._mu[:, event_index]
                interest_sum += column
                value_sum += self._values[event_index] * column
                cost += self._costs[event_index]
                if count:
                    self._counter.count_score()
            total += self._interval_utility_of(interval_index, interest_sum, value_sum)
        if include_costs:
            total -= cost
        return total

    def per_event_attendance(self, schedule: Schedule) -> Dict[int, float]:
        """Expected attendance ω of every scheduled event of an arbitrary schedule."""
        attendance: Dict[int, float] = {}
        for interval_index in schedule.used_intervals():
            events_here = sorted(schedule.events_at(interval_index))
            interest_sum = np.zeros(self._instance.num_users, dtype=np.float64)
            for event_index in events_here:
                interest_sum += self._mu[:, event_index]
            denominator = self._comp[:, interval_index] + interest_sum
            sigma = self._sigma[:, interval_index]
            for event_index in events_here:
                numerator = sigma * self._mu[:, event_index]
                probabilities = _guarded_divide(numerator, denominator)
                attendance[event_index] = float(probabilities.sum()) * float(
                    self._values[event_index]
                )
        return attendance


def utility_of_schedule(
    instance: SESInstance, schedule: Schedule, *, include_costs: bool = False
) -> float:
    """Convenience wrapper: evaluate Ω(S) for a schedule on a fresh engine."""
    engine = ScoringEngine(instance)
    return engine.evaluate_schedule(schedule, include_costs=include_costs)
