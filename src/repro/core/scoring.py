"""The attendance model and scoring engine (paper Eq. 1–4).

The probability that user ``u`` attends candidate event ``e`` scheduled at
interval ``t`` follows Luce's choice model (Eq. 1):

.. math::

    ρ_{u,e}^t = σ_u^t · \\frac{µ_{u,e}}
        {\\sum_{c ∈ C_t} µ_{u,c} + \\sum_{p ∈ E_t(S)} µ_{u,p}}

The expected attendance of the event is the sum of these probabilities over
users (Eq. 2), the utility of a schedule is the sum of expected attendances of
its scheduled events (Eq. 3), and the *assignment score* of adding ``α_e^t``
to a schedule is the resulting gain in interval utility (Eq. 4).

:class:`ScoringEngine` maintains, per interval, the per-user sums needed to
evaluate a score in a single vectorised pass over the users, and reports every
evaluation to a :class:`~repro.core.counters.ComputationCounter` so that the
paper's "number of computations" metric (``|U|`` per score) can be reproduced
exactly.

*How* bulk evaluations run is delegated to the execution layer
(:mod:`repro.core.execution`): an :class:`~repro.core.execution.ExecutionConfig`
selects one of the registered :class:`~repro.core.execution.ExecutionBackend`
strategies — ``"scalar"`` (the per-pair reference), ``"batch"`` (the default:
whole candidate blocks per vectorised NumPy pass), ``"parallel"`` (the batch
blocks dispatched to a GIL-releasing thread pool), ``"process"`` (the score
matrix's per-interval columns sharded across a shared-memory process pool) or
``"cluster"`` (the same column tasks batched and sharded across remote TCP
workers) — plus the ``chunk_size`` / ``workers`` / ``start_method`` /
``workers_addr`` / ``cluster_key`` / ``task_batch`` knobs.  All backends
perform the same elementary operations in the same order per (user, event)
element, so their scores agree bit-for-bit among the bulk strategies (and to
machine precision with the scalar reference), and all report one score
computation (``|U|`` user computations) per (event, interval) pair to the
counter — the paper's metric is backend-independent by construction.

Two facilities support the incremental schedulers and large instances:

* :meth:`ScoringEngine.refresh_scores` is the bulk *stale-refresh* entry
  point: it recomputes the current scores of a selected set of events at one
  interval (the update-phase counterpart of the generation-phase bulk calls).
  INC and HOR-I use it to resolve whole prefixes of stale assignments in a
  few vectorised passes instead of one ``assignment_score`` call per pair.
* The bulk strategies *chunk the event axis*: bulk evaluations never
  materialise more than ``chunk_size × |U|`` temporary elements at once
  (``chunk_size`` defaults to :data:`~repro.core.execution.DEFAULT_CHUNK_ELEMENTS`
  divided by ``|U|``), so million-user instances stay within a bounded memory
  envelope.  Chunking splits only the event axis — every row's per-user
  reduction is unchanged — so chunked and unchunked results are bit-identical.

The engine also supports the §2.1 extensions: per-user weights (applied to σ)
and per-event value multipliers / organisation costs (profit-oriented SES).
With the default entity values these reduce exactly to the paper's equations.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.counters import ComputationCounter
from repro.core.errors import ScheduleError
from repro.core.execution import (  # noqa: F401  (re-exported compatibility surface)
    DEFAULT_BACKEND,
    DEFAULT_CHUNK_ELEMENTS,
    ExecutionBackend,
    ExecutionConfig,
    _guarded_divide,
    merge_legacy_execution,
    resolve_backend,
    resolve_chunk_size,
    resolve_workers,
    score_block_kernel,
)
from repro.core.instance import SESInstance
from repro.core.patterns import InterestStructure, mine_structure
from repro.core.schedule import Schedule
from repro.core.storage import (
    DenseEventRows,
    DenseStore,
    EventRowSource,
    InterestStore,
    StoreEventRows,
)


def build_static_arrays(instance: SESInstance):
    """The kernels' static per-instance inputs: ``(comp, sigma, values, costs)``.

    ``comp`` are the per-interval competing-interest sums, ``sigma`` the
    weight-scaled activity probabilities, ``values`` / ``costs`` the per-event
    multipliers.  Factored out of the engine so the distributed worker's
    file-rebuild path derives bit-identical arrays from a shipped instance
    file: both sides run exactly this code on exactly the same inputs.
    """
    comp = instance.competing_sums
    sigma = instance.activity * instance.user_weights[:, np.newaxis]
    values = instance.event_values()
    costs = instance.event_costs()
    return comp, sigma, values, costs


def build_event_rows(store: InterestStore, values: np.ndarray) -> EventRowSource:
    """The event-major row source the bulk strategies iterate.

    A dense store precomputes the contiguous ``µ.T`` and ``value·µ.T``
    matrices once (today's behaviour, served as zero-copy views); sparse and
    mmap stores densify one event block at a time through
    :class:`~repro.core.storage.StoreEventRows`, computing ``value·µ`` per
    block — elementwise-identical to the dense precompute, so every backend
    stays bit-identical across storages.
    """
    if isinstance(store, DenseStore):
        mu_rows = np.ascontiguousarray(store.to_dense().T)
        return DenseEventRows(mu_rows, values[:, np.newaxis] * mu_rows)
    return StoreEventRows(store, values)


def __getattr__(name: str):
    """Keep ``SCORING_BACKENDS`` / ``BULK_BACKENDS`` importable from here.

    The tuples live in :mod:`repro.core.execution` now and are registry-backed
    (custom backends registered via
    :func:`~repro.core.execution.register_backend` appear automatically);
    importing them from this module keeps working.
    """
    if name in ("SCORING_BACKENDS", "BULK_BACKENDS"):
        from repro.core import execution

        return getattr(execution, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class ScoringEngine:
    """Incremental evaluator of interval utilities and assignment scores.

    The engine holds, for every interval ``t``:

    * ``comp[:, t]`` — the per-user competing-interest sums (static),
    * ``A[t]`` — the per-user sums of interest over events currently scheduled
      at ``t`` (updated by :meth:`apply`),
    * ``V[t]`` — the value-weighted variant of ``A[t]`` (identical when all
      event values are 1.0),
    * the interval's current utility.

    Every call to :meth:`assignment_score` costs one pass over the users and
    is counted as one score computation (``|U|`` user computations), matching
    the paper's metric.  :meth:`interval_scores` and :meth:`score_matrix`
    evaluate many assignments at once (how is decided by the execution
    backend) and count one score computation per evaluated pair, so counter
    totals are identical across backends.

    Parameters
    ----------
    execution:
        The :class:`~repro.core.execution.ExecutionConfig` selecting the
        execution backend and its knobs (``None`` selects the library
        defaults).  Only affects how :meth:`interval_scores` /
        :meth:`score_matrix` compute their results — never the values.
    backend, chunk_size, workers:
        .. deprecated:: PR 4
           Legacy loose knobs, folded into ``execution`` with a
           :class:`DeprecationWarning`.  Passing them together with
           ``execution`` raises.
    """

    def __init__(
        self,
        instance: SESInstance,
        counter: Optional[ComputationCounter] = None,
        *,
        execution: Optional[ExecutionConfig] = None,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        self._instance = instance
        self._counter = counter if counter is not None else ComputationCounter()
        if self._counter.num_users == 0:
            self._counter.num_users = instance.num_users
        execution = merge_legacy_execution(
            execution,
            backend=backend,
            chunk_size=chunk_size,
            workers=workers,
            owner="ScoringEngine",
        )
        self._execution = execution.resolve(instance.num_users)
        self._backend_impl = self._execution.create_backend().bind(self)

        self._store = instance.interest.store
        self._comp, self._sigma, self._values, self._costs = build_static_arrays(instance)

        if self._backend_impl.is_bulk:
            # Event-major rows of µ and value·µ: each row is one event's
            # per-user column, contiguous so that the per-row reductions of
            # the bulk strategies use the same pairwise summation as the
            # scalar path's 1-D sums (keeping the backends bit-identical).
            # Dense stores precompute both matrices once; sparse/mmap stores
            # densify per block so memory stays bounded by the chunk size.
            self._event_rows: Optional[EventRowSource] = build_event_rows(
                self._store, self._values
            )
        else:
            self._event_rows = None

        # Per-interval upper bound on the floating-point noise of one
        # assignment score (see score_noise_tolerance): every per-user
        # attendance term is within [0, σ_u · max value], utilities are sums
        # of |U| such terms, and a score is a difference of two utilities.
        value_scale = float(np.max(self._values, initial=1.0))
        self._score_noise_tol = (
            1024.0
            * np.finfo(np.float64).eps
            * (1.0 + self._sigma.sum(axis=0) * max(1.0, value_scale))
        )

        num_intervals = instance.num_intervals
        num_users = instance.num_users
        self._scheduled_interest = np.zeros((num_intervals, num_users), dtype=np.float64)
        self._scheduled_value_interest = np.zeros((num_intervals, num_users), dtype=np.float64)
        self._interval_utility = np.zeros(num_intervals, dtype=np.float64)
        self._applied_cost = 0.0
        self._events_applied: Dict[int, int] = {}

        # Statics of the per-interval fresh-score upper bound (computed once,
        # lazily, by _ensure_bound_statics) and the per-interval bound cache
        # (invalidated by apply()/reset() for the touched interval).
        self._bound_ready = False
        self._bound_max_value: Optional[np.ndarray] = None
        self._bound_max_value_mu: Optional[np.ndarray] = None
        self._bound_structure: Optional[InterestStructure] = None
        self._bound_pattern_mu: Optional[np.ndarray] = None
        self._bound_cache: Dict[int, float] = {}

        # The scoring plan decides how the in-process bulk kernel traverses
        # one event block (see ScoringPlan); bound last so its prepare() hook
        # can mine structure from the fully-initialised engine.
        self._plan_impl = self._execution.create_plan().bind(self)

    # ------------------------------------------------------------------ #
    # Properties
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> SESInstance:
        """The instance the engine evaluates."""
        return self._instance

    @property
    def counter(self) -> ComputationCounter:
        """The counter receiving score-computation events."""
        return self._counter

    @property
    def execution(self) -> ExecutionConfig:
        """The fully-resolved execution configuration of this engine."""
        return self._execution

    @property
    def execution_backend(self) -> ExecutionBackend:
        """The live execution-backend strategy instance."""
        return self._backend_impl

    @property
    def backend(self) -> str:
        """Name of the active execution backend.

        One of the registered strategies — ``"scalar"``, ``"batch"``,
        ``"parallel"``, ``"process"``, ``"cluster"``, or any custom backend
        added through :func:`~repro.core.execution.register_backend`.
        """
        return self._execution.backend

    @property
    def plan(self) -> str:
        """Name of the active scoring plan (``"direct"`` unless selected otherwise)."""
        return self._execution.plan

    @property
    def scoring_plan(self):
        """The live :class:`~repro.core.execution.ScoringPlan` instance."""
        return self._plan_impl

    @property
    def is_bulk(self) -> bool:
        """Whether the active backend evaluates whole event blocks at once."""
        return self._backend_impl.is_bulk

    @property
    def chunk_size(self) -> int:
        """Events evaluated per vectorised pass (the bulk memory guard)."""
        return self._execution.chunk_size

    @property
    def workers(self) -> int:
        """Worker count of the pooled backends (1 for the serial backends)."""
        return self._execution.workers

    def close(self) -> None:
        """Release the backend's pools / shared memory (safe to call repeatedly)."""
        self._backend_impl.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:  # staticcheck: allow(broad-except) -- __del__ during interpreter teardown: modules may be half-gone and there is no caller to report to; close() is retried nowhere
            pass

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Forget every applied assignment (counters are *not* reset)."""
        self._scheduled_interest.fill(0.0)
        self._scheduled_value_interest.fill(0.0)
        self._interval_utility.fill(0.0)
        self._applied_cost = 0.0
        self._events_applied.clear()
        self._bound_cache.clear()

    def apply(self, event_index: int, interval_index: int, score: Optional[float] = None) -> float:
        """Add event ``event_index`` to interval ``interval_index``.

        Parameters
        ----------
        score:
            The previously computed assignment score for this pair.  When
            given, the interval utility is advanced by it without recomputing
            (this mirrors how the paper's algorithms reuse the score of the
            selected assignment); otherwise the score is computed (and
            counted) first.

        Returns
        -------
        float
            The gain in total utility caused by the assignment.
        """
        if event_index in self._events_applied:
            raise ScheduleError(
                f"event {event_index} was already applied to interval "
                f"{self._events_applied[event_index]}"
            )
        if score is None:
            score = self.assignment_score(event_index, interval_index)
        column = self._mu_column(event_index)
        self._scheduled_interest[interval_index] += column
        self._scheduled_value_interest[interval_index] += self._values[event_index] * column
        self._interval_utility[interval_index] += score
        self._applied_cost += self._costs[event_index]
        self._events_applied[event_index] = interval_index
        self._bound_cache.pop(interval_index, None)
        return score

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def _interval_utility_of(
        self,
        interval_index: int,
        scheduled_interest: np.ndarray,
        scheduled_value_interest: np.ndarray,
    ) -> float:
        """Utility of one interval for given per-user scheduled-interest sums."""
        denominator = self._comp[:, interval_index] + scheduled_interest
        numerator = self._sigma[:, interval_index] * scheduled_value_interest
        contributions = _guarded_divide(numerator, denominator)
        return float(contributions.sum())

    def assignment_score(
        self,
        event_index: int,
        interval_index: int,
        *,
        initial: bool = False,
        count: bool = True,
    ) -> float:
        """Assignment score (Eq. 4): utility gain of adding ``α_e^t`` now.

        Parameters
        ----------
        initial:
            Whether the computation belongs to the initial assignment
            generation phase (kept separate in the counters).
        count:
            Set to ``False`` for evaluations that should not affect the
            paper's computation metric (e.g. reporting).
        """
        if count:
            self._counter.count_score(initial=initial)
        return self._pair_score(event_index, interval_index)

    def _mu_column(self, event_index: int) -> np.ndarray:
        """Dense per-user interest column of one event.

        A view for the ``"dense"`` storage (exactly the old ``µ[:, e]``);
        sparse and mmap stores densify the single ``|U|`` column, holding the
        same float values, so every consumer stays bit-identical.
        """
        return self._store.column(event_index)

    def _pair_score(self, event_index: int, interval_index: int) -> float:
        """The scalar (reference) score computation of one (event, interval) pair."""
        column = self._mu_column(event_index)
        new_interest = self._scheduled_interest[interval_index] + column
        new_value_interest = (
            self._scheduled_value_interest[interval_index] + self._values[event_index] * column
        )
        new_utility = self._interval_utility_of(interval_index, new_interest, new_value_interest)
        return new_utility - self._interval_utility[interval_index]

    def interval_scores(
        self,
        interval_index: int,
        event_indices: Optional[Sequence[int]] = None,
        *,
        initial: bool = False,
        count: bool = True,
    ) -> np.ndarray:
        """Assignment scores of many candidate events for one interval (Eq. 4, batched).

        Parameters
        ----------
        event_indices:
            Events to evaluate (defaults to every candidate event), in the
            order the returned vector follows.
        initial, count:
            As in :meth:`assignment_score`; when counting, one score
            computation is recorded per evaluated event, so the paper's
            metric is identical to per-pair evaluation.

        Returns
        -------
        numpy.ndarray
            ``scores[i]`` is the assignment score of
            ``(event_indices[i], interval_index)`` against the current state.
        """
        if event_indices is None:
            # Passing None lets the bulk strategies score their precomputed
            # full event set without materialising an index copy.
            selector = None
            num_selected = self._instance.num_events
        else:
            selector = np.asarray(event_indices, dtype=np.intp)
            num_selected = int(selector.size)
        if count and num_selected:
            self._counter.count_scores(num_selected, initial=initial)
        return self._backend_impl.interval_scores(interval_index, selector)

    def refresh_scores(
        self,
        interval_index: int,
        event_indices: Sequence[int],
        *,
        count: bool = True,
    ) -> np.ndarray:
        """Bulk stale refresh: recompute current scores of selected events at one interval.

        This is the update-phase counterpart of the generation-phase bulk
        calls — semantically identical to one :meth:`assignment_score` per
        (event, interval) pair against the current state, evaluated under the
        active backend (vectorised and chunked under the bulk strategies).

        Parameters
        ----------
        count:
            When ``True`` each refreshed pair is recorded as one *update*
            computation.  The incremental schedulers (INC, HOR-I) pass
            ``False`` because they fetch stale prefixes *speculatively*: they
            count one update computation per score their walk actually
            consumes, so the paper's metric stays bit-identical to the scalar
            reference even when a speculative block is cut short by the Φ
            bound.
        """
        return self.interval_scores(interval_index, event_indices, initial=False, count=count)

    def _select_event_rows(self, events: Optional[np.ndarray]) -> EventRowSource:
        """The event-major row source for a selection (``None`` = all events)."""
        if events is None:
            return self._event_rows
        return self._event_rows.select(events)

    def _batch_block(
        self, interval_index: int, mu_rows: np.ndarray, value_mu_rows: np.ndarray
    ) -> np.ndarray:
        """One vectorised pass over a block of event rows.

        Rows are events, columns users.  Delegates to the active scoring plan
        (:class:`~repro.core.execution.ScoringPlan`): the ``direct`` reference
        runs the library's single bit-identity-critical kernel
        (:func:`~repro.core.execution.score_block_kernel` — also run by the
        process backend's workers) over every user column, whose per-element
        operation order matches :meth:`_pair_score` exactly; the ``blocked``
        plan of :mod:`repro.analysis.blocks` computes each distinct interest
        pattern once and expands by multiplicity before the same per-row
        reduction, so each element — and the reduction order — stays
        bit-identical to the scalar path under every plan.
        """
        return self._plan_impl.batch_block(interval_index, mu_rows, value_mu_rows)

    def score_matrix(
        self,
        event_indices: Optional[Sequence[int]] = None,
        *,
        initial: bool = False,
        count: bool = True,
    ) -> np.ndarray:
        """The full score matrix of the candidate bipartite space.

        Returns an ``(len(event_indices), |T|)`` array whose ``[i, t]`` entry
        is the assignment score of ``(event_indices[i], t)`` against the
        current engine state (``event_indices`` defaults to all events).
        Counts one score computation per (event, interval) pair.  The active
        backend decides how the matrix is assembled — per pair, per vectorised
        column, or with the columns sharded across a process pool — without
        changing a result bit.
        """
        if event_indices is None:
            selector = None
            num_selected = self._instance.num_events
        else:
            selector = np.asarray(event_indices, dtype=np.intp)
            num_selected = int(selector.size)
        num_intervals = self._instance.num_intervals
        if count and num_selected and num_intervals:
            self._counter.count_scores(num_selected * num_intervals, initial=initial)
        return self._backend_impl.score_matrix(selector)

    def score_noise_tolerance(self, interval_index: int) -> float:
        """Floating-point noise bound of one assignment score at this interval.

        Proposition 1 (stale scores are upper bounds of fresh scores) holds in
        exact arithmetic, but a score is a difference of two |U|-term utility
        sums, so two mathematically equal scores can differ by rounding noise
        — enough to flip the incremental schedulers' Φ-bound pruning on
        exact-tie instances.  The bound returned here (``1024·ε`` times the
        interval's largest possible utility magnitude, ``Σ_u σ_u ·
        max value``) safely exceeds that noise while staying far below any
        meaningful score difference; INC and HOR-I prune stale entries only
        when they are at least this far below Φ.
        """
        return float(self._score_noise_tol[interval_index])

    def _ensure_bound_statics(self) -> None:
        """Static inputs of :meth:`interval_score_bound` (one streamed pass, lazy).

        Per-user statics: ``max_value_mu[u] = max_e value_e · µ_{u,e}`` caps
        the value-weighted interest any single candidate event can add for
        user ``u``; ``max_value[u] = max {value_e : µ_{u,e} > 0}`` caps the
        per-user attendance value outright.  Both are exact maxima (max is
        rounding free), streamed over event blocks under the chunk-size
        memory guard, so they are identical across backends, storages and
        chunkings.

        Structural statics: the interest-pattern equivalence classes
        (:func:`~repro.core.patterns.mine_structure`, reused from the active
        plan when it already mined them) and the ``(|E|, P)`` pattern matrix
        of ``value·µ`` representative columns, which turn the bound's
        per-user event maximum into a *per-event* sum over patterns — far
        tighter (see :meth:`interval_score_bound`).  The pattern matrix is
        only materialised while ``|E| · P`` fits the library's chunk memory
        budget; past it the bound falls back to the per-user cap, a
        deterministic rule (it depends only on instance shape), so bound
        values never depend on backend, storage or plan.
        """
        if self._bound_ready:
            return
        num_users = self._instance.num_users
        num_events = self._instance.num_events
        max_value_mu = np.zeros(num_users, dtype=np.float64)
        max_value = np.zeros(num_users, dtype=np.float64)
        source = self._event_rows
        if source is None:
            source = build_event_rows(self._store, self._values)
        structure = self._plan_impl.mined_structure()
        if structure is None:
            structure = mine_structure(
                source, self._sigma, self._comp, self._execution.chunk_size
            )
        pattern_mu: Optional[np.ndarray] = None
        if structure.num_classes * num_events <= DEFAULT_CHUNK_ELEMENTS:
            pattern_mu = np.empty((num_events, structure.num_classes), dtype=np.float64)
        step = max(1, self._execution.chunk_size)
        for start in range(0, num_events, step):
            stop = min(start + step, num_events)
            mu_rows, value_mu_rows = source.block(start, stop)
            np.maximum(max_value_mu, value_mu_rows.max(axis=0), out=max_value_mu)
            block_values = np.where(
                mu_rows > 0.0, self._values[start:stop, np.newaxis], 0.0
            )
            np.maximum(max_value, block_values.max(axis=0), out=max_value)
            if pattern_mu is not None:
                pattern_mu[start:stop] = mu_rows[:, structure.representatives]
        self._bound_max_value_mu = max_value_mu
        self._bound_max_value = max_value
        self._bound_structure = structure
        self._bound_pattern_mu = pattern_mu
        self._bound_ready = True

    def interval_score_bound(self, interval_index: int) -> float:
        """Sound upper bound on any *fresh* assignment score at one interval.

        For every candidate event ``e`` and user ``u`` the fresh per-user
        attendance term is ``σ·(SV + v_e·µ)/(C + S + µ)`` with ``C`` the
        competing sum and ``S``/``SV`` the interval's scheduled sums.  It is
        bounded (in exact arithmetic) by ``σ·SV/(C+S)`` plus a gain cap:

        * **Structural bound** (the block-decomposition tier, used while the
          ``(|E|, P)`` pattern matrix fits the memory budget): the exact
          per-user gain rewrites to ``σ·(µ/(C+S+µ))·(v_e − SV/(C+S))`` and
          is bounded by ``σ·min(µ/(C+S), 1)·max(0, v_e − SV/(C+S))`` — one
          term per *pattern class* scaled by its multiplicity, maximised
          over the not-yet-scheduled events.  Tight: the only slack is
          ``(C+S+µ)/(C+S)`` per user, so on lightly-interested users the
          bound hugs the best event's true gain, and saturated users
          (``SV/(C+S) ≥ v_e``) contribute nothing.
        * **Per-user fallback** (pattern matrix over budget):
          ``σ·min(max_value, max_value_mu/(C+S))`` per user, which replaces
          the event maximum of a sum by a sum of per-user maxima (looser,
          but |U|-cheap and memory free).

        Users with ``C+S = 0`` have zero scheduled sums and contribute at
        most ``σ·max_value`` under either tier.  Summing and subtracting the
        interval utility bounds every fresh score at this interval, however
        the schedule got here.

        Unlike the stale scores the incremental schedulers prune against
        (frozen at computation time), this bound *tightens* as the interval's
        schedule grows — INC and HOR-I use it to skip entire interval walks
        whose ceiling is already below Φ.  The bound depends only on engine
        state and the deterministic mined structure, so skip decisions — and
        therefore counter totals — are identical across backends, storages
        and plans.  Callers must leave a floating-point margin (a few
        :meth:`score_noise_tolerance`) between the bound and Φ.  Cached per
        interval until :meth:`apply` touches the interval; each fresh
        evaluation is recorded under the ``phi_bound_evaluations`` extra
        counter.
        """
        cached = self._bound_cache.get(interval_index)
        if cached is not None:
            return cached
        self._ensure_bound_statics()
        self._counter.bump("phi_bound_evaluations")
        sigma = self._sigma[:, interval_index]
        denominator = self._comp[:, interval_index] + self._scheduled_interest[interval_index]
        scheduled_term = _guarded_divide(
            sigma * self._scheduled_value_interest[interval_index], denominator
        )
        if self._bound_pattern_mu is not None:
            structure = self._bound_structure
            representatives = structure.representatives
            class_denominator = denominator[representatives]
            inverse_denominator = _guarded_divide(
                np.ones_like(class_denominator), class_denominator
            )
            # (|E|, P): min(µ/(C+S), 1) per class — zero-denominator classes
            # drop out here and are covered by the max_value term below.
            ratios = np.minimum(self._bound_pattern_mu * inverse_denominator, 1.0)
            # (|E|, P): max(0, v_e − SV/(C+S)) — the headroom the interval's
            # current schedule leaves a new event for this class's users.
            headroom = np.maximum(
                self._values[:, np.newaxis]
                - _guarded_divide(
                    self._scheduled_value_interest[interval_index][representatives],
                    class_denominator,
                ),
                0.0,
            )
            weights = structure.counts * sigma[representatives]
            per_event = (ratios * headroom) @ weights
            if self._events_applied:
                per_event[list(self._events_applied)] = -np.inf
            peak = float(per_event.max()) if per_event.size else float("-inf")
            zero_denominator = denominator <= 0.0
            gain_total = peak + float(
                (sigma * self._bound_max_value)[zero_denominator].sum()
            )
        else:
            gain_cap = _guarded_divide(self._bound_max_value_mu, denominator)
            gain = np.where(
                denominator > 0.0,
                np.minimum(self._bound_max_value, gain_cap),
                self._bound_max_value,
            )
            gain_total = float((sigma * gain).sum())
        bound = float(
            scheduled_term.sum() + gain_total - self._interval_utility[interval_index]
        )
        self._bound_cache[interval_index] = bound
        return bound

    def applied_assignments(self) -> Dict[int, int]:
        """``{event_index: interval_index}`` of every applied assignment (a copy).

        Lets warm-state callers (the online service's cached score grids)
        verify the engine state they captured a grid against still matches.
        """
        return dict(self._events_applied)

    def interval_utility(self, interval_index: int) -> float:
        """Current utility of one interval."""
        return float(self._interval_utility[interval_index])

    def total_utility(self, *, include_costs: bool = False) -> float:
        """Current total utility Ω (optionally net of organisation costs)."""
        total = float(self._interval_utility.sum())
        if include_costs:
            total -= self._applied_cost
        return total

    def expected_attendance(self, event_index: int, *, count: bool = False) -> float:
        """Expected attendance ω of an already-applied event under the current state."""
        if event_index not in self._events_applied:
            raise ScheduleError(f"event {event_index} has not been applied")
        interval_index = self._events_applied[event_index]
        denominator = self._comp[:, interval_index] + self._scheduled_interest[interval_index]
        numerator = self._sigma[:, interval_index] * self._mu_column(event_index)
        if count:
            self._counter.count_score()
        probabilities = _guarded_divide(numerator, denominator)
        return float(probabilities.sum()) * float(self._values[event_index])

    def attendance_probabilities(self, event_index: int) -> np.ndarray:
        """Per-user attendance probabilities ρ of an already-applied event (Eq. 1)."""
        if event_index not in self._events_applied:
            raise ScheduleError(f"event {event_index} has not been applied")
        interval_index = self._events_applied[event_index]
        denominator = self._comp[:, interval_index] + self._scheduled_interest[interval_index]
        numerator = self._sigma[:, interval_index] * self._mu_column(event_index)
        return _guarded_divide(numerator, denominator)

    # ------------------------------------------------------------------ #
    # Stateless schedule evaluation
    # ------------------------------------------------------------------ #
    def evaluate_schedule(
        self, schedule: Schedule, *, include_costs: bool = False, count: bool = False
    ) -> float:
        """Utility Ω(S) of an arbitrary schedule, independent of the engine state.

        This is used by the exact solver, the RAND baseline and the tests to
        evaluate schedules without mutating the incremental state.
        """
        total = 0.0
        cost = 0.0
        for interval_index in schedule.used_intervals():
            events_here = sorted(schedule.events_at(interval_index))
            interest_sum = np.zeros(self._instance.num_users, dtype=np.float64)
            value_sum = np.zeros(self._instance.num_users, dtype=np.float64)
            for event_index in events_here:
                column = self._mu_column(event_index)
                interest_sum += column
                value_sum += self._values[event_index] * column
                cost += self._costs[event_index]
                if count:
                    self._counter.count_score()
            total += self._interval_utility_of(interval_index, interest_sum, value_sum)
        if include_costs:
            total -= cost
        return total

    def per_event_attendance(self, schedule: Schedule) -> Dict[int, float]:
        """Expected attendance ω of every scheduled event of an arbitrary schedule."""
        attendance: Dict[int, float] = {}
        for interval_index in schedule.used_intervals():
            events_here = sorted(schedule.events_at(interval_index))
            interest_sum = np.zeros(self._instance.num_users, dtype=np.float64)
            for event_index in events_here:
                interest_sum += self._mu_column(event_index)
            denominator = self._comp[:, interval_index] + interest_sum
            sigma = self._sigma[:, interval_index]
            for event_index in events_here:
                numerator = sigma * self._mu_column(event_index)
                probabilities = _guarded_divide(numerator, denominator)
                attendance[event_index] = float(probabilities.sum()) * float(
                    self._values[event_index]
                )
        return attendance


def utility_of_schedule(
    instance: SESInstance, schedule: Schedule, *, include_costs: bool = False
) -> float:
    """Convenience wrapper: evaluate Ω(S) for a schedule on a fresh engine."""
    engine = ScoringEngine(instance)
    return engine.evaluate_schedule(schedule, include_costs=include_costs)
