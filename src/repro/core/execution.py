"""The execution-backend layer of the scoring engine.

Every bulk evaluation of the scoring engine — :meth:`ScoringEngine.interval_scores`,
:meth:`ScoringEngine.score_matrix`, :meth:`ScoringEngine.refresh_scores` — runs
through an :class:`ExecutionBackend` strategy selected by an
:class:`ExecutionConfig`.  The layer owns every knob that decides *how* scores
are computed (never *what* they are):

* ``backend`` — the strategy name.  Built in:

  - ``"scalar"`` (:class:`ScalarBackend`) — the reference implementation, one
    pass over the users per (event, interval) pair;
  - ``"batch"`` (:class:`BatchBackend`, the default) — whole candidate blocks
    per vectorised NumPy pass, chunked along the event axis;
  - ``"parallel"`` (:class:`ThreadBackend`) — the batch backend's event-axis
    chunks dispatched to a thread pool (the chunk kernel releases the GIL);
  - ``"process"`` (:class:`ProcessBackend`) — :meth:`ScoringEngine.score_matrix`'s
    per-interval columns sharded across a ``multiprocessing`` pool, with the
    static instance matrices published once through POSIX shared memory so the
    workers never re-pickle them;
  - ``"cluster"`` (:class:`~repro.core.distributed.client.ClusterBackend`) —
    the same per-interval column tasks sharded across **remote** worker
    processes over TCP (``repro worker serve``), with the static matrices
    shipped once per instance fingerprint and cached worker-side.

* ``chunk_size`` — events per vectorised pass (the ~64 MB memory guard);
* ``workers`` — fan-out of the pooled backends (threads or processes);
* ``start_method`` — the ``multiprocessing`` start method of the process
  backend (``"fork"`` where available, with full ``"spawn"`` /
  ``"forkserver"`` support);
* ``workers_addr`` / ``cluster_key`` — the cluster backend's remote worker
  addresses and shared authentication secret;
* ``task_batch`` — columns per cluster wire batch (``None`` auto-derives
  ``ceil(|T| / (lanes * TASK_OVERSUBSCRIBE))``, clamped — see
  :func:`~repro.core.distributed.protocol.derive_task_batch`).

Custom strategies plug in through :func:`register_backend`; everything else —
engine, schedulers, harness, figures, CLI — talks to the layer only through
:class:`ExecutionConfig` and the strategy interface, so adding a backend is a
one-module change.

**The invariant every backend must keep:** sharding splits only the event axis
(or dispatches whole per-interval columns), and every event row's per-user
reduction is independent of the others, so schedules, utilities, scores and
counter totals are bit-identical across backends — serial, threaded or
multi-process, whatever the split.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import sys
import threading
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Type

import numpy as np

from repro.core.distributed.protocol import (
    DEFAULT_CLUSTER_KEY,
    format_worker_address,
    parse_worker_address,
)
from repro.core.errors import SolverError
from repro.core.storage import (
    DenseEventRows,
    EventRowSource,
    MmapStore,
    SparseStore,
    StoreEventRows,
    as_sparse,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scoring imports us)
    from repro.core.scoring import ScoringEngine

#: Backend used when none is requested explicitly.
DEFAULT_BACKEND: str = "batch"

#: Memory budget of one bulk evaluation, in matrix *elements* (events × users).
#: The default chunk size is this budget divided by ``|U|``, which caps every
#: batched temporary at ~64 MB of float64 regardless of instance size.
DEFAULT_CHUNK_ELEMENTS: int = 8_000_000

#: Scoring plan used when none is requested explicitly (see :class:`ScoringPlan`).
DEFAULT_PLAN: str = "direct"


def score_block_kernel(
    mu_rows: np.ndarray,
    value_mu_rows: np.ndarray,
    comp_column: np.ndarray,
    sigma_column: np.ndarray,
    scheduled: np.ndarray,
    scheduled_value: np.ndarray,
    utility: float,
) -> np.ndarray:
    """Assignment scores of one block of event rows at one interval (Eq. 4).

    This is the **single** bit-identity-critical kernel of the library: the
    engine's in-process batch path and the process backend's workers both call
    it, so the scoring arithmetic cannot diverge between them.  The
    per-element operation order matches the scalar reference exactly (µ added
    to the scheduled sums first, competing sums last; value·µ added to the
    value sums before the σ product), and each row's per-user reduction is
    independent of every other row's.
    """
    denominator = comp_column + (scheduled + mu_rows)
    numerator = sigma_column * (scheduled_value + value_mu_rows)
    contributions = _guarded_divide(numerator, denominator)
    return contributions.sum(axis=1) - utility


def _guarded_divide(numerator: np.ndarray, denominator: np.ndarray) -> np.ndarray:
    """Elementwise ``numerator / denominator`` with zeros where the denominator is not positive.

    This is the library's single division guard: every per-user attendance
    term — scalar, batched or computed in a worker process — goes through it,
    so a user whose competing + scheduled interest sums to zero contributes
    exactly 0.0 on every code path.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.divide(
            numerator,
            denominator,
            out=np.zeros_like(numerator),
            where=denominator > 0.0,
        )


# --------------------------------------------------------------------------- #
# Knob resolution
# --------------------------------------------------------------------------- #
def resolve_backend(backend: Optional[str]) -> str:
    """Validate a backend name (``None`` means :data:`DEFAULT_BACKEND`)."""
    if backend is None:
        return DEFAULT_BACKEND
    if backend not in _BACKEND_REGISTRY:
        raise SolverError(
            f"unknown scoring backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return backend


def resolve_chunk_size(chunk_size: Optional[int], num_users: int) -> int:
    """Validate the event-axis chunk size (``None`` derives it from the memory budget).

    The automatic default keeps one batched temporary at
    :data:`DEFAULT_CHUNK_ELEMENTS` elements: ``max(1, budget // |U|)`` events
    per chunk.  An explicit value is the number of events evaluated per
    vectorised pass and must be a positive integer.
    """
    if chunk_size is None:
        return max(1, DEFAULT_CHUNK_ELEMENTS // max(1, num_users))
    if not isinstance(chunk_size, int) or isinstance(chunk_size, bool) or chunk_size < 1:
        raise SolverError(f"chunk_size must be a positive integer or None, got {chunk_size!r}")
    return chunk_size


def resolve_workers(
    workers: Optional[int],
    backend: Optional[str] = None,
    workers_addr: Optional[Tuple[str, ...]] = None,
) -> int:
    """Validate the pooled backends' worker count (``None`` means auto).

    The automatic default is the machine's CPU count (at least 1) — except for
    a cluster run with configured worker addresses, where it is the number of
    remote workers (one dispatch lane per worker).  An explicit value must be
    a positive integer; ``1`` makes the in-process pooled backends degrade to
    the serial batch path.

    When ``backend`` is given and its strategy does not fan out
    (:attr:`ExecutionBackend.uses_workers` is false), the resolved count is
    pinned to 1 (after validation): the serial backends never fan out, and
    recording the machine's CPU count for them would make otherwise-identical
    runs look different across machines in the harness tables.
    """
    if workers is not None and (
        not isinstance(workers, int) or isinstance(workers, bool) or workers < 1
    ):
        raise SolverError(f"workers must be a positive integer or None, got {workers!r}")
    if backend is not None and not get_backend(resolve_backend(backend)).uses_workers:
        return 1
    if workers is None:
        if workers_addr:
            return len(workers_addr)
        return max(1, os.cpu_count() or 1)
    return workers


def resolve_start_method(start_method: Optional[str], backend: Optional[str] = None) -> Optional[str]:
    """Validate the process backend's ``multiprocessing`` start method.

    ``None`` means *auto*: the method is picked when the pool is actually
    created — ``"fork"`` where the platform offers it **and** the process is
    still single-threaded (cheap, inherits the warmed-up interpreter), a
    fork-safe method (``"forkserver"``, else ``"spawn"``) otherwise, because
    forking a multi-threaded process can inherit locks mid-acquisition and
    deadlock the child.  See :func:`_auto_start_method`.  Backends that do
    not spawn processes (:attr:`ExecutionBackend.uses_processes` is false)
    also resolve to ``None`` — the knob does not apply to them.
    """
    supported = multiprocessing.get_all_start_methods()
    if start_method is not None and start_method not in supported:
        raise SolverError(
            f"unknown start method {start_method!r}; available: {', '.join(supported)}"
        )
    if backend is not None and not get_backend(resolve_backend(backend)).uses_processes:
        return None
    return start_method


def _auto_start_method() -> str:
    """The start method used when none was requested explicitly.

    ``fork`` is ~10× cheaper than the alternatives (no fresh interpreter, no
    re-imports), but it is only safe while this process has exactly one
    thread: a fork taken while another thread holds a lock (a thread-pool
    queue, an import lock, …) leaves that lock permanently held in the child.
    The thread count is checked at *pool-creation* time, so a single-threaded
    CLI / benchmark run gets the fast path even though the library also
    offers a thread backend.  The check sees Python threads only — an
    embedding process with *native* threads (a BLAS build without atfork
    handlers, grpc, …) should pin ``start_method="forkserver"`` or
    ``"spawn"`` explicitly.  The fast path is further limited to Linux:
    on macOS forking is unsafe regardless of Python threads (system
    frameworks abort in forked children — the reason CPython switched the
    platform default to spawn).
    """
    supported = multiprocessing.get_all_start_methods()
    if (
        "fork" in supported
        and sys.platform.startswith("linux")
        and threading.active_count() == 1
    ):
        return "fork"
    if "forkserver" in supported:
        return "forkserver"
    return "spawn"


def resolve_workers_addr(
    workers_addr, backend: Optional[str] = None
) -> Tuple[str, ...]:
    """Validate and normalise the cluster backend's worker addresses.

    Accepts ``None`` (no cluster configured), a single ``"host:port[,...]"``
    string, or an iterable of ``"host:port"`` strings; every entry is
    validated by :func:`~repro.core.distributed.protocol.parse_worker_address`
    and returned in canonical form.  Backends that are not distributed
    (:attr:`ExecutionBackend.uses_cluster` is false) resolve to the empty
    tuple — the knob does not apply to them.
    """
    if workers_addr is None:
        addresses: Tuple[str, ...] = ()
    elif isinstance(workers_addr, str):
        addresses = tuple(part.strip() for part in workers_addr.split(",") if part.strip())
    else:
        addresses = tuple(workers_addr)
    normalized = tuple(format_worker_address(*parse_worker_address(a)) for a in addresses)
    if backend is not None and not get_backend(resolve_backend(backend)).uses_cluster:
        return ()
    return normalized


def resolve_task_batch(
    task_batch: Optional[int], backend: Optional[str] = None
) -> Optional[int]:
    """Validate the cluster backend's wire batch size (``None`` means auto).

    ``None`` keeps the per-call automatic derivation
    (:func:`~repro.core.distributed.protocol.derive_task_batch` — the size
    depends on the instance's interval count, so it cannot be fixed at config
    time).  An explicit value must be a positive integer; ``1`` reproduces the
    v1 per-column dispatch unit.  Backends that are not distributed
    (:attr:`ExecutionBackend.uses_cluster` is false) resolve to ``None`` —
    the knob does not apply to them.
    """
    if task_batch is not None and (
        not isinstance(task_batch, int) or isinstance(task_batch, bool) or task_batch < 1
    ):
        raise SolverError(
            f"task_batch must be a positive integer or None, got {task_batch!r}"
        )
    if backend is not None and not get_backend(resolve_backend(backend)).uses_cluster:
        return None
    return task_batch


def resolve_plan(plan: Optional[str], backend: Optional[str] = None) -> str:
    """Validate a scoring-plan name (``None`` means :data:`DEFAULT_PLAN`).

    A plan decides how the in-process bulk kernel traverses one event block
    (see :class:`ScoringPlan`) — never what the scores are: every registered
    exact plan is bit-identical to the ``direct`` reference.  Backends whose
    evaluations never run the in-process block kernel
    (:attr:`ExecutionBackend.is_bulk` is false) pin the plan to ``"direct"``
    — the knob does not apply to them.
    """
    if plan is None:
        plan = DEFAULT_PLAN
    if plan not in _PLAN_REGISTRY:
        raise SolverError(
            f"unknown scoring plan {plan!r}; available: {', '.join(available_plans())}"
        )
    if backend is not None and not get_backend(resolve_backend(backend)).is_bulk:
        return "direct"
    return plan


def resolve_cluster_key(
    cluster_key: Optional[str], backend: Optional[str] = None
) -> Optional[str]:
    """Validate the cluster backend's shared authentication secret.

    ``None`` selects :data:`~repro.core.distributed.protocol.DEFAULT_CLUSTER_KEY`
    for cluster backends (and stays ``None`` for every other backend — the
    knob does not apply to them).  Client and workers must share the key:
    ``multiprocessing.connection`` uses it for an HMAC challenge–response
    handshake on every connection.
    """
    if cluster_key is not None and (not isinstance(cluster_key, str) or not cluster_key):
        raise SolverError(
            f"cluster_key must be a non-empty string or None, got {cluster_key!r}"
        )
    if backend is not None and not get_backend(resolve_backend(backend)).uses_cluster:
        return None
    return cluster_key if cluster_key is not None else DEFAULT_CLUSTER_KEY


# --------------------------------------------------------------------------- #
# Configuration
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExecutionConfig:
    """Every knob of one scoring-engine execution strategy, in one object.

    The config travels as a single value through schedulers, the registry, the
    experiment harness, the figures and the CLI — a new knob is a field here
    plus the code that consumes it, not a seven-file plumbing diff.

    Fields left at ``None`` mean "resolve the library default":

    Parameters
    ----------
    backend:
        Strategy name (see :func:`available_backends`); ``None`` selects
        :data:`DEFAULT_BACKEND`.  Never changes a result bit — only the speed.
    chunk_size:
        Events per vectorised pass of the bulk backends (the memory guard);
        ``None`` derives ``max(1, DEFAULT_CHUNK_ELEMENTS // |U|)``.
    workers:
        Fan-out of the pooled backends (threads for ``"parallel"``, processes
        for ``"process"``); ``None`` selects the machine's CPU count.  Pinned
        to 1 for backends that do not fan out.
    start_method:
        ``multiprocessing`` start method of the ``"process"`` backend
        (``"fork"``/``"spawn"``/``"forkserver"``); ``None`` means *auto* —
        ``"fork"`` on Linux while the process has no other Python threads, a
        fork-safe method otherwise (see :func:`_auto_start_method`; pin
        ``"forkserver"``/``"spawn"`` explicitly when the host process carries
        *native* threads the check cannot see).  ``None`` for every other
        backend.
    workers_addr:
        Remote worker addresses of the ``"cluster"`` backend — an iterable of
        ``"host:port"`` strings (or one comma-separated string); start the
        workers with ``repro worker serve``.  ``None``/empty makes the cluster
        backend degrade to the in-process ``"process"`` strategy; resolves to
        the empty tuple for every non-distributed backend.  When set, the
        automatic ``workers`` default becomes the number of remote workers.
    cluster_key:
        Shared secret of the cluster connections' HMAC handshake; ``None``
        selects :data:`~repro.core.distributed.protocol.DEFAULT_CLUSTER_KEY`
        for cluster backends (``None`` for every other backend).  Client and
        workers must agree on it.
    task_batch:
        Columns per wire batch of the ``"cluster"`` backend's ``score_matrix``
        dispatch.  ``None`` (the default) auto-derives
        ``ceil(|T| / (lanes * TASK_OVERSUBSCRIBE))``, clamped — see
        :func:`~repro.core.distributed.protocol.derive_task_batch`; ``1``
        reproduces the v1 per-column round-trips.  ``None`` for every
        non-distributed backend.  Never changes a result bit — only the wire
        traffic shape.
    plan:
        Scoring-plan name (see :func:`available_plans`); ``None`` selects
        :data:`DEFAULT_PLAN`.  A plan decides how the in-process bulk kernel
        traverses one event block — e.g. the ``blocked`` plan of
        :mod:`repro.analysis.blocks` computes each distinct interest pattern
        once and expands by multiplicity.  Exact plans never change a result
        bit — only the arithmetic's traversal.  Pinned to ``"direct"`` for
        non-bulk backends.
    """

    backend: Optional[str] = None
    chunk_size: Optional[int] = None
    workers: Optional[int] = None
    start_method: Optional[str] = None
    workers_addr: Optional[Tuple[str, ...]] = None
    cluster_key: Optional[str] = None
    task_batch: Optional[int] = None
    plan: Optional[str] = None

    def resolve(self, num_users: int) -> "ExecutionConfig":
        """Return a copy with every ``None`` replaced by its concrete default.

        Resolution is idempotent: resolving an already-resolved config returns
        an equal config.
        """
        backend = resolve_backend(self.backend)
        workers_addr = resolve_workers_addr(self.workers_addr, backend)
        return ExecutionConfig(
            backend=backend,
            chunk_size=resolve_chunk_size(self.chunk_size, num_users),
            workers=resolve_workers(self.workers, backend, workers_addr),
            start_method=resolve_start_method(self.start_method, backend),
            workers_addr=workers_addr,
            cluster_key=resolve_cluster_key(self.cluster_key, backend),
            task_batch=resolve_task_batch(self.task_batch, backend),
            plan=resolve_plan(self.plan, backend),
        )

    @property
    def is_bulk(self) -> bool:
        """Whether the selected strategy evaluates whole event blocks at once."""
        return get_backend(resolve_backend(self.backend)).is_bulk

    def create_backend(self) -> "ExecutionBackend":
        """Instantiate the selected strategy (expects a resolved config)."""
        return get_backend(resolve_backend(self.backend))(self)

    def create_plan(self) -> "ScoringPlan":
        """Instantiate the selected scoring plan (expects a resolved config)."""
        return get_plan(resolve_plan(self.plan, self.backend))()


def merge_legacy_execution(
    execution: Optional[ExecutionConfig],
    *,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
    owner: str = "this call",
) -> ExecutionConfig:
    """Fold the pre-ExecutionConfig loose kwargs into a config (deprecation shim).

    The ``backend=`` / ``chunk_size=`` / ``workers=`` keyword arguments that
    predate the execution layer keep working everywhere they used to, but emit
    a :class:`DeprecationWarning`; passing them *together with* ``execution=``
    is ambiguous and raises.  Call sites pass their own name as ``owner`` so
    the warning points at the right API.
    """
    if backend is None and chunk_size is None and workers is None:
        return execution if execution is not None else ExecutionConfig()
    if execution is not None:
        raise SolverError(
            f"{owner} received both execution= and the legacy backend=/chunk_size=/"
            "workers= arguments; pass every knob through execution=ExecutionConfig(...)"
        )
    warnings.warn(
        f"passing backend=/chunk_size=/workers= to {owner} is deprecated; "
        "pass execution=ExecutionConfig(backend=..., chunk_size=..., workers=...) instead",
        DeprecationWarning,
        stacklevel=3,
    )
    return ExecutionConfig(backend=backend, chunk_size=chunk_size, workers=workers)


# --------------------------------------------------------------------------- #
# Strategy hierarchy
# --------------------------------------------------------------------------- #
class ExecutionBackend:
    """One scoring-execution strategy, bound to a :class:`ScoringEngine`.

    Subclasses implement :meth:`interval_scores` and :meth:`score_matrix` in
    terms of the engine's kernels (:meth:`ScoringEngine._pair_score`,
    :meth:`ScoringEngine._batch_block`) and state.  They decide *where* and in
    *what blocks* scores are computed — never the values: every strategy must
    be bit-identical to the serial reference (see the module docstring).

    Class attributes
    ----------------
    name:
        Registry name (``"scalar"``, ``"batch"``, …).
    is_bulk:
        Whether the strategy's bulk entry points evaluate whole event blocks
        at once (the incremental schedulers use this to decide whether
        speculative bulk refresh pays off, and the engine uses it to decide
        whether to precompute event-major rows).
    uses_workers:
        Whether the strategy fans out across a worker pool (drives the
        ``workers`` knob's resolution).
    uses_processes:
        Whether the pool is made of OS processes (drives ``start_method``).
    uses_cluster:
        Whether the strategy dispatches to remote workers over the network
        (drives the ``workers_addr`` / ``cluster_key`` knobs' resolution).
    """

    name: str = "abstract"
    is_bulk: bool = False
    uses_workers: bool = False
    uses_processes: bool = False
    uses_cluster: bool = False

    def __init__(self, config: ExecutionConfig) -> None:
        self._config = config
        self._engine_ref: Optional["weakref.ref[ScoringEngine]"] = None

    def bind(self, engine: "ScoringEngine") -> "ExecutionBackend":
        """Attach the engine whose state this strategy evaluates against.

        The reference is weak — the engine owns the backend, not the other
        way round — so dropping the last engine reference frees it promptly
        (its ``__del__`` closes this backend's pools) instead of waiting for
        the cycle collector.
        """
        self._engine_ref = weakref.ref(engine)
        return self

    @property
    def engine(self) -> "ScoringEngine":
        """The bound scoring engine."""
        engine = self._engine_ref() if self._engine_ref is not None else None
        if engine is None:  # pragma: no cover - defensive
            raise SolverError(f"backend {self.name!r} is not bound to a live engine")
        return engine

    # -- evaluation ------------------------------------------------------- #
    def interval_scores(self, interval_index: int, selector: Optional[np.ndarray]) -> np.ndarray:
        """Scores of the selected events (``None`` = all) at one interval."""
        raise NotImplementedError

    def score_matrix(self, selector: Optional[np.ndarray]) -> np.ndarray:
        """The ``(|selection|, |T|)`` score matrix against the current state."""
        raise NotImplementedError

    # -- observability ---------------------------------------------------- #
    def stats(self) -> Dict[str, object]:
        """Execution counters accumulated since this backend was created.

        The in-process strategies have nothing to report (empty dict); the
        cluster backend returns its per-link dispatch counters (tasks,
        batches, round-trips, bytes shipped) so results and benchmarks can
        report shipping overhead vs. compute.  The returned mapping is a
        snapshot — it stays valid after :meth:`close`.
        """
        return {}

    # -- lifecycle -------------------------------------------------------- #
    def close(self) -> None:
        """Release pools / shared resources (safe to call repeatedly)."""

    @classmethod
    def describe(cls) -> str:
        """One-line description used by the CLI's backend listing."""
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else cls.name


class ScalarBackend(ExecutionBackend):
    """Reference strategy: one pass over the users per (event, interval) pair."""

    name = "scalar"
    is_bulk = False

    def interval_scores(self, interval_index: int, selector: Optional[np.ndarray]) -> np.ndarray:
        engine = self.engine
        if selector is None:
            selector = np.arange(engine.instance.num_events, dtype=np.intp)
        return np.array(
            [engine._pair_score(int(event), interval_index) for event in selector],
            dtype=np.float64,
        )

    def score_matrix(self, selector: Optional[np.ndarray]) -> np.ndarray:
        engine = self.engine
        num_rows = engine.instance.num_events if selector is None else int(selector.size)
        num_intervals = engine.instance.num_intervals
        matrix = np.empty((num_rows, num_intervals), dtype=np.float64)
        for interval_index in range(num_intervals):
            matrix[:, interval_index] = self.interval_scores(interval_index, selector)
        return matrix


class BatchBackend(ExecutionBackend):
    """Vectorised strategy: whole event blocks per NumPy pass, chunked along the event axis."""

    name = "batch"
    is_bulk = True

    def interval_scores(self, interval_index: int, selector: Optional[np.ndarray]) -> np.ndarray:
        source = self.engine._select_event_rows(selector)
        return self._sharded_scores(interval_index, source)

    def score_matrix(self, selector: Optional[np.ndarray]) -> np.ndarray:
        # Hoist the event-row selection out of the per-interval loop: the
        # selection is state-independent, so one row source serves every
        # column (a dense source materialises the selection once; sparse and
        # mmap sources re-densify per block, keeping memory bounded).
        engine = self.engine
        source = engine._select_event_rows(selector)
        num_intervals = engine.instance.num_intervals
        matrix = np.empty((source.num_rows, num_intervals), dtype=np.float64)
        for interval_index in range(num_intervals):
            matrix[:, interval_index] = self._sharded_scores(interval_index, source)
        return matrix

    def _block_step(self, num_rows: int) -> int:
        """Rows per block of one bulk evaluation (the memory guard)."""
        return self._config.chunk_size

    def _sharded_scores(self, interval_index: int, source: EventRowSource) -> np.ndarray:
        """One interval's scores, computed block by block.

        The event axis is processed in blocks of at most :meth:`_block_step`
        rows, so the temporaries stay bounded on huge instances — for sparse
        and memory-mapped storages each block is densified on demand and
        dropped after its pass.  Each row's reduction is independent of the
        others, so any block decomposition — serial or pooled, whatever the
        split or storage — produces bit-identical scores.
        """
        engine = self.engine
        num_rows = source.num_rows
        step = self._block_step(num_rows)
        if num_rows <= step:
            return engine._batch_block(interval_index, *source.block(0, num_rows))
        bounds = [(start, min(start + step, num_rows)) for start in range(0, num_rows, step)]
        scores = np.empty(num_rows, dtype=np.float64)
        self._run_blocks(interval_index, source, bounds, scores)
        return scores

    def _run_blocks(
        self,
        interval_index: int,
        source: EventRowSource,
        bounds: List[Tuple[int, int]],
        scores: np.ndarray,
    ) -> None:
        """Evaluate the blocks serially (pooled subclasses override)."""
        engine = self.engine
        for start, stop in bounds:
            scores[start:stop] = engine._batch_block(
                interval_index, *source.block(start, stop)
            )


class ThreadBackend(BatchBackend):
    """Sharded strategy: the batch blocks dispatched to a GIL-releasing thread pool."""

    name = "parallel"
    is_bulk = True
    uses_workers = True

    def __init__(self, config: ExecutionConfig) -> None:
        super().__init__(config)
        self._executor: Optional[ThreadPoolExecutor] = None

    def _block_step(self, num_rows: int) -> int:
        step = self._config.chunk_size
        if self._config.workers > 1 and num_rows > 1:
            # Split into enough blocks to keep every worker busy while still
            # honouring the chunk-size memory bound per block.
            step = max(1, min(step, -(-num_rows // self._config.workers)))
        return step

    def _run_blocks(self, interval_index, source, bounds, scores) -> None:
        if self._config.workers <= 1 or len(bounds) <= 1:
            super()._run_blocks(interval_index, source, bounds, scores)
            return
        engine = self.engine
        executor = self._ensure_executor()

        def run_block(start: int, stop: int) -> np.ndarray:
            # The block materialisation runs inside the worker thread too, so
            # sparse/mmap densification overlaps across the pool alongside
            # the GIL-releasing kernel.
            return engine._batch_block(interval_index, *source.block(start, stop))

        futures = [executor.submit(run_block, start, stop) for start, stop in bounds]
        for (start, stop), future in zip(bounds, futures):
            scores[start:stop] = future.result()

    def _ensure_executor(self) -> ThreadPoolExecutor:
        """The lazily-created, reused worker pool."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._config.workers, thread_name_prefix="ses-score"
            )
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None


# --------------------------------------------------------------------------- #
# The shared-memory process backend
# --------------------------------------------------------------------------- #
#: Worker-process view of the shared instance matrices, populated once per
#: worker by :func:`_process_worker_init` (the pool initializer).
_WORKER_SHM: Optional[shared_memory.SharedMemory] = None
_WORKER_ARRAYS: Dict[str, np.ndarray] = {}

#: Worker-side event-row source rebuilt from the published layout: zero-copy
#: views over the shared dense rows, a CSR store over the shared arrays, or a
#: memory-mapped view of the instance's backing file (see
#: :meth:`ProcessBackend._ensure_pool`).
_WORKER_ROWS: Optional[EventRowSource] = None

#: Per-worker cache of the last subset selection: ``(call token, selected row
#: source)``.  One ``score_matrix`` call dispatches |T| tasks with the same
#: selector; caching by the parent's call token makes each worker build the
#: selected source (for dense rows, a fancy-indexed copy) once per call
#: instead of once per task.
_WORKER_SELECTION: Tuple[Optional[int], Optional[EventRowSource]] = (None, None)


def _export_shared_arrays(
    arrays: Dict[str, np.ndarray],
) -> Tuple[shared_memory.SharedMemory, Dict[str, object]]:
    """Copy the given arrays into one shared-memory block and describe its layout.

    Returns the owning :class:`~multiprocessing.shared_memory.SharedMemory`
    (the caller unlinks it on close) and a picklable layout descriptor the
    workers use to rebuild zero-copy views.
    """
    total = sum(int(array.nbytes) for array in arrays.values())
    block = shared_memory.SharedMemory(create=True, size=max(1, total))
    entries: List[Tuple[str, Tuple[int, ...], str, int]] = []
    offset = 0
    for key, array in arrays.items():
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=block.buf, offset=offset)
        view[...] = array
        entries.append((key, tuple(array.shape), array.dtype.str, offset))
        offset += int(array.nbytes)
    return block, {"name": block.name, "entries": entries}


def _attach_shared_block(name: str) -> shared_memory.SharedMemory:
    """Attach an existing shared block *without* registering it for cleanup.

    The parent owns the block's lifetime (it unlinks on close).  A plain
    attach would also register the segment with the resource tracker on
    behalf of this worker, making the tracker either warn about a "leaked"
    segment or — under fork, where the tracker process is shared — drop the
    parent's registration.  Python 3.13 has ``track=False`` for exactly this;
    on older versions the attach runs with registration suppressed.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _build_worker_rows(layout: Dict[str, object]) -> EventRowSource:
    """Rebuild the event-row source described by the pool's layout descriptor.

    ``"dense"`` wraps zero-copy views over the shared µ / value·µ rows
    (today's behaviour, bit-for-bit); ``"sparse"`` rebuilds the event-major
    CSR over the shared arrays (structure already validated parent-side);
    ``"file"`` maps the instance's backing NPZ in place, so nothing but the
    small static arrays ever crossed the process boundary.
    """
    kind = layout.get("kind", "dense")
    if kind == "dense":
        return DenseEventRows(_WORKER_ARRAYS["mu_rows"], _WORKER_ARRAYS["value_mu_rows"])
    if kind == "sparse":
        store = SparseStore(
            tuple(layout["shape"]),  # type: ignore[arg-type]
            _WORKER_ARRAYS["csr_indptr"],
            _WORKER_ARRAYS["csr_indices"],
            _WORKER_ARRAYS["csr_data"],
            validate=False,
        )
        return StoreEventRows(store, _WORKER_ARRAYS["values"])
    store = MmapStore.open(layout["path"], prefix=layout["prefix"])  # type: ignore[arg-type]
    return StoreEventRows(store, _WORKER_ARRAYS["values"])


def _process_worker_init(layout: Dict[str, object]) -> None:
    """Pool initializer: attach the shared block and rebuild the array views."""
    global _WORKER_SHM, _WORKER_ROWS, _WORKER_SELECTION
    block = _attach_shared_block(layout["name"])  # type: ignore[index,arg-type]
    _WORKER_SHM = block
    _WORKER_ARRAYS.clear()
    for key, shape, dtype, offset in layout["entries"]:  # type: ignore[union-attr]
        _WORKER_ARRAYS[key] = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=block.buf, offset=offset
        )
    _WORKER_ROWS = _build_worker_rows(layout)
    _WORKER_SELECTION = (None, None)


def _worker_selected_rows(
    token: int, selector: Optional[np.ndarray]
) -> EventRowSource:
    """The (possibly subset-selected) event-row source for one score-matrix call."""
    global _WORKER_SELECTION
    if selector is None:
        return _WORKER_ROWS
    cached_token, source = _WORKER_SELECTION
    if cached_token != token:
        source = _WORKER_ROWS.select(selector)
        _WORKER_SELECTION = (token, source)
    return source


def _process_interval_scores(
    task: Tuple[int, int, Optional[np.ndarray], np.ndarray, np.ndarray, float, int],
) -> Tuple[int, np.ndarray]:
    """Worker kernel: one interval's score column against the shared matrices.

    Runs the same :func:`score_block_kernel` as the in-process batch path,
    with the event axis chunked under the same memory guard — every block's
    rows reduce independently, so the returned column is bit-identical to the
    serial batch path regardless of where it was computed.
    """
    interval_index, token, selector, scheduled, scheduled_value, utility, step = task
    source = _worker_selected_rows(token, selector)
    comp_column = _WORKER_ARRAYS["comp"][:, interval_index]
    sigma_column = _WORKER_ARRAYS["sigma"][:, interval_index]
    num_rows = source.num_rows
    scores = np.empty(num_rows, dtype=np.float64)
    for start in range(0, num_rows, step):
        stop = min(start + step, num_rows)
        mu_rows, value_mu_rows = source.block(start, stop)
        scores[start:stop] = score_block_kernel(
            mu_rows,
            value_mu_rows,
            comp_column,
            sigma_column,
            scheduled,
            scheduled_value,
            utility,
        )
    return interval_index, scores


class ProcessBackend(BatchBackend):
    """Multi-process strategy: score-matrix columns sharded across a process pool.

    :meth:`score_matrix` dispatches one task per interval to a
    ``multiprocessing`` pool.  The static instance matrices are published
    **once** through a single shared-memory block when the pool starts,
    shaped by the instance's storage: the ``"dense"`` storage ships the
    event-major µ and value·µ rows plus competing sums and σ (today's
    behaviour); the ``"sparse"`` storage ships the CSR arrays instead and
    workers densify blocks on demand; a file-backed (``"mmap"``) storage
    ships no matrix at all — workers map the instance's backing NPZ in place
    (see :meth:`_shared_layout`).  Workers map the block zero-copy, so a task
    ships only its interval index and the interval's per-user scheduled sums
    (a few KB).  Subset calls additionally carry the event selector; each
    worker materialises the selected row source once per score-matrix call
    (cached by call token), not once per task.  Single-interval bulk calls
    (:meth:`~ScoringEngine.interval_scores`, the incremental refresh path) use
    the inherited serial batch kernel — identical values either way.

    The pool is created lazily, reused across calls, and shut down
    deterministically by :meth:`close` (which also unlinks the shared block);
    ``workers=1`` never creates a pool at all.  The start method defaults to
    ``fork`` where the platform offers it *and* the process is still
    single-threaded, falling back to a fork-safe method otherwise; ``spawn``
    and ``forkserver`` are fully supported via
    :attr:`ExecutionConfig.start_method` (the worker entry points live at
    module level, so they import cleanly in fresh interpreters).
    """

    name = "process"
    is_bulk = True
    uses_workers = True
    uses_processes = True

    def __init__(self, config: ExecutionConfig) -> None:
        super().__init__(config)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._shm: Optional[shared_memory.SharedMemory] = None
        self._call_tokens = itertools.count()

    def score_matrix(self, selector: Optional[np.ndarray]) -> np.ndarray:
        engine = self.engine
        num_intervals = engine.instance.num_intervals
        num_rows = engine.instance.num_events if selector is None else int(selector.size)
        if self._config.workers <= 1 or num_intervals <= 1 or num_rows == 0:
            return super().score_matrix(selector)
        executor = self._ensure_pool()
        step = self._config.chunk_size
        token = next(self._call_tokens)
        matrix = np.empty((num_rows, num_intervals), dtype=np.float64)
        futures = [
            executor.submit(
                _process_interval_scores,
                (
                    interval_index,
                    token,
                    selector,
                    engine._scheduled_interest[interval_index],
                    engine._scheduled_value_interest[interval_index],
                    float(engine._interval_utility[interval_index]),
                    step,
                ),
            )
            for interval_index in range(num_intervals)
        ]
        for future in futures:
            interval_index, scores = future.result()
            matrix[:, interval_index] = scores
        return matrix

    def _shared_layout(self) -> Tuple[shared_memory.SharedMemory, Dict[str, object]]:
        """Publish the engine's static arrays, shaped by the instance storage.

        Dense storage ships the precomputed event-major µ / value·µ rows
        exactly as it always has.  Sparse storage ships the (much smaller)
        CSR arrays instead — the workers densify blocks on demand.  A
        file-backed (mmap) storage ships no matrix at all: the layout carries
        the backing file's path and the workers map it in place, so the only
        shared copies are the per-interval competing/σ matrices.
        """
        engine = self.engine
        statics = {
            "comp": np.ascontiguousarray(engine._comp),
            "sigma": np.ascontiguousarray(engine._sigma),
        }
        rows = engine._event_rows
        if isinstance(rows, DenseEventRows):
            mu_rows, value_mu_rows = rows.arrays
            block, layout = _export_shared_arrays(
                {"mu_rows": mu_rows, "value_mu_rows": value_mu_rows, **statics}
            )
            layout["kind"] = "dense"
            return block, layout
        store = engine._store
        values = np.ascontiguousarray(engine._values)
        if store.is_file_backed:
            block, layout = _export_shared_arrays({**statics, "values": values})
            layout["kind"] = "file"
            layout["path"] = store.path
            layout["prefix"] = store.prefix
            return block, layout
        indptr, indices, data = as_sparse(store).csr_arrays
        block, layout = _export_shared_arrays(
            {
                **statics,
                "values": values,
                "csr_indptr": np.ascontiguousarray(indptr, dtype=np.int64),
                "csr_indices": np.ascontiguousarray(indices, dtype=np.int64),
                "csr_data": np.ascontiguousarray(data, dtype=np.float64),
            }
        )
        layout["kind"] = "sparse"
        layout["shape"] = tuple(store.shape)
        return block, layout

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The lazily-created, reused process pool (publishes the shared block)."""
        if self._executor is None:
            block, layout = self._shared_layout()
            start_method = self._config.start_method or _auto_start_method()
            context = multiprocessing.get_context(start_method)
            if start_method == "forkserver":
                # Preload this module into the server so the workers it forks
                # inherit the imports instead of re-importing per pool (a
                # no-op once the server is running).
                # Preloading is a pure optimisation: a ValueError (bad module
                # list) or RuntimeError (server already running on some
                # versions) must not fail the pool — the workers just
                # re-import per process.  Anything else is a real bug and
                # propagates.
                try:  # pragma: no cover - depends on server state
                    context.set_forkserver_preload(["repro.core.execution"])
                except (ValueError, RuntimeError):
                    pass
            try:
                executor = ProcessPoolExecutor(
                    max_workers=self._config.workers,
                    mp_context=context,
                    initializer=_process_worker_init,
                    initargs=(layout,),
                )
            except BaseException:
                # Pool creation failed after the block was published — release
                # the segment now instead of leaking it until process exit.
                block.close()
                block.unlink()
                raise
            self._shm = block
            self._executor = executor
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
            self._shm = None


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_BACKEND_REGISTRY: Dict[str, Type[ExecutionBackend]] = {}


def register_backend(
    cls: Type[ExecutionBackend], *, replace_existing: bool = False
) -> Type[ExecutionBackend]:
    """Register an execution-backend strategy class (usable as a decorator).

    After registration the backend is selectable everywhere by its
    :attr:`~ExecutionBackend.name` — ``ExecutionConfig(backend=cls.name)``,
    the scheduler/engine constructors, the harness, the CLI's ``--backend``
    flag — with no further plumbing: adding a backend is a one-module change.

    Raises
    ------
    SolverError
        If a backend with the same name exists and ``replace_existing`` is
        False.
    """
    if not replace_existing and cls.name in _BACKEND_REGISTRY:
        raise SolverError(f"an execution backend named {cls.name!r} is already registered")
    _BACKEND_REGISTRY[cls.name] = cls
    return cls


#: Names of the backends this module registers itself (populated at import).
_BUILTIN_BACKEND_NAMES: set = set()


def unregister_backend(name: str) -> None:
    """Remove a registered backend (primarily for tests of custom backends)."""
    if name in _BUILTIN_BACKEND_NAMES:
        raise SolverError(f"the built-in backend {name!r} cannot be unregistered")
    _BACKEND_REGISTRY.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend, in registration order."""
    return tuple(_BACKEND_REGISTRY)


def get_backend(name: str) -> Type[ExecutionBackend]:
    """Return the strategy class registered under ``name``."""
    try:
        return _BACKEND_REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown scoring backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def backend_catalog() -> List[Dict[str, object]]:
    """One row per registered backend with its resolved defaults.

    Used by the CLI's ``backends`` sub-command / ``--list-backends`` flag; the
    ``workers`` / ``start_method`` columns show what ``None`` resolves to on
    *this* machine.
    """
    rows: List[Dict[str, object]] = []
    for name, cls in _BACKEND_REGISTRY.items():
        rows.append(
            {
                "backend": name + (" (default)" if name == DEFAULT_BACKEND else ""),
                "bulk": "yes" if cls.is_bulk else "no",
                "pool": "remote workers" if cls.uses_cluster else (
                    "processes" if cls.uses_processes else (
                        "threads" if cls.uses_workers else "-"
                    )
                ),
                "workers": "len(workers_addr)" if cls.uses_cluster
                else resolve_workers(None, name),
                "chunk_size": f"auto ({DEFAULT_CHUNK_ELEMENTS:,} elements / |U|)"
                if cls.is_bulk
                else "-",
                "start_method": f"auto ({_auto_start_method()} now)"
                if cls.uses_processes
                else "-",
                "description": cls.describe(),
            }
        )
    return rows


# --------------------------------------------------------------------------- #
# Scoring plans
# --------------------------------------------------------------------------- #
class ScoringPlan:
    """One traversal strategy of the in-process block kernel, bound to an engine.

    Where an :class:`ExecutionBackend` decides *where* blocks are evaluated
    (serial, threads, processes, remote workers), a plan decides *how* the
    in-process kernel traverses one block — e.g. the ``blocked`` plan of
    :mod:`repro.analysis.blocks` computes each distinct user interest pattern
    once and expands the per-pattern contributions by multiplicity.  Every
    exact plan must produce scores bit-identical to the ``direct`` reference:
    the per-user contributions and their reduction order may not change.

    Subclasses implement :meth:`batch_block` against the engine's static and
    scheduled state; :meth:`prepare` runs once at bind time for per-instance
    precomputation (structure mining).  Engines reach the plan through
    :meth:`ScoringEngine._batch_block`, so the backends need no plan
    awareness at all.
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self._engine_ref: Optional["weakref.ref[ScoringEngine]"] = None

    def bind(self, engine: "ScoringEngine") -> "ScoringPlan":
        """Attach the engine and run :meth:`prepare` (weak ref, like backends)."""
        self._engine_ref = weakref.ref(engine)
        self.prepare(engine)
        return self

    @property
    def engine(self) -> "ScoringEngine":
        """The bound scoring engine."""
        engine = self._engine_ref() if self._engine_ref is not None else None
        if engine is None:  # pragma: no cover - defensive
            raise SolverError(f"plan {self.name!r} is not bound to a live engine")
        return engine

    def prepare(self, engine: "ScoringEngine") -> None:
        """Per-instance precomputation hook (default: nothing)."""

    def batch_block(
        self, interval_index: int, mu_rows: np.ndarray, value_mu_rows: np.ndarray
    ) -> np.ndarray:
        """Scores of one block of event rows at one interval (Eq. 4)."""
        raise NotImplementedError

    def stats(self) -> Dict[str, object]:
        """Structure counters of this plan (empty for the direct reference)."""
        return {}

    def mined_structure(self):
        """The plan's mined :class:`~repro.core.patterns.InterestStructure`, if any.

        The engine's structural Φ bound
        (:meth:`~repro.core.scoring.ScoringEngine.interval_score_bound`)
        needs the same equivalence classes the ``blocked`` plan mines;
        returning them here lets the engine reuse the plan's pass instead of
        mining twice.  ``None`` (the default) makes the engine mine lazily
        on first use — the miner is deterministic, so both routes yield the
        same decomposition and identical bound values.
        """
        return None

    @classmethod
    def describe(cls) -> str:
        """One-line description used by catalogue listings."""
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else cls.name


class DirectPlan(ScoringPlan):
    """Reference plan: the block kernel over every user column, unchanged."""

    name = "direct"

    def batch_block(
        self, interval_index: int, mu_rows: np.ndarray, value_mu_rows: np.ndarray
    ) -> np.ndarray:
        engine = self.engine
        return score_block_kernel(
            mu_rows,
            value_mu_rows,
            engine._comp[:, interval_index],
            engine._sigma[:, interval_index],
            engine._scheduled_interest[interval_index],
            engine._scheduled_value_interest[interval_index],
            engine._interval_utility[interval_index],
        )


_PLAN_REGISTRY: Dict[str, Type[ScoringPlan]] = {}


def register_plan(cls: Type[ScoringPlan], *, replace_existing: bool = False) -> Type[ScoringPlan]:
    """Register a scoring-plan class (usable as a decorator).

    After registration the plan is selectable everywhere by its
    :attr:`~ScoringPlan.name` — ``ExecutionConfig(plan=cls.name)``, the
    scheduler/engine constructors, the harness, the CLI's ``--plan`` flag —
    with no further plumbing, exactly like :func:`register_backend`.

    Raises
    ------
    SolverError
        If a plan with the same name exists and ``replace_existing`` is False.
    """
    if not replace_existing and cls.name in _PLAN_REGISTRY:
        raise SolverError(f"a scoring plan named {cls.name!r} is already registered")
    _PLAN_REGISTRY[cls.name] = cls
    return cls


#: Names of the plans the library registers itself (the ``blocked`` plan of
#: :mod:`repro.analysis.blocks` adds itself here at import).
_BUILTIN_PLAN_NAMES: set = set()


def unregister_plan(name: str) -> None:
    """Remove a registered plan (primarily for tests of custom plans)."""
    if name in _BUILTIN_PLAN_NAMES:
        raise SolverError(f"the built-in plan {name!r} cannot be unregistered")
    _PLAN_REGISTRY.pop(name, None)


def available_plans() -> Tuple[str, ...]:
    """Names of every registered scoring plan, in registration order."""
    return tuple(_PLAN_REGISTRY)


def get_plan(name: str) -> Type[ScoringPlan]:
    """Return the plan class registered under ``name``."""
    try:
        return _PLAN_REGISTRY[name]
    except KeyError:
        raise SolverError(
            f"unknown scoring plan {name!r}; available: {', '.join(available_plans())}"
        ) from None


def plan_catalog() -> List[Dict[str, object]]:
    """One row per registered scoring plan (CLI / docs listings)."""
    return [
        {
            "plan": name + (" (default)" if name == DEFAULT_PLAN else ""),
            "description": cls.describe(),
        }
        for name, cls in _PLAN_REGISTRY.items()
    ]


register_plan(DirectPlan)
_BUILTIN_PLAN_NAMES.add(DirectPlan.name)


# The cluster strategy lives in its own package (it is the one-module
# addition the registry was built for) but registers here with the other
# built-ins so it is selectable everywhere by name.  The import is deferred
# to the bottom of this module: ClusterBackend subclasses ProcessBackend, so
# everything it needs is already defined.
from repro.core.distributed.client import ClusterBackend  # noqa: E402

for _builtin in (ScalarBackend, BatchBackend, ThreadBackend, ProcessBackend, ClusterBackend):
    register_backend(_builtin)
    _BUILTIN_BACKEND_NAMES.add(_builtin.name)
del _builtin


def __getattr__(name: str):
    """Registry-backed views of the classic backend-name tuples.

    ``SCORING_BACKENDS`` and ``BULK_BACKENDS`` predate the registry; they stay
    importable (from here and from :mod:`repro.core.scoring`) and always
    reflect the *current* registry contents, including custom backends
    registered through :func:`register_backend`.
    """
    if name == "SCORING_BACKENDS":
        return available_backends()
    if name == "BULK_BACKENDS":
        return tuple(n for n, cls in _BACKEND_REGISTRY.items() if cls.is_bulk)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_BACKEND",
    "DEFAULT_CHUNK_ELEMENTS",
    "DEFAULT_PLAN",
    "ExecutionBackend",
    "ExecutionConfig",
    "ScalarBackend",
    "BatchBackend",
    "ThreadBackend",
    "ProcessBackend",
    "ClusterBackend",
    "ScoringPlan",
    "DirectPlan",
    "available_backends",
    "available_plans",
    "backend_catalog",
    "get_backend",
    "get_plan",
    "merge_legacy_execution",
    "plan_catalog",
    "register_backend",
    "register_plan",
    "unregister_backend",
    "unregister_plan",
    "resolve_backend",
    "resolve_chunk_size",
    "resolve_cluster_key",
    "resolve_plan",
    "resolve_start_method",
    "resolve_task_batch",
    "resolve_workers",
    "resolve_workers_addr",
    "score_block_kernel",
    "SCORING_BACKENDS",
    "BULK_BACKENDS",
]
