"""Interest (affinity) matrices µ used by the attendance model.

The paper models interest as a function ``µ : U × (E ∪ C) → [0, 1]``.  The
library stores it as two :class:`InterestMatrix` objects — one for candidate
events and one for competing events — each wrapping a pluggable
:class:`~repro.core.storage.InterestStore`: the in-memory 2-D array of the
``"dense"`` storage (the default), the event-major CSR of the ``"sparse"``
storage, or the file-backed ``"mmap"`` storage that streams from an
uncompressed NPZ.  The wrapper adds validation, convenient per-row /
per-column access and sparse construction helpers used by the dataset
substrates; the representation itself never changes a value, so scoring
results are bit-identical across storages.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.core.errors import InstanceValidationError
from repro.core.storage import (
    DEFAULT_STORAGE,
    DenseStore,
    InterestStore,
    SparseStore,
    convert_store,
)


class InterestMatrix:
    """A validated ``|U| × |H|`` matrix of interest values in ``[0, 1]``.

    Parameters
    ----------
    values:
        Array-like of shape ``(num_users, num_items)`` with entries in
        ``[0, 1]``.  The array is copied and stored as ``float64`` under the
        default ``"dense"`` storage.
    copy:
        When ``False`` and the input is already a float64 C-contiguous array,
        it is used without copying (dataset generators use this to avoid
        duplicating large matrices).

    Use :meth:`from_store` (or :meth:`with_storage`) to wrap a sparse or
    memory-mapped representation instead of a dense array.
    """

    __slots__ = ("_store",)

    def __init__(self, values: np.ndarray, *, copy: bool = True) -> None:
        array = np.array(values, dtype=np.float64, copy=copy)
        if array.ndim != 2:
            raise InstanceValidationError(
                f"interest matrix must be 2-dimensional, got shape {array.shape}"
            )
        if array.size and (np.min(array) < 0.0 or np.max(array) > 1.0):
            raise InstanceValidationError(
                "interest values must lie in [0, 1]; found values in "
                f"[{np.min(array):.4f}, {np.max(array):.4f}]"
            )
        self._store = DenseStore(array)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_store(cls, store: InterestStore) -> "InterestMatrix":
        """Wrap an existing :class:`InterestStore` without copying it."""
        matrix = cls.__new__(cls)
        matrix._store = store
        return matrix

    @classmethod
    def zeros(
        cls,
        num_users: int,
        num_items: int,
        *,
        storage: str = DEFAULT_STORAGE,
        path: Optional[str] = None,
    ) -> "InterestMatrix":
        """Create an all-zero interest matrix under the named storage."""
        if storage == DenseStore.name:
            return cls.from_store(DenseStore.zeros(num_users, num_items))
        empty = SparseStore(
            (num_users, num_items),
            np.zeros(num_items + 1, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.float64),
            validate=False,
        )
        return cls.from_store(convert_store(empty, storage, path=path))

    @classmethod
    def from_entries(
        cls,
        num_users: int,
        num_items: int,
        entries: Iterable[Tuple[int, int, float]],
        *,
        storage: str = DEFAULT_STORAGE,
        path: Optional[str] = None,
    ) -> "InterestMatrix":
        """Build a matrix from sparse ``(user_index, item_index, value)`` triples.

        Later entries for the same cell overwrite earlier ones.  The fill is
        vectorised: indices are validated in bulk (reporting the first
        offending triple) and duplicates are resolved with an explicit
        last-write-wins pass, so a million triples cost three NumPy calls,
        not a Python loop.
        """
        triples = list(entries)
        if not triples:
            return cls.zeros(num_users, num_items, storage=storage, path=path)
        count = len(triples)
        users = np.fromiter((t[0] for t in triples), dtype=np.int64, count=count)
        items = np.fromiter((t[1] for t in triples), dtype=np.int64, count=count)
        values = np.fromiter((t[2] for t in triples), dtype=np.float64, count=count)
        bad_users = (users < 0) | (users >= num_users)
        bad_items = (items < 0) | (items >= num_items)
        if bad_users.any() or bad_items.any():
            first = int(np.argmax(bad_users | bad_items))
            if bad_users[first]:
                raise InstanceValidationError(
                    f"user index {users[first]} outside [0, {num_users})"
                )
            raise InstanceValidationError(
                f"item index {items[first]} outside [0, {num_items})"
            )
        # Last write wins: keep, for every (user, item) cell, the final
        # occurrence.  np.unique over the reversed flattened keys returns the
        # first occurrence in reversed order == the last in original order.
        flat = users * np.int64(num_items) + items
        _, keep_reversed = np.unique(flat[::-1], return_index=True)
        keep = np.sort(count - 1 - keep_reversed)
        users, items, values = users[keep], items[keep], values[keep]
        if storage == DenseStore.name:
            dense = DenseStore.zeros(num_users, num_items).values
            dense[users, items] = values
            return cls(dense, copy=False)
        sparse = SparseStore.from_coo(num_users, num_items, users, items, values)
        return cls.from_store(convert_store(sparse, storage, path=path))

    @classmethod
    def from_dict(
        cls,
        num_users: int,
        num_items: int,
        mapping: Mapping[Tuple[int, int], float],
    ) -> "InterestMatrix":
        """Build a matrix from a ``{(user_index, item_index): value}`` mapping."""
        return cls.from_entries(
            num_users, num_items, ((u, i, v) for (u, i), v in mapping.items())
        )

    # ------------------------------------------------------------------ #
    # Functional updates (used by the online service's mutations)
    # ------------------------------------------------------------------ #
    def with_entries(
        self, entries: Iterable[Tuple[int, int, float]]
    ) -> "InterestMatrix":
        """A new matrix with ``(user_index, item_index, value)`` cells overwritten.

        The bulk counterpart of :meth:`from_entries` for *updates*: later
        triples win for the same cell and a value of ``0.0`` clears a stored
        entry.  The update is applied at the store level, so sparse and mmap
        matrices never round-trip through a dense array (which would raise a
        :class:`~repro.core.errors.StorageCapacityError` at scale) — a mutated
        mmap matrix comes back as an in-memory sparse one.
        """
        triples = list(entries)
        if not triples:
            return self
        count = len(triples)
        users = np.fromiter((t[0] for t in triples), dtype=np.int64, count=count)
        items = np.fromiter((t[1] for t in triples), dtype=np.int64, count=count)
        values = np.fromiter((t[2] for t in triples), dtype=np.float64, count=count)
        num_users, num_items = self.shape
        bad_users = (users < 0) | (users >= num_users)
        bad_items = (items < 0) | (items >= num_items)
        if bad_users.any() or bad_items.any():
            first = int(np.argmax(bad_users | bad_items))
            if bad_users[first]:
                raise InstanceValidationError(
                    f"user index {users[first]} outside [0, {num_users})"
                )
            raise InstanceValidationError(
                f"item index {items[first]} outside [0, {num_items})"
            )
        if values.size and (np.min(values) < 0.0 or np.max(values) > 1.0):
            raise InstanceValidationError(
                "interest values must lie in [0, 1]; found values in "
                f"[{np.min(values):.4f}, {np.max(values):.4f}]"
            )
        return type(self).from_store(self._store.with_updates(users, items, values))

    def with_appended_item(self, column: np.ndarray) -> "InterestMatrix":
        """A new matrix with one item column appended (add-event mutation)."""
        column = np.asarray(column, dtype=np.float64).reshape(-1)
        if column.shape[0] != self.num_users:
            raise InstanceValidationError(
                f"appended column has {column.shape[0]} entries, expected "
                f"{self.num_users} (one per user)"
            )
        if column.size and (np.min(column) < 0.0 or np.max(column) > 1.0):
            raise InstanceValidationError(
                "interest values must lie in [0, 1]; found values in "
                f"[{np.min(column):.4f}, {np.max(column):.4f}]"
            )
        return type(self).from_store(self._store.with_appended_item(column))

    def without_item(self, item_index: int) -> "InterestMatrix":
        """A new matrix with one item column removed (remove-event mutation)."""
        if not 0 <= item_index < self.num_items:
            raise InstanceValidationError(
                f"item index {item_index} outside [0, {self.num_items})"
            )
        return type(self).from_store(self._store.without_item(item_index))

    # ------------------------------------------------------------------ #
    # Storage
    # ------------------------------------------------------------------ #
    @property
    def store(self) -> InterestStore:
        """The underlying :class:`InterestStore`."""
        return self._store

    @property
    def storage(self) -> str:
        """Registry name of the underlying storage (``"dense"``, ``"sparse"``, …)."""
        return self._store.name

    def with_storage(self, storage: str, *, path: Optional[str] = None) -> "InterestMatrix":
        """This matrix re-represented under the named storage (values unchanged).

        Converting to the ``"mmap"`` storage needs a ``path`` to spill the
        CSR arrays to; converting to the ``"dense"`` storage is
        capacity-guarded.
        """
        return type(self).from_store(convert_store(self._store, storage, path=path))

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The matrix as a ``(num_users, num_items)`` float64 array.

        For the ``"dense"`` storage this is the underlying array itself
        (read/write, exactly as before); sparse and mmap stores materialise a
        dense copy, which is capacity-guarded — use :attr:`store` for
        streaming access to large instances.
        """
        return self._store.to_dense()

    @property
    def num_users(self) -> int:
        """Number of rows (users)."""
        return self._store.num_users

    @property
    def num_items(self) -> int:
        """Number of columns (events)."""
        return self._store.num_items

    @property
    def shape(self) -> Tuple[int, int]:
        """``(num_users, num_items)``."""
        return self._store.shape

    def column(self, item_index: int) -> np.ndarray:
        """Interest of every user for one item (a view for the dense storage)."""
        return self._store.column(item_index)

    def row(self, user_index: int) -> np.ndarray:
        """Interest of one user over every item (a view for the dense storage)."""
        return self._store.row(user_index)

    def value(self, user_index: int, item_index: int) -> float:
        """Interest µ of a single user for a single item."""
        return self._store.value(user_index, item_index)

    def mean(self) -> float:
        """Mean interest value (0.0 for an empty matrix)."""
        return self._store.mean()

    def density(self, *, threshold: float = 0.0) -> float:
        """Fraction of entries strictly greater than ``threshold``."""
        return self._store.density(threshold=threshold)

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a JSON-friendly dict.

        The ``"dense"`` storage keeps the historical row-major nested-list
        layout; sparse and mmap stores serialise their CSR arrays (and record
        ``storage: "sparse"``) without densifying.
        """
        if isinstance(self._store, SparseStore):
            indptr, indices, data = self._store.csr_arrays
            return {
                "shape": list(self.shape),
                "storage": SparseStore.name,
                "indptr": np.asarray(indptr).tolist(),
                "indices": np.asarray(indices).tolist(),
                "data": np.asarray(data).tolist(),
            }
        return {"shape": list(self.shape), "values": self.values.tolist()}

    @classmethod
    def from_serialized(cls, payload: Mapping[str, object]) -> "InterestMatrix":
        """Inverse of :meth:`to_dict` (accepts arrays as well as lists)."""
        if "indptr" in payload:
            shape = tuple(payload["shape"])  # type: ignore[arg-type]
            store = SparseStore(
                (int(shape[0]), int(shape[1])),
                np.asarray(payload["indptr"], dtype=np.int64),
                np.asarray(payload["indices"], dtype=np.int64),
                np.asarray(payload["data"], dtype=np.float64),
            )
            return cls.from_store(store)
        values = np.asarray(payload["values"], dtype=np.float64)
        expected_shape = tuple(payload.get("shape", values.shape))  # type: ignore[arg-type]
        if values.size == 0:
            values = values.reshape(expected_shape)
        if tuple(values.shape) != tuple(expected_shape):
            raise InstanceValidationError(
                f"serialised interest matrix shape {values.shape} does not match "
                f"declared shape {expected_shape}"
            )
        return cls(values, copy=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InterestMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(
            np.allclose(self.values, other.values)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InterestMatrix(num_users={self.num_users}, num_items={self.num_items}, "
            f"mean={self.mean():.3f})"
        )
