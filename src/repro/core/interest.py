"""Interest (affinity) matrices µ used by the attendance model.

The paper models interest as a function ``µ : U × (E ∪ C) → [0, 1]``.  The
library stores it as two dense NumPy matrices — one for candidate events and
one for competing events — wrapped by :class:`InterestMatrix`, which adds
validation, convenient per-row/per-column access and sparse construction
helpers used by the dataset substrates.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Tuple

import numpy as np

from repro.core.errors import InstanceValidationError


class InterestMatrix:
    """A validated ``|U| × |H|`` matrix of interest values in ``[0, 1]``.

    Parameters
    ----------
    values:
        Array-like of shape ``(num_users, num_items)`` with entries in
        ``[0, 1]``.  The array is copied and stored as ``float64``.
    copy:
        When ``False`` and the input is already a float64 C-contiguous array,
        it is used without copying (dataset generators use this to avoid
        duplicating large matrices).
    """

    __slots__ = ("_values",)

    def __init__(self, values: np.ndarray, *, copy: bool = True) -> None:
        array = np.array(values, dtype=np.float64, copy=copy)
        if array.ndim != 2:
            raise InstanceValidationError(
                f"interest matrix must be 2-dimensional, got shape {array.shape}"
            )
        if array.size and (np.min(array) < 0.0 or np.max(array) > 1.0):
            raise InstanceValidationError(
                "interest values must lie in [0, 1]; found values in "
                f"[{np.min(array):.4f}, {np.max(array):.4f}]"
            )
        self._values = array

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def zeros(cls, num_users: int, num_items: int) -> "InterestMatrix":
        """Create an all-zero interest matrix."""
        return cls(np.zeros((num_users, num_items), dtype=np.float64), copy=False)

    @classmethod
    def from_entries(
        cls,
        num_users: int,
        num_items: int,
        entries: Iterable[Tuple[int, int, float]],
    ) -> "InterestMatrix":
        """Build a matrix from sparse ``(user_index, item_index, value)`` triples.

        Later entries for the same cell overwrite earlier ones.
        """
        values = np.zeros((num_users, num_items), dtype=np.float64)
        for user_index, item_index, value in entries:
            if not (0 <= user_index < num_users):
                raise InstanceValidationError(
                    f"user index {user_index} outside [0, {num_users})"
                )
            if not (0 <= item_index < num_items):
                raise InstanceValidationError(
                    f"item index {item_index} outside [0, {num_items})"
                )
            values[user_index, item_index] = value
        return cls(values, copy=False)

    @classmethod
    def from_dict(
        cls,
        num_users: int,
        num_items: int,
        mapping: Mapping[Tuple[int, int], float],
    ) -> "InterestMatrix":
        """Build a matrix from a ``{(user_index, item_index): value}`` mapping."""
        return cls.from_entries(
            num_users, num_items, ((u, i, v) for (u, i), v in mapping.items())
        )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def values(self) -> np.ndarray:
        """The underlying ``(num_users, num_items)`` float64 array (read/write)."""
        return self._values

    @property
    def num_users(self) -> int:
        """Number of rows (users)."""
        return self._values.shape[0]

    @property
    def num_items(self) -> int:
        """Number of columns (events)."""
        return self._values.shape[1]

    @property
    def shape(self) -> Tuple[int, int]:
        """``(num_users, num_items)``."""
        return self._values.shape  # type: ignore[return-value]

    def column(self, item_index: int) -> np.ndarray:
        """Interest of every user for one item (a view, not a copy)."""
        return self._values[:, item_index]

    def row(self, user_index: int) -> np.ndarray:
        """Interest of one user over every item (a view, not a copy)."""
        return self._values[user_index, :]

    def value(self, user_index: int, item_index: int) -> float:
        """Interest µ of a single user for a single item."""
        return float(self._values[user_index, item_index])

    def mean(self) -> float:
        """Mean interest value (0.0 for an empty matrix)."""
        if self._values.size == 0:
            return 0.0
        return float(self._values.mean())

    def density(self, *, threshold: float = 0.0) -> float:
        """Fraction of entries strictly greater than ``threshold``."""
        if self._values.size == 0:
            return 0.0
        return float(np.count_nonzero(self._values > threshold) / self._values.size)

    def to_dict(self) -> Dict[str, object]:
        """Serialise to a JSON-friendly dict (row-major nested lists)."""
        return {"shape": list(self.shape), "values": self._values.tolist()}

    @classmethod
    def from_serialized(cls, payload: Mapping[str, object]) -> "InterestMatrix":
        """Inverse of :meth:`to_dict`."""
        values = np.asarray(payload["values"], dtype=np.float64)
        expected_shape = tuple(payload.get("shape", values.shape))  # type: ignore[arg-type]
        if values.size == 0:
            values = values.reshape(expected_shape)
        if tuple(values.shape) != tuple(expected_shape):
            raise InstanceValidationError(
                f"serialised interest matrix shape {values.shape} does not match "
                f"declared shape {expected_shape}"
            )
        return cls(values, copy=False)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InterestMatrix):
            return NotImplemented
        return self.shape == other.shape and bool(np.allclose(self._values, other._values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InterestMatrix(num_users={self.num_users}, num_items={self.num_items}, "
            f"mean={self.mean():.3f})"
        )
