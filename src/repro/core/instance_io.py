"""NPZ persistence and memory-mapping for SES instances.

This module owns the binary ``.npz`` schema for
:class:`~repro.core.instance.SESInstance`:

* ``entities`` — the entity lists / organiser / metadata as a JSON string
  (stored as a ``uint8`` array member);
* ``activity`` — the ``|U| × |T|`` activity matrix;
* each interest matrix either as one dense 2-D member (``interest``,
  ``competing_interest``) or as event-major CSR members
  (``<prefix>_shape`` / ``<prefix>_indptr`` / ``<prefix>_indices`` /
  ``<prefix>_data``), depending on the matrix's storage at save time.

``save_npz(..., compressed=False)`` writes the members ``ZIP_STORED``
(uncompressed), which is what makes ``load_npz(..., mmap=True)`` possible:
CSR members are then ``np.memmap`` views straight into the file and the
matrices stream from disk without ever materialising (the ``"mmap"``
storage).

It lives in the core layer (not ``datasets``) so the distributed layer can
rebuild instances from shipped backing files without importing upward;
:mod:`repro.datasets.loaders` re-exports the public API for callers that
think in dataset terms.
"""

from __future__ import annotations

import json
import os
import zipfile
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.core.errors import DatasetError
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.core.storage import MmapStore, SparseStore, csr_members

PathLike = Union[str, Path]

#: Member-name prefixes of the two interest matrices.
MATRIX_PREFIXES = ("interest", "competing_interest")


def save_npz(instance: SESInstance, path: PathLike, *, compressed: bool = True) -> Path:
    """Write an instance as an NPZ bundle and return the path written.

    Arrays flow straight from the stores into the archive — nothing is
    round-tripped through Python lists.  Matrices held by a
    :class:`SparseStore` (or its memory-mapped subclass) are written as CSR
    members; dense matrices keep the historical single-member layout, so
    files written by earlier versions load unchanged.  Pass
    ``compressed=False`` to store members uncompressed, which is required for
    ``load_npz(..., mmap=True)``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    members: Dict[str, np.ndarray] = {}
    for prefix, matrix in (
        ("interest", instance.interest),
        ("competing_interest", instance.competing_interest),
    ):
        store = matrix.store
        if isinstance(store, SparseStore):
            members.update(csr_members(store, prefix=prefix))
        else:
            members[prefix] = np.ascontiguousarray(store.to_dense(), dtype=np.float64)
    members["activity"] = np.ascontiguousarray(instance.activity, dtype=np.float64)
    entities = instance.to_dict(include_matrices=False)
    members["entities"] = np.frombuffer(
        json.dumps(entities, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    writer = np.savez_compressed if compressed else np.savez
    writer(target, **members)
    return target


def load_npz(path: PathLike, *, mmap: bool = False) -> SESInstance:
    """Load an instance written by :func:`save_npz`.

    With ``mmap=False`` every array is read into memory and the matrices come
    back under the storage they were saved with (dense members → ``"dense"``,
    CSR members → ``"sparse"``).  With ``mmap=True`` the CSR members are
    memory-mapped in place — the file must be uncompressed and the matrices
    must be stored as CSR — and the returned instance records the file in
    ``backing_file`` so the execution layers can map or ship it.
    """
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"instance file not found: {source}")
    if mmap:
        return _load_npz_mmap(source)
    with np.load(source, allow_pickle=False) as bundle:
        payload = _entities_payload(bundle["entities"])
        payload["activity"] = np.asarray(bundle["activity"], dtype=np.float64)
        for prefix in MATRIX_PREFIXES:
            if prefix in bundle:
                values = np.asarray(bundle[prefix], dtype=np.float64)
                payload[prefix] = {"shape": list(values.shape), "values": values}
            else:
                payload[prefix] = {
                    "shape": np.asarray(bundle[f"{prefix}_shape"]).tolist(),
                    "indptr": np.asarray(bundle[f"{prefix}_indptr"]),
                    "indices": np.asarray(bundle[f"{prefix}_indices"]),
                    "data": np.asarray(bundle[f"{prefix}_data"]),
                }
    return SESInstance.from_dict(payload)


def spill_instance(instance: SESInstance, directory: PathLike) -> SESInstance:
    """Write ``instance`` as an uncompressed CSR NPZ and memory-map it back.

    This is the ``"mmap"`` conversion behind ``SESInstance.with_storage``:
    both matrices are re-represented as event-major CSR, spilled to
    ``<directory>/<name>.npz`` with ``compressed=False`` and re-opened with
    ``mmap=True``, so the returned instance streams from disk and knows its
    ``backing_file``.
    """
    folder = Path(directory)
    folder.mkdir(parents=True, exist_ok=True)
    filename = f"{instance.name}.npz".replace(os.sep, "_")
    sparse_instance = instance
    if not (
        isinstance(instance.interest.store, SparseStore)
        and isinstance(instance.competing_interest.store, SparseStore)
    ):
        sparse_instance = instance.with_storage("sparse")
    target = save_npz(sparse_instance, folder / filename, compressed=False)
    return load_npz(target, mmap=True)


# --------------------------------------------------------------------------- #
# Internals
# --------------------------------------------------------------------------- #
def _entities_payload(entities_member: np.ndarray) -> Dict[str, object]:
    """Decode the ``entities`` JSON member into a ``from_dict`` payload."""
    return dict(json.loads(bytes(entities_member.tobytes()).decode("utf-8")))


def _load_npz_mmap(source: Path) -> SESInstance:
    with zipfile.ZipFile(source) as archive:
        compression = {info.filename: info.compress_type for info in archive.infolist()}
    if any(kind != zipfile.ZIP_STORED for kind in compression.values()):
        raise DatasetError(
            f"{source} holds compressed members and cannot be memory-mapped; "
            "re-save it with save_npz(..., compressed=False)"
        )
    matrices: Dict[str, InterestMatrix] = {}
    for prefix in MATRIX_PREFIXES:
        if f"{prefix}_indptr.npy" in compression:
            matrices[prefix] = InterestMatrix.from_store(
                MmapStore.open(str(source), prefix=prefix)
            )
        else:
            raise DatasetError(
                f"{source}: matrix {prefix!r} is stored dense; memory-mapped "
                "loads stream CSR members only — re-save the instance under "
                "the 'sparse' or 'mmap' storage (e.g. via "
                "instance.with_storage('sparse')) with compressed=False"
            )
    with np.load(source, allow_pickle=False) as bundle:
        payload = _entities_payload(bundle["entities"])
        payload["activity"] = np.asarray(bundle["activity"], dtype=np.float64)
    payload["interest"] = matrices["interest"]
    payload["competing_interest"] = matrices["competing_interest"]
    instance = SESInstance.from_dict(payload)
    instance.backing_file = str(source)
    return instance


__all__ = ["MATRIX_PREFIXES", "save_npz", "load_npz", "spill_instance"]
