"""Core model of the Social Event Scheduling problem.

The subpackage contains the problem entities (:mod:`repro.core.entities`),
the instance container (:mod:`repro.core.instance`), schedules and feasibility
constraints (:mod:`repro.core.schedule`, :mod:`repro.core.constraints`), the
attendance model and scoring engine (:mod:`repro.core.scoring`), the
execution-backend layer deciding how bulk scoring runs
(:mod:`repro.core.execution`) and the instrumentation counters used by the
paper's evaluation (:mod:`repro.core.counters`).
"""

from repro.core.counters import ComputationCounter
from repro.core.entities import CompetingEvent, Event, Organizer, TimeInterval, User
from repro.core.execution import ExecutionBackend, ExecutionConfig, register_backend
from repro.core.errors import (
    InfeasibleAssignmentError,
    InstanceValidationError,
    ReproError,
    ScheduleError,
)
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.core.schedule import Assignment, Schedule
from repro.core.scoring import ScoringEngine

__all__ = [
    "ComputationCounter",
    "CompetingEvent",
    "Event",
    "Organizer",
    "TimeInterval",
    "User",
    "ReproError",
    "InstanceValidationError",
    "InfeasibleAssignmentError",
    "ScheduleError",
    "SESInstance",
    "InterestMatrix",
    "Assignment",
    "Schedule",
    "ScoringEngine",
    "ExecutionBackend",
    "ExecutionConfig",
    "register_backend",
]
