"""Schedules and assignments (paper §2.1).

An :class:`Assignment` ``α_e^t`` states that candidate event ``e`` takes place
during interval ``t``.  A :class:`Schedule` is a set of assignments with at
most one assignment per event; it offers the per-interval views the paper's
algorithms need (``E_t(S)``, ``t_e(S)``) in O(1).

Schedules are index-based: events and intervals are referred to by their
position in the owning :class:`~repro.core.instance.SESInstance`.  This keeps
the inner loops of the schedulers free of string lookups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.core.errors import ScheduleError


@dataclass(frozen=True, order=True)
class Assignment:
    """An event-to-interval assignment ``α_e^t`` (by instance indices)."""

    event_index: int
    interval_index: int

    def as_tuple(self) -> Tuple[int, int]:
        """Return ``(event_index, interval_index)``."""
        return (self.event_index, self.interval_index)


class Schedule:
    """A set of assignments with at most one interval per event.

    The class is a plain container: it enforces only the structural rule
    "no event is assigned twice".  Location and resource feasibility are
    checked by :mod:`repro.core.constraints` (they need the instance data).
    """

    __slots__ = ("_interval_of_event", "_events_by_interval")

    def __init__(self) -> None:
        self._interval_of_event: Dict[int, int] = {}
        self._events_by_interval: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, event_index: int, interval_index: int) -> Assignment:
        """Assign ``event_index`` to ``interval_index``.

        Raises
        ------
        ScheduleError
            If the event already has an assignment or an index is negative.
        """
        if event_index < 0 or interval_index < 0:
            raise ScheduleError(
                f"indices must be non-negative, got event={event_index}, "
                f"interval={interval_index}"
            )
        if event_index in self._interval_of_event:
            raise ScheduleError(
                f"event {event_index} is already assigned to interval "
                f"{self._interval_of_event[event_index]}"
            )
        self._interval_of_event[event_index] = interval_index
        self._events_by_interval.setdefault(interval_index, set()).add(event_index)
        return Assignment(event_index, interval_index)

    def remove(self, event_index: int) -> None:
        """Remove the assignment of ``event_index``.

        Raises
        ------
        ScheduleError
            If the event is not scheduled.
        """
        if event_index not in self._interval_of_event:
            raise ScheduleError(f"event {event_index} is not scheduled")
        interval_index = self._interval_of_event.pop(event_index)
        events = self._events_by_interval[interval_index]
        events.discard(event_index)
        if not events:
            del self._events_by_interval[interval_index]

    def clear(self) -> None:
        """Remove every assignment."""
        self._interval_of_event.clear()
        self._events_by_interval.clear()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def is_scheduled(self, event_index: int) -> bool:
        """``True`` if the event has an assignment (``e ∈ E(S)``)."""
        return event_index in self._interval_of_event

    def interval_of(self, event_index: int) -> int:
        """The interval the event is assigned to (``t_e(S)``).

        Raises
        ------
        ScheduleError
            If the event is not scheduled.
        """
        try:
            return self._interval_of_event[event_index]
        except KeyError:
            raise ScheduleError(f"event {event_index} is not scheduled") from None

    def events_at(self, interval_index: int) -> Set[int]:
        """The events scheduled in an interval (``E_t(S)``), as a new set."""
        return set(self._events_by_interval.get(interval_index, ()))

    def num_events_at(self, interval_index: int) -> int:
        """``|E_t(S)|`` without copying the underlying set."""
        return len(self._events_by_interval.get(interval_index, ()))

    def scheduled_events(self) -> Set[int]:
        """All scheduled event indices (``E(S)``), as a new set."""
        return set(self._interval_of_event)

    def used_intervals(self) -> Set[int]:
        """Intervals that host at least one event."""
        return set(self._events_by_interval)

    def assignments(self) -> List[Assignment]:
        """All assignments sorted by (interval, event) for deterministic output."""
        return sorted(
            (Assignment(event, interval) for event, interval in self._interval_of_event.items()),
            key=lambda a: (a.interval_index, a.event_index),
        )

    def as_dict(self) -> Dict[int, int]:
        """Return a ``{event_index: interval_index}`` copy."""
        return dict(self._interval_of_event)

    def copy(self) -> "Schedule":
        """Deep copy of the schedule."""
        clone = Schedule()
        for event_index, interval_index in self._interval_of_event.items():
            clone._interval_of_event[event_index] = interval_index
            clone._events_by_interval.setdefault(interval_index, set()).add(event_index)
        return clone

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._interval_of_event)

    def __iter__(self) -> Iterator[Assignment]:
        return iter(self.assignments())

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Assignment):
            return self._interval_of_event.get(item.event_index) == item.interval_index
        if isinstance(item, tuple) and len(item) == 2:
            event_index, interval_index = item
            return self._interval_of_event.get(int(event_index)) == int(interval_index)
        if isinstance(item, int):
            return item in self._interval_of_event
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self._interval_of_event == other._interval_of_event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"e{event}->t{interval}" for event, interval in sorted(self._interval_of_event.items())
        )
        return f"Schedule({parts})"

    @classmethod
    def from_pairs(cls, pairs: Dict[int, int] | List[Tuple[int, int]]) -> "Schedule":
        """Build a schedule from ``{event: interval}`` or ``[(event, interval), ...]``."""
        schedule = cls()
        items = pairs.items() if isinstance(pairs, dict) else pairs
        for event_index, interval_index in items:
            schedule.add(int(event_index), int(interval_index))
        return schedule
