"""The ``cluster`` execution backend (client side).

:class:`ClusterBackend` shards :meth:`ScoringEngine.score_matrix`'s
per-interval column tasks across remote worker processes
(:mod:`repro.core.distributed.worker`) over TCP.  It is the fifth registered
strategy and the first network boundary in the codebase; the design mirrors
the in-process ``process`` backend one level up:

* the static instance matrices ship to each worker **once per instance
  fingerprint** (the TCP analogue of publish-once shared memory) and are
  cached worker-side across calls, runs and clients;
* each task streams only the interval's two per-user scheduled-sum vectors
  (plus the call's selector) and returns one score column;
* every column is produced by the same
  :func:`~repro.core.execution.score_block_kernel` under the same event-axis
  chunking as the serial batch path, so results are **bit-identical** to every
  other backend regardless of which machine computed which column.

**Failure tolerance.**  Dispatch runs one client thread per live worker, all
pulling interval tasks from one shared pending pool.  A worker that dies
mid-run (connection reset / EOF) has its in-flight task re-queued and its
remaining share drained by the surviving workers; if every worker is lost the
leftover columns are computed locally with the serial batch kernel — the run
always completes with the exact same matrix, just slower.

**Degradation.**  With no workers configured
(:attr:`~repro.core.execution.ExecutionConfig.workers_addr` unset) the backend
behaves exactly like the in-process ``process`` backend it subclasses, so
``backend="cluster"`` is safe to hard-code in configs that only sometimes run
with remote workers.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import threading
import warnings
from multiprocessing.connection import Client, Connection
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.distributed.protocol import (
    ERROR_UNKNOWN_INSTANCE,
    ERROR_UNKNOWN_SELECTION,
    OP_HAS_INSTANCE,
    OP_PING,
    OP_PUT_INSTANCE,
    OP_SCORE_COLUMN,
    PROTOCOL_VERSION,
    SELECTOR_CACHED,
    STATUS_OK,
    ColumnTask,
    authkey_bytes,
    instance_fingerprint,
    parse_worker_address,
)
from repro.core.errors import SolverError
from repro.core.execution import BatchBackend, ExecutionConfig, ProcessBackend

#: Exceptions that mean "this worker (or its link) is gone" — the task is
#: re-dispatched instead of failing the run.
_LINK_FAILURES = (OSError, EOFError, BrokenPipeError, ConnectionError)


class ClusterWorkerWarning(RuntimeWarning):
    """Warned when a configured worker is unreachable or dies mid-run."""


class _WorkerLink:
    """One live connection to a remote worker (driven by one client thread)."""

    __slots__ = ("address", "connection", "alive", "shipped", "selection_token")

    def __init__(self, address: str, connection: Connection) -> None:
        self.address = address
        self.connection = connection
        self.alive = True
        #: Fingerprints this client has confirmed resident on the worker.
        self.shipped: set = set()
        #: Call token whose selector already crossed this connection (the
        #: selector ships once per call per link; later tasks reference it).
        self.selection_token: Optional[int] = None

    def close(self) -> None:
        self.alive = False
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass


class ClusterBackend(ProcessBackend):
    """Distributed strategy: score-matrix columns sharded across TCP workers.

    Selected with ``ExecutionConfig(backend="cluster",
    workers_addr=("host:port", ...))``; start the workers with
    ``repro worker serve``.  Single-interval bulk calls
    (:meth:`~ScoringEngine.interval_scores`, the incremental refresh path) use
    the local serial batch kernel — shipping one column's work over TCP cannot
    beat computing it in place.  With no ``workers_addr`` the backend degrades
    to the inherited in-process ``process`` behaviour.
    """

    name = "cluster"
    is_bulk = True
    uses_workers = True
    uses_processes = True
    uses_cluster = True

    def __init__(self, config: ExecutionConfig) -> None:
        super().__init__(config)
        self._links: Optional[List[_WorkerLink]] = None
        self._fingerprint: Optional[str] = None
        self._arrays: Optional[Dict[str, np.ndarray]] = None
        self._call_tokens = itertools.count()

    # ------------------------------------------------------------------ #
    # Instance shipping
    # ------------------------------------------------------------------ #
    def _instance_arrays(self) -> Tuple[str, Dict[str, np.ndarray]]:
        """The static matrices to ship, plus their fingerprint (computed once)."""
        if self._arrays is None:
            engine = self.engine
            self._arrays = {
                "mu_rows": engine._mu_rows,
                "value_mu_rows": engine._value_mu_rows,
                "comp": np.ascontiguousarray(engine._comp),
                "sigma": np.ascontiguousarray(engine._sigma),
            }
            self._fingerprint = instance_fingerprint(self._arrays)
        return self._fingerprint, self._arrays  # type: ignore[return-value]

    def _connect(self, address: str) -> _WorkerLink:
        """Open, authenticate and version-check one worker connection."""
        host, port = parse_worker_address(address)
        try:
            connection = Client((host, port), authkey=authkey_bytes(self._config.cluster_key))
        except multiprocessing.AuthenticationError:
            # A key mismatch is a configuration error, not a dead worker —
            # re-dispatching would silently hide it.
            raise SolverError(
                f"cluster worker {address} rejected the authentication key; "
                "client and worker must share the same cluster_key"
            ) from None
        link = _WorkerLink(address, connection)
        status, payload = self._roundtrip(link, (OP_PING,))
        if status != STATUS_OK:
            link.close()
            raise SolverError(f"cluster worker {address} rejected the handshake: {payload}")
        version = payload.get("version") if isinstance(payload, dict) else None
        if version != PROTOCOL_VERSION:
            link.close()
            raise SolverError(
                f"cluster worker {address} speaks protocol {version!r}, "
                f"this client speaks {PROTOCOL_VERSION}"
            )
        return link

    @staticmethod
    def _roundtrip(link: _WorkerLink, request: tuple):
        """One request/response exchange on a link."""
        link.connection.send(request)
        return link.connection.recv()

    def _ship_instance(self, link: _WorkerLink) -> None:
        """Make the engine's matrices resident on the worker (once per fingerprint)."""
        fingerprint, arrays = self._instance_arrays()
        if fingerprint in link.shipped:
            return
        status, resident = self._roundtrip(link, (OP_HAS_INSTANCE, fingerprint))
        if status != STATUS_OK:
            raise SolverError(f"cluster worker {link.address} failed: {resident}")
        if not resident:
            status, payload = self._roundtrip(link, (OP_PUT_INSTANCE, fingerprint, arrays))
            if status != STATUS_OK:
                raise SolverError(f"cluster worker {link.address} failed: {payload}")
        link.shipped.add(fingerprint)

    def _live_links(self) -> List[_WorkerLink]:
        """Connect lazily to every configured worker; skip the unreachable.

        Connections persist across calls (a worker keeps the instance cached,
        so reconnecting per call would only add latency).  Dead links are
        pruned here, so a worker that was unreachable at first contact — or
        that died and was restarted on the same address — is retried on the
        next call.
        """
        addresses = self._config.workers_addr or ()
        if self._links is None:
            self._links = []
        else:
            self._links = [link for link in self._links if link.alive]
        linked = {link.address for link in self._links}
        for address in addresses:
            if address in linked:
                continue
            try:
                link = self._connect(address)
                self._ship_instance(link)
            except _LINK_FAILURES as error:
                warnings.warn(
                    f"cluster worker {address} is unreachable ({error}); "
                    "its share re-dispatches to the remaining workers",
                    ClusterWorkerWarning,
                    stacklevel=3,
                )
                continue
            self._links.append(link)
        return [link for link in self._links if link.alive]

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def score_matrix(self, selector: Optional[np.ndarray]) -> np.ndarray:
        engine = self.engine
        num_intervals = engine.instance.num_intervals
        num_rows = engine.instance.num_events if selector is None else int(selector.size)
        if not self._config.workers_addr:
            # Degraded mode: no cluster configured — the inherited in-process
            # process backend (which itself degrades to serial batch when it
            # cannot pay off).
            return super().score_matrix(selector)
        if num_intervals <= 1 or num_rows == 0:
            return self._local_matrix(selector)
        links = self._live_links()
        if not links:
            warnings.warn(
                "no cluster worker is reachable; computing locally",
                ClusterWorkerWarning,
                stacklevel=2,
            )
            return self._local_matrix(selector)
        # An explicit workers=N caps the dispatch lanes (the default resolves
        # to len(workers_addr), i.e. every reachable worker) — what actually
        # fans out must match what results/records report.
        links = links[: max(1, self._config.workers)]

        mu_rows, value_mu_rows = engine._select_event_rows(selector)
        token = next(self._call_tokens)
        step = self._config.chunk_size
        matrix = np.empty((num_rows, num_intervals), dtype=np.float64)
        tasks = {
            interval_index: ColumnTask(
                interval_index=interval_index,
                token=token,
                selector=selector,
                scheduled=engine._scheduled_interest[interval_index],
                scheduled_value=engine._scheduled_value_interest[interval_index],
                utility=float(engine._interval_utility[interval_index]),
                step=step,
            )
            for interval_index in range(num_intervals)
        }
        pending: List[int] = list(tasks)
        lock = threading.Lock()
        errors: List[BaseException] = []

        def drive(link: _WorkerLink) -> None:
            while True:
                with lock:
                    if not pending:
                        return
                    interval_index = pending.pop()
                try:
                    column = self._remote_column(link, tasks[interval_index])
                except _LINK_FAILURES as error:
                    with lock:
                        pending.append(interval_index)
                    link.close()
                    warnings.warn(
                        f"cluster worker {link.address} died mid-run "
                        f"({type(error).__name__}: {error}); "
                        "re-dispatching its pending intervals",
                        ClusterWorkerWarning,
                        stacklevel=2,
                    )
                    return
                except BaseException as error:  # noqa: BLE001 - surfaced after join
                    with lock:
                        pending.append(interval_index)
                        errors.append(error)
                    return
                matrix[:, interval_index] = column

        threads = [
            threading.Thread(target=drive, args=(link,), name=f"ses-cluster-{index}")
            for index, link in enumerate(links)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        # Every interval a dead worker left behind (and anything never
        # dispatched because all workers were lost) is computed locally with
        # the bit-identical serial batch kernel.
        for interval_index in pending:
            matrix[:, interval_index] = self._sharded_scores(
                interval_index, mu_rows, value_mu_rows
            )
        return matrix

    def _remote_column(self, link: _WorkerLink, task: ColumnTask) -> np.ndarray:
        """One task round-trip, healing evictions transparently.

        The selector of a subset call crosses each connection once: the first
        task of a call carries the index array, later tasks reference it with
        :data:`SELECTOR_CACHED`.  A worker that lost state mid-call answers
        with a well-known error — :data:`ERROR_UNKNOWN_INSTANCE` triggers an
        instance re-ship, :data:`ERROR_UNKNOWN_SELECTION` a retry with the
        full selector attached — so restarts only cost the re-shipping.
        """
        fingerprint, _ = self._instance_arrays()
        wire_task = task
        if task.selector is not None:
            if link.selection_token == task.token:
                wire_task = dataclasses.replace(task, selector=SELECTOR_CACHED)
            else:
                link.selection_token = task.token
        reshipped = False
        while True:
            status, payload = self._roundtrip(link, (OP_SCORE_COLUMN, fingerprint, wire_task))
            if status == STATUS_OK:
                interval_index, scores = payload
                if interval_index != task.interval_index:  # pragma: no cover - defensive
                    raise SolverError(
                        f"cluster worker {link.address} answered interval "
                        f"{interval_index} for task {task.interval_index}"
                    )
                return scores
            if payload == ERROR_UNKNOWN_INSTANCE and not reshipped:
                # Evicted (or the worker restarted): re-ship and retry once,
                # with the full selector — the selection cache is gone too.
                reshipped = True
                link.shipped.discard(fingerprint)
                self._ship_instance(link)
                wire_task = task
                continue
            if payload == ERROR_UNKNOWN_SELECTION and wire_task is not task:
                wire_task = task
                continue
            raise SolverError(f"cluster worker {link.address} failed: {payload}")

    def _local_matrix(self, selector: Optional[np.ndarray]) -> np.ndarray:
        """The serial in-process batch computation (the local fallback path).

        Explicitly the grandparent's implementation: ``super()`` would hit
        :class:`ProcessBackend`, which spins up a local pool — not wanted
        when a *configured* cluster is merely unreachable.
        """
        return BatchBackend.score_matrix(self, selector)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the worker connections (workers keep running) and any local pool."""
        if self._links is not None:
            for link in self._links:
                link.close()
            self._links = None
        super().close()


__all__ = ["ClusterBackend", "ClusterWorkerWarning"]
