"""The ``cluster`` execution backend (client side).

:class:`ClusterBackend` shards :meth:`ScoringEngine.score_matrix`'s
per-interval column tasks across remote worker processes
(:mod:`repro.core.distributed.worker`) over TCP.  It is the fifth registered
strategy and the first network boundary in the codebase; the design mirrors
the in-process ``process`` backend one level up:

* the static instance data ships to each worker **once per instance
  fingerprint** (the TCP analogue of publish-once shared memory) and is
  cached worker-side across calls, runs and clients.  The ship payload is
  shaped by the instance's storage (protocol v3): dense instances ship the
  precomputed event-major rows, sparse instances the much smaller CSR
  arrays, and a memory-mapped instance whose backing NPZ the worker can see
  ships **only the file path** — zero-copy NPZ shipping, with a transparent
  fallback to byte shipping when the worker answers
  :data:`~repro.core.distributed.protocol.ERROR_FILE_UNAVAILABLE`;
* tasks move in **batches** (protocol v2): one
  :data:`~repro.core.distributed.protocol.OP_SCORE_COLUMNS` request carries
  ``ceil(|T| / (lanes * TASK_OVERSUBSCRIBE))`` columns (clamped; overridable
  via :attr:`~repro.core.execution.ExecutionConfig.task_batch`), and each
  link keeps :data:`~repro.core.distributed.protocol.PIPELINE_DEPTH` batches
  in flight, so the worker prefetches the next batch from its socket buffer
  instead of idling one wire round-trip per column;
* every column is produced by the same
  :func:`~repro.core.execution.score_block_kernel` under the same event-axis
  chunking as the serial batch path, so results are **bit-identical** to every
  other backend regardless of which machine computed which column.

**Dispatch.**  ``score_matrix`` runs one *lane* thread per ``workers`` (capped
by the number of configured addresses — the knob caps concurrency, never the
candidate worker set).  A lane acquires an idle live link, or dials a
configured address that has none; connecting and instance shipping happen
inside the lane, and while no link is serving yet the main thread computes
columns locally from the tail of the queue, so shipping overlaps with the
first locally-computed columns instead of blocking dispatch start.

**Failure tolerance and elasticity.**  A worker that dies mid-run (connection
reset / EOF) has its in-flight batches re-queued — re-split across the
surviving links so no single survivor inherits the whole share — and its lane
dials a replacement.  Failed addresses are retried with exponential backoff
(:data:`~repro.core.distributed.protocol.RECONNECT_BACKOFF_BASE`), and idle
lanes re-poll the configured addresses every
:data:`~repro.core.distributed.protocol.REDISCOVERY_INTERVAL` seconds, so a
worker restarted (or newly started) on a configured address joins an
*in-flight* ``score_matrix`` call instead of waiting for the next one.  If
every worker is lost the leftover columns are computed locally with the
serial batch kernel — the run always completes with the exact same matrix,
just slower.  A fatal (non-link) error sets a shared abort flag checked in
every lane's dispatch loop, so a run that is guaranteed to fail stops paying
for remote columns promptly.

**Observability.**  Per-link counters — tasks served, batches, round-trips,
bytes sent/received — accumulate per worker address (independent of link
objects, so they survive reconnects and :meth:`~ClusterBackend.close`) and
are exposed through :meth:`ClusterBackend.stats`, which the scheduler records
into :meth:`SchedulerResult.summary`.

**Degradation.**  With no workers configured
(:attr:`~repro.core.execution.ExecutionConfig.workers_addr` unset) the backend
behaves exactly like the in-process ``process`` backend it subclasses, so
``backend="cluster"`` is safe to hard-code in configs that only sometimes run
with remote workers.
"""

from __future__ import annotations

import collections
import dataclasses
import itertools
import multiprocessing
import pickle
import threading
import time
import warnings
from multiprocessing.connection import Client, Connection
from typing import Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.distributed.protocol import (
    ERROR_FILE_UNAVAILABLE,
    ERROR_UNKNOWN_INSTANCE,
    ERROR_UNKNOWN_SELECTION,
    OP_HAS_INSTANCE,
    OP_PING,
    OP_PUT_INSTANCE,
    OP_SCORE_COLUMNS,
    PIPELINE_DEPTH,
    PROTOCOL_VERSION,
    RECONNECT_BACKOFF_BASE,
    RECONNECT_BACKOFF_MAX,
    REDISCOVERY_INTERVAL,
    SELECTOR_CACHED,
    STATUS_OK,
    ColumnTask,
    authkey_bytes,
    derive_task_batch,
    file_fingerprint,
    instance_fingerprint,
    parse_worker_address,
)
from repro.core.errors import SolverError
from repro.core.execution import BatchBackend, ExecutionConfig, ProcessBackend
from repro.core.storage import DenseEventRows, as_sparse

#: Exceptions that mean "this worker (or its link) is gone" — the batch is
#: re-dispatched instead of failing the run.
_LINK_FAILURES = (OSError, EOFError, BrokenPipeError, ConnectionError)

#: Heal-and-resend cycles tolerated per link per call before the worker is
#: declared broken (a healthy worker needs at most one instance re-ship and
#: one selector re-attach per call).
_MAX_HEALS = 4


class ClusterWorkerWarning(RuntimeWarning):
    """Warned when a configured worker is unreachable or dies mid-run."""


class _WorkerLink:
    """One live connection to a remote worker (driven by one lane at a time)."""

    __slots__ = ("address", "connection", "alive", "shipped", "selection_token")

    def __init__(self, address: str, connection: Connection) -> None:
        self.address = address
        self.connection = connection
        self.alive = True
        #: Fingerprints this client has confirmed resident on the worker.
        self.shipped: set = set()
        #: Call token whose selector already crossed this connection (the
        #: selector ships once per call per link; later tasks reference it).
        self.selection_token: Optional[int] = None

    def close(self) -> None:
        self.alive = False
        try:
            self.connection.close()
        except OSError:  # pragma: no cover - already closed
            pass


class _CallState:
    """Shared state of one ``score_matrix`` dispatch (lanes + the main thread)."""

    __slots__ = (
        "tasks",
        "matrix",
        "pending",
        "lock",
        "errors",
        "abort",
        "token",
        "selector",
        "serving",
        "available",
        "connecting",
        "warned",
    )

    def __init__(
        self,
        tasks: Dict[int, ColumnTask],
        matrix: np.ndarray,
        pending: "Deque[List[int]]",
        token: int,
        selector: Optional[np.ndarray],
        available: List[_WorkerLink],
    ) -> None:
        self.tasks = tasks
        self.matrix = matrix
        #: Batches not yet dispatched (lanes pop from the left, the local
        #: overlap helper from the right).
        self.pending = pending
        self.lock = threading.Lock()
        self.errors: List[BaseException] = []
        #: Set on the first fatal (non-link) error: every lane checks it in
        #: its dispatch loop and stops sending promptly instead of draining
        #: the whole pending pool for a run that is guaranteed to fail.
        self.abort = threading.Event()
        self.token = token
        self.selector = selector
        #: Set when the first link is ready to serve — ends the main thread's
        #: ship-overlap local compute.
        self.serving = threading.Event()
        #: Idle live links (a lane holding a link is its only driver).
        self.available = available
        #: Addresses currently being dialled by some lane.
        self.connecting: Set[str] = set()
        #: Addresses already warned about this call (one warning per call).
        self.warned: Set[str] = set()


class ClusterBackend(ProcessBackend):
    """Distributed strategy: score-matrix columns sharded across TCP workers.

    Selected with ``ExecutionConfig(backend="cluster",
    workers_addr=("host:port", ...))``; start the workers with
    ``repro worker serve``.  Single-interval bulk calls
    (:meth:`~ScoringEngine.interval_scores`, the incremental refresh path) use
    the local serial batch kernel — shipping one column's work over TCP cannot
    beat computing it in place.  With no ``workers_addr`` the backend degrades
    to the inherited in-process ``process`` behaviour.
    """

    name = "cluster"
    is_bulk = True
    uses_workers = True
    uses_processes = True
    uses_cluster = True

    def __init__(self, config: ExecutionConfig) -> None:
        super().__init__(config)
        self._links: Optional[List[_WorkerLink]] = None
        self._fingerprint: Optional[str] = None
        self._payload: Optional[Dict[str, object]] = None
        self._call_tokens = itertools.count()
        #: Per-address dispatch counters.  Keyed by address — not by link —
        #: so they survive reconnects and remain readable after close().
        self._link_stats: Dict[str, Dict[str, int]] = {}
        self._local_columns = 0
        self._last_task_batch: Optional[int] = None
        #: Per-address reconnection backoff (seconds) and next-attempt
        #: deadline — exponential within a call, reset at every call start.
        self._backoff: Dict[str, float] = {}
        self._retry_at: Dict[str, float] = {}
        #: Batches kept in flight per link.  The benchmark pins this to 1
        #: (together with ``task_batch=1``) to measure the v1 per-column
        #: dispatch this protocol replaced.
        self._pipeline_depth = PIPELINE_DEPTH

    # ------------------------------------------------------------------ #
    # Instance shipping
    # ------------------------------------------------------------------ #
    def _instance_payload(self) -> Tuple[str, Dict[str, object]]:
        """The instance ship payload, plus its fingerprint (computed once).

        Shaped by the instance's storage (see the protocol module): dense
        storage ships the precomputed event-major rows (``"arrays"``, exactly
        the v2 content — same fingerprint, too); sparse storage ships the CSR
        arrays (``"csr"``); a file-backed instance ships only its path
        (``"file"``), fingerprinted by the file's bytes — chunk-read, never
        materialised — with :meth:`_csr_payload` as the byte-ship fallback
        when the worker answers :data:`ERROR_FILE_UNAVAILABLE`.
        """
        if self._payload is None:
            engine = self.engine
            backing_file = engine.instance.backing_file
            if engine._store.is_file_backed and backing_file is not None:
                self._payload = {"kind": "file", "path": backing_file}
                self._fingerprint = file_fingerprint(backing_file)
            elif isinstance(engine._event_rows, DenseEventRows):
                mu_rows, value_mu_rows = engine._event_rows.arrays
                arrays = {
                    "mu_rows": mu_rows,
                    "value_mu_rows": value_mu_rows,
                    "comp": np.ascontiguousarray(engine._comp),
                    "sigma": np.ascontiguousarray(engine._sigma),
                }
                self._payload = {"kind": "arrays", "arrays": arrays}
                self._fingerprint = instance_fingerprint(arrays)
            else:
                self._payload = self._csr_payload()
                self._fingerprint = instance_fingerprint(
                    self._payload["arrays"]  # type: ignore[arg-type]
                )
        return self._fingerprint, self._payload  # type: ignore[return-value]

    def _csr_payload(self) -> Dict[str, object]:
        """The byte-ship form of a sparse/mmap instance (CSR arrays + statics)."""
        engine = self.engine
        indptr, indices, data = as_sparse(engine._store).csr_arrays
        arrays = {
            "csr_shape": np.asarray(engine._store.shape, dtype=np.int64),
            "csr_indptr": np.ascontiguousarray(indptr, dtype=np.int64),
            "csr_indices": np.ascontiguousarray(indices, dtype=np.int64),
            "csr_data": np.ascontiguousarray(data, dtype=np.float64),
            "values": np.ascontiguousarray(engine._values),
            "comp": np.ascontiguousarray(engine._comp),
            "sigma": np.ascontiguousarray(engine._sigma),
        }
        return {"kind": "csr", "arrays": arrays}

    def _connect(self, address: str) -> _WorkerLink:
        """Open, authenticate and version-check one worker connection."""
        host, port = parse_worker_address(address)
        try:
            connection = Client((host, port), authkey=authkey_bytes(self._config.cluster_key))
        except multiprocessing.AuthenticationError:
            # A key mismatch is a configuration error, not a dead worker —
            # re-dispatching would silently hide it.
            raise SolverError(
                f"cluster worker {address} rejected the authentication key; "
                "client and worker must share the same cluster_key"
            ) from None
        link = _WorkerLink(address, connection)
        status, payload = self._roundtrip(link, (OP_PING,))
        if status != STATUS_OK:
            link.close()
            raise SolverError(f"cluster worker {address} rejected the handshake: {payload}")
        version = payload.get("version") if isinstance(payload, dict) else None
        if version != PROTOCOL_VERSION:
            link.close()
            raise SolverError(
                f"cluster worker {address} speaks protocol {version!r}, "
                f"this client speaks {PROTOCOL_VERSION}"
            )
        return link

    # ------------------------------------------------------------------ #
    # Wire primitives (byte-counting)
    # ------------------------------------------------------------------ #
    def _link_stat(self, address: str) -> Dict[str, int]:
        """The per-address counter record, created on first use."""
        stat = self._link_stats.get(address)
        if stat is None:
            stat = self._link_stats[address] = {
                "tasks": 0,
                "batches": 0,
                "round_trips": 0,
                "bytes_sent": 0,
                "bytes_received": 0,
            }
        return stat

    def _send(self, link: _WorkerLink, request: tuple) -> None:
        """Send one request (explicitly pickled so the byte counters see it).

        ``send_bytes`` of a ``pickle.dumps`` payload is wire-compatible with
        the worker's plain ``Connection.recv()`` — framing is identical, only
        the serialisation moves client-side where its size can be counted.
        """
        payload = pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
        link.connection.send_bytes(payload)
        stat = self._link_stat(link.address)
        stat["bytes_sent"] += len(payload)
        stat["round_trips"] += 1

    def _recv(self, link: _WorkerLink):
        """Receive one response, counting its wire size."""
        payload = link.connection.recv_bytes()
        self._link_stat(link.address)["bytes_received"] += len(payload)
        return pickle.loads(payload)

    def _roundtrip(self, link: _WorkerLink, request: tuple):
        """One synchronous request/response exchange on a link."""
        self._send(link, request)
        return self._recv(link)

    def _ship_instance(self, link: _WorkerLink) -> None:
        """Make the engine's instance resident on the worker (once per fingerprint).

        A file-backed instance ships only its path; a worker without
        filesystem visibility of that path answers
        :data:`ERROR_FILE_UNAVAILABLE` and the instance bytes ship instead
        (under the same fingerprint — the columns are bit-identical either
        way, only the wire cost differs).
        """
        fingerprint, payload = self._instance_payload()
        if fingerprint in link.shipped:
            return
        status, resident = self._roundtrip(link, (OP_HAS_INSTANCE, fingerprint))
        if status != STATUS_OK:
            raise SolverError(f"cluster worker {link.address} failed: {resident}")
        if not resident:
            status, reply = self._roundtrip(link, (OP_PUT_INSTANCE, fingerprint, payload))
            if (
                status != STATUS_OK
                and reply == ERROR_FILE_UNAVAILABLE
                and payload.get("kind") == "file"
            ):
                status, reply = self._roundtrip(
                    link, (OP_PUT_INSTANCE, fingerprint, self._csr_payload())
                )
            if status != STATUS_OK:
                raise SolverError(f"cluster worker {link.address} failed: {reply}")
        link.shipped.add(fingerprint)

    # ------------------------------------------------------------------ #
    # Link pool (lanes acquire; reconnection backoff + re-discovery)
    # ------------------------------------------------------------------ #
    def _candidate_addresses(self, state: _CallState) -> List[str]:
        """Configured addresses with no live link that no lane is dialling.

        Call under ``state.lock``.  This is the *candidate worker set* — it
        always spans every configured address; the ``workers`` knob caps the
        number of concurrent lanes, never this set, so a healthy worker
        beyond the cap picks up the share of a dead one.
        """
        linked = {link.address for link in self._links if link.alive}
        return [
            address
            for address in self._config.workers_addr
            if address not in linked and address not in state.connecting
        ]

    def _note_failure(self, address: str) -> None:
        """Push an address's next reconnection attempt out (exponential backoff)."""
        backoff = self._backoff.get(address)
        backoff = (
            RECONNECT_BACKOFF_BASE
            if backoff is None
            else min(backoff * 2.0, RECONNECT_BACKOFF_MAX)
        )
        self._backoff[address] = backoff
        self._retry_at[address] = time.monotonic() + backoff

    def _acquire_link(self, state: _CallState) -> Optional[_WorkerLink]:
        """An idle live link, or a fresh connection to an unlinked address.

        Returns ``None`` when nothing is connectable right now (every
        candidate is in reconnection backoff, being dialled by another lane,
        or refused the connection).  Configuration errors — authentication or
        protocol-version mismatch — propagate: they must fail the run, not
        demote it to local compute.
        """
        now = time.monotonic()
        with state.lock:
            while state.available:
                link = state.available.pop()
                if link.alive:
                    state.serving.set()
                    return link
            ready = [
                address
                for address in self._candidate_addresses(state)
                if self._retry_at.get(address, 0.0) <= now
            ]
            if not ready:
                return None
            address = ready[0]
            state.connecting.add(address)
        try:
            link = self._connect(address)
            self._ship_instance(link)
        except _LINK_FAILURES as error:
            self._note_failure(address)
            if address not in state.warned:
                state.warned.add(address)
                warnings.warn(
                    f"cluster worker {address} is unreachable ({error}); "
                    "its share re-dispatches to the remaining workers",
                    ClusterWorkerWarning,
                    stacklevel=3,
                )
            return None
        finally:
            with state.lock:
                state.connecting.discard(address)
        with state.lock:
            self._links.append(link)
        self._backoff.pop(address, None)
        self._retry_at.pop(address, None)
        state.serving.set()
        return link

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def score_matrix(self, selector: Optional[np.ndarray]) -> np.ndarray:
        engine = self.engine
        num_intervals = engine.instance.num_intervals
        num_rows = engine.instance.num_events if selector is None else int(selector.size)
        if not self._config.workers_addr:
            # Degraded mode: no cluster configured — the inherited in-process
            # process backend (which itself degrades to serial batch when it
            # cannot pay off).
            return super().score_matrix(selector)
        if num_intervals <= 1 or num_rows == 0:
            return self._local_matrix(selector)
        if self._links is None:
            self._links = []
        else:
            self._links = [link for link in self._links if link.alive]
        # A new call grants every configured address a fresh immediate
        # (re)connection attempt; backoff only paces retries *within* a call.
        self._backoff.clear()
        self._retry_at.clear()

        source = engine._select_event_rows(selector)
        token = next(self._call_tokens)
        step = self._config.chunk_size
        matrix = np.empty((num_rows, num_intervals), dtype=np.float64)
        tasks = {
            interval_index: ColumnTask(
                interval_index=interval_index,
                token=token,
                selector=selector,
                scheduled=engine._scheduled_interest[interval_index],
                scheduled_value=engine._scheduled_value_interest[interval_index],
                utility=float(engine._interval_utility[interval_index]),
                step=step,
            )
            for interval_index in range(num_intervals)
        }
        num_lanes = min(max(1, self._config.workers), len(self._config.workers_addr))
        batch_size = derive_task_batch(num_intervals, num_lanes, self._config.task_batch)
        self._last_task_batch = batch_size
        pending: Deque[List[int]] = collections.deque(
            list(range(start, min(start + batch_size, num_intervals)))
            for start in range(0, num_intervals, batch_size)
        )
        state = _CallState(tasks, matrix, pending, token, selector, list(self._links))
        threads = [
            threading.Thread(
                target=self._drive_lane, args=(state,), name=f"ses-cluster-{index}"
            )
            for index in range(num_lanes)
        ]
        for thread in threads:
            thread.start()
        # Ship overlap: while no link is serving yet (first contact pays
        # connect + instance ship), compute columns locally from the tail of
        # the queue — but leave enough batches to fill every lane's pipeline,
        # so a fast local CPU never starves the remote dispatch on small
        # instances.
        floor = num_lanes * max(1, self._pipeline_depth)
        while not state.serving.is_set():
            with state.lock:
                if len(state.pending) <= floor:
                    break
                batch = state.pending.pop()
            for interval_index in batch:
                matrix[:, interval_index] = self._sharded_scores(interval_index, source)
            self._local_columns += len(batch)
        for thread in threads:
            thread.join()
        if state.errors:
            raise state.errors[0]
        # Every batch a dead worker left behind (and anything never dispatched
        # because every worker was lost) is computed locally with the
        # bit-identical serial batch kernel.
        while state.pending:
            batch = state.pending.popleft()
            for interval_index in batch:
                matrix[:, interval_index] = self._sharded_scores(interval_index, source)
            self._local_columns += len(batch)
        return matrix

    def _drive_lane(self, state: _CallState) -> None:
        """One dispatch lane: acquire a link and stream batches until done.

        A lane whose link dies re-queues the in-flight batches (re-split
        across the survivors) and dials a replacement address — including
        addresses that had no worker at call start, which is what lets a
        restarted worker join an in-flight call.  A lane with nothing to dial
        waits out reconnection backoff in
        :data:`~repro.core.distributed.protocol.REDISCOVERY_INTERVAL` ticks
        while any *other* link is still making progress; once no link is
        alive the lane exits and the leftovers fall to local compute.
        """
        while not state.abort.is_set():
            with state.lock:
                if not state.pending:
                    return
            try:
                link = self._acquire_link(state)
            except BaseException as error:  # staticcheck: allow(broad-except) -- collected into state.errors and re-raised by score_matrix after the lanes join; lane threads have no caller to propagate to
                with state.lock:
                    state.errors.append(error)
                state.abort.set()
                return
            if link is None:
                with state.lock:
                    # A dial in progress counts as "alive": its link may land
                    # any moment, so this lane keeps polling for re-discovery
                    # instead of abandoning an address that is merely slow.
                    others_alive = any(l.alive for l in self._links) or bool(
                        state.connecting
                    )
                    candidates = bool(self._candidate_addresses(state))
                if not others_alive or not candidates:
                    return
                time.sleep(REDISCOVERY_INTERVAL)
                continue
            try:
                self._drive_link(state, link)
            except _LINK_FAILURES:
                continue  # died mid-run: batches re-queued, dial a replacement
            except BaseException as error:  # staticcheck: allow(broad-except) -- collected into state.errors and re-raised by score_matrix after the lanes join; lane threads have no caller to propagate to
                # In-flight replies may be unread — the connection is
                # desynchronised, so it is dropped rather than reused.
                link.close()
                with state.lock:
                    state.errors.append(error)
                state.abort.set()
                return
            else:
                if link.alive:
                    with state.lock:
                        state.available.append(link)
                return

    def _drive_link(self, state: _CallState, link: _WorkerLink) -> None:
        """Stream batches down one link, keeping the pipeline window full.

        Replies arrive in request order (the worker serves a connection on a
        single thread), so a FIFO of in-flight batches maps each reply back
        to its batch.  Link failures re-queue the window — re-split across
        the survivors — and propagate so the lane can dial a replacement.
        """
        depth = max(1, self._pipeline_depth)
        inflight: Deque[List[int]] = collections.deque()
        heals = 0
        try:
            while True:
                while len(inflight) < depth and not state.abort.is_set():
                    with state.lock:
                        if not state.pending:
                            break
                        batch = state.pending.popleft()
                    try:
                        self._send_batch(state, link, batch)
                    except _LINK_FAILURES:
                        with state.lock:
                            state.pending.appendleft(batch)
                        raise
                    inflight.append(batch)
                if not inflight:
                    return
                if state.abort.is_set():
                    # Another lane hit a fatal error: stop now.  The unread
                    # in-flight replies would desynchronise the connection,
                    # so it is dropped rather than drained.
                    with state.lock:
                        state.pending.extendleft(reversed(inflight))
                    link.close()
                    return
                status, payload = self._recv(link)
                batch = inflight.popleft()
                if status == STATUS_OK:
                    self._store_batch(state, link, batch, payload)
                    continue
                # A well-known error reply.  Every later in-flight batch will
                # answer the same way (the worker replies in order), and the
                # healing round-trips cannot interleave with outstanding
                # score replies — so drain the window first, then heal, then
                # re-queue the failed batches.
                failed = [batch]
                while inflight:
                    drained_status, drained_payload = self._recv(link)
                    drained = inflight.popleft()
                    if drained_status == STATUS_OK:
                        self._store_batch(state, link, drained, drained_payload)
                    else:
                        failed.append(drained)
                heals += 1
                if heals > _MAX_HEALS:
                    raise SolverError(
                        f"cluster worker {link.address} keeps rejecting tasks: {payload}"
                    )
                self._heal(link, payload)
                with state.lock:
                    state.pending.extendleft(reversed(failed))
        except _LINK_FAILURES as error:
            self._discard_link(state, link, inflight, error)
            raise

    def _send_batch(self, state: _CallState, link: _WorkerLink, batch: List[int]) -> None:
        """One :data:`OP_SCORE_COLUMNS` request.

        The selector of a subset call crosses each connection once: the first
        task sent down a link carries the index array, every later task
        references it with :data:`SELECTOR_CACHED`.
        """
        fingerprint, _ = self._instance_payload()
        wire: List[ColumnTask] = []
        for interval_index in batch:
            task = state.tasks[interval_index]
            if state.selector is not None:
                if link.selection_token == state.token:
                    task = dataclasses.replace(task, selector=SELECTOR_CACHED)
                else:
                    link.selection_token = state.token
            wire.append(task)
        self._send(link, (OP_SCORE_COLUMNS, fingerprint, tuple(wire)))

    def _store_batch(
        self, state: _CallState, link: _WorkerLink, batch: List[int], payload
    ) -> None:
        """Write one batch reply's columns into the result matrix."""
        if not isinstance(payload, tuple) or len(payload) != len(batch):
            raise SolverError(
                f"cluster worker {link.address} answered a malformed batch "
                f"reply for a {len(batch)}-task batch"
            )
        for expected, (interval_index, scores) in zip(batch, payload):
            if interval_index != expected:  # pragma: no cover - defensive
                raise SolverError(
                    f"cluster worker {link.address} answered interval "
                    f"{interval_index} for task {expected}"
                )
            state.matrix[:, interval_index] = scores
        stat = self._link_stat(link.address)
        stat["tasks"] += len(batch)
        stat["batches"] += 1

    def _heal(self, link: _WorkerLink, payload) -> None:
        """Recover a link whose worker answered a well-known error payload.

        :data:`ERROR_UNKNOWN_INSTANCE` — evicted (or the worker restarted
        behind the connection): re-ship the matrices and re-attach the
        selector, the selection cache may be gone too.
        :data:`ERROR_UNKNOWN_SELECTION` — re-attach the selector on resend.
        Anything else is a real worker-side failure and raises.
        """
        fingerprint, _ = self._instance_payload()
        if payload == ERROR_UNKNOWN_INSTANCE:
            link.shipped.discard(fingerprint)
            link.selection_token = None
            self._ship_instance(link)
            return
        if payload == ERROR_UNKNOWN_SELECTION:
            link.selection_token = None
            return
        raise SolverError(f"cluster worker {link.address} failed: {payload}")

    def _discard_link(
        self,
        state: _CallState,
        link: _WorkerLink,
        inflight: "Deque[List[int]]",
        error: BaseException,
    ) -> None:
        """Close a dead link; re-split its in-flight batches across survivors.

        Whole-batch re-queueing would hand one survivor the dead worker's
        entire window; splitting each batch into per-survivor shares keeps
        the re-dispatch balanced.
        """
        link.close()
        self._note_failure(link.address)
        with state.lock:
            self._links = [other for other in self._links if other is not link]
            survivors = max(1, sum(1 for other in self._links if other.alive))
            for batch in reversed(inflight):
                share = max(1, -(-len(batch) // survivors))
                for start in range(0, len(batch), share):
                    state.pending.appendleft(batch[start : start + share])
        warnings.warn(
            f"cluster worker {link.address} died mid-run "
            f"({type(error).__name__}: {error}); "
            "re-dispatching its in-flight batches across the survivors",
            ClusterWorkerWarning,
            stacklevel=3,
        )

    def _local_matrix(self, selector: Optional[np.ndarray]) -> np.ndarray:
        """The serial in-process batch computation (the local fallback path).

        Explicitly the grandparent's implementation: ``super()`` would hit
        :class:`ProcessBackend`, which spins up a local pool — not wanted
        when a *configured* cluster is merely unreachable.
        """
        return BatchBackend.score_matrix(self, selector)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Per-link dispatch counters accumulated over this backend's lifetime.

        ``workers`` maps each contacted address to its counters (``tasks``,
        ``batches``, ``round_trips``, ``bytes_sent``, ``bytes_received``);
        the top level carries the totals plus ``local_columns`` (columns the
        client computed itself — ship overlap and failure fallback) and
        ``task_batch`` (the batch size of the most recent dispatch).  The
        counters are keyed by address, not link, so the snapshot stays valid
        after reconnects and :meth:`close`.
        """
        workers = {address: dict(stat) for address, stat in self._link_stats.items()}
        totals = {
            key: sum(stat[key] for stat in self._link_stats.values())
            for key in ("tasks", "batches", "round_trips", "bytes_sent", "bytes_received")
        }
        return {
            "workers": workers,
            "local_columns": self._local_columns,
            "task_batch": self._last_task_batch,
            **totals,
        }

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the worker connections (workers keep running) and any local pool."""
        if self._links is not None:
            for link in self._links:
                link.close()
            self._links = None
        super().close()


__all__ = ["ClusterBackend", "ClusterWorkerWarning"]
