"""Fleet health probing (the client side of ``repro cluster health``).

One configured worker address yields one row: is it reachable, did the
authentication handshake succeed, which protocol version does it speak, and —
when the :data:`~repro.core.distributed.protocol.OP_STATUS` op answers — its
uptime, resident instance count and served-work counters.  Probing is
read-only: :data:`~repro.core.distributed.protocol.OP_STATUS` reports the
cache without refreshing recency, so a health sweep never perturbs eviction
order or any running computation.

:func:`probe_worker` never raises on a *worker* problem (dead, wrong key,
wrong version): the failure is the row's content, so one broken worker cannot
abort a fleet sweep.  A malformed address, by contrast, is a client
configuration error and raises
:class:`~repro.core.errors.SolverError` immediately.
"""

from __future__ import annotations

import multiprocessing
from multiprocessing.connection import Client
from typing import Dict, List, Optional, Sequence

from repro.core.distributed.protocol import (
    OP_PING,
    OP_STATUS,
    PROTOCOL_VERSION,
    STATUS_OK,
    authkey_bytes,
    parse_worker_address,
)

#: Columns of a health row, in report order (the CLI table header).
HEALTH_COLUMNS = (
    "address",
    "reachable",
    "authenticated",
    "protocol",
    "healthy",
    "uptime_sec",
    "instances",
    "tasks_served",
    "bytes_served",
    "detail",
)


def probe_worker(
    address: str, *, cluster_key: Optional[str] = None
) -> Dict[str, object]:
    """One health row for one worker address (see :data:`HEALTH_COLUMNS`).

    ``healthy`` is True only when the worker is reachable, authenticated,
    speaks this client's protocol version and answered the status op; every
    failure mode short-circuits with the reason in ``detail``.
    """
    host, port = parse_worker_address(address)  # malformed address: raise now
    row: Dict[str, object] = {column: "" for column in HEALTH_COLUMNS}
    row.update(address=address, reachable=False, authenticated=False, healthy=False)
    try:
        connection = Client((host, port), authkey=authkey_bytes(cluster_key))
    except multiprocessing.AuthenticationError:
        row["reachable"] = True
        row["detail"] = "authentication rejected (cluster_key mismatch)"
        return row
    except (OSError, EOFError) as error:
        row["detail"] = f"unreachable: {error}"
        return row
    row["reachable"] = True
    row["authenticated"] = True
    try:
        connection.send((OP_PING,))
        status, payload = connection.recv()
        version = payload.get("version") if isinstance(payload, dict) else None
        row["protocol"] = version if version is not None else "?"
        if status != STATUS_OK or version != PROTOCOL_VERSION:
            row["detail"] = (
                f"protocol mismatch: worker speaks {version!r}, "
                f"this client speaks {PROTOCOL_VERSION}"
            )
            return row
        connection.send((OP_STATUS,))
        status, payload = connection.recv()
        if status != STATUS_OK or not isinstance(payload, dict):
            row["detail"] = f"status op failed: {payload!r}"
            return row
        row["uptime_sec"] = float(payload.get("uptime_sec", 0.0))
        row["instances"] = len(payload.get("instances", ()))
        row["tasks_served"] = int(payload.get("tasks_served", 0))
        row["bytes_served"] = int(payload.get("bytes_served", 0))
        row["healthy"] = True
        row["detail"] = "ok"
    except (OSError, EOFError) as error:
        row["detail"] = f"connection lost mid-probe: {error}"
    finally:
        try:
            connection.close()
        except OSError:  # pragma: no cover - already closed
            pass
    return row


def fleet_health(
    addresses: Sequence[str], *, cluster_key: Optional[str] = None
) -> List[Dict[str, object]]:
    """Probe every address in order; one row each (see :func:`probe_worker`)."""
    return [probe_worker(address, cluster_key=cluster_key) for address in addresses]


__all__ = ["HEALTH_COLUMNS", "probe_worker", "fleet_health"]
