"""Distributed ("cluster") execution — scoring sharded across machines.

This package scales the execution layer past one host.  The natural RPC unit
was established by the in-process ``process`` backend: one *per-interval
column task* — interval index plus two per-user scheduled-sum vectors in, one
score column out.  Here those units travel over TCP instead of a pool queue,
grouped into pipelined batches (protocol v2) so a dispatch round-trip is paid
per batch rather than per column:

* :mod:`~repro.core.distributed.protocol` — the wire protocol (operations,
  the :class:`~repro.core.distributed.protocol.ColumnTask` unit, instance
  fingerprints, addresses, authentication keys);
* :mod:`~repro.core.distributed.cache` — the worker-side LRU of static
  instance matrices (shipped once per fingerprint, the TCP analogue of the
  process backend's publish-once shared memory);
* :mod:`~repro.core.distributed.worker` — the worker server
  (``repro worker serve``) plus :func:`start_local_worker` for spawning
  localhost workers in tests/benchmarks/examples;
* :mod:`~repro.core.distributed.client` — the
  :class:`~repro.core.distributed.client.ClusterBackend` strategy, registered
  as ``"cluster"`` alongside ``scalar``/``batch``/``parallel``/``process``;
* :mod:`~repro.core.distributed.health` — read-only fleet probing behind
  ``repro cluster health`` (reachability, authentication, protocol version,
  uptime and served-work counters via the status op).

Select it like any other backend::

    ExecutionConfig(backend="cluster", workers_addr=("10.0.0.5:7077", ...))

Submodules are imported lazily (PEP 562): :mod:`repro.core.execution` imports
:mod:`~repro.core.distributed.protocol` for address/key resolution and then
registers :class:`ClusterBackend`, which itself subclasses a strategy from
:mod:`repro.core.execution` — the lazy indirection keeps that cycle open.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static-analysis aliases
    from repro.core.distributed.cache import DEFAULT_CACHE_CAPACITY, InstanceCache
    from repro.core.distributed.client import ClusterBackend, ClusterWorkerWarning
    from repro.core.distributed.health import (
        HEALTH_COLUMNS,
        fleet_health,
        probe_worker,
    )
    from repro.core.distributed.protocol import (
        DEFAULT_CLUSTER_KEY,
        MAX_TASK_BATCH,
        PIPELINE_DEPTH,
        PROTOCOL_VERSION,
        TASK_OVERSUBSCRIBE,
        ColumnTask,
        derive_task_batch,
        instance_fingerprint,
        parse_worker_address,
    )
    from repro.core.distributed.worker import (
        WorkerHandle,
        WorkerServer,
        serve,
        start_local_worker,
    )

_EXPORTS = {
    "DEFAULT_CACHE_CAPACITY": "repro.core.distributed.cache",
    "InstanceCache": "repro.core.distributed.cache",
    "ClusterBackend": "repro.core.distributed.client",
    "ClusterWorkerWarning": "repro.core.distributed.client",
    "HEALTH_COLUMNS": "repro.core.distributed.health",
    "fleet_health": "repro.core.distributed.health",
    "probe_worker": "repro.core.distributed.health",
    "DEFAULT_CLUSTER_KEY": "repro.core.distributed.protocol",
    "MAX_TASK_BATCH": "repro.core.distributed.protocol",
    "PIPELINE_DEPTH": "repro.core.distributed.protocol",
    "PROTOCOL_VERSION": "repro.core.distributed.protocol",
    "TASK_OVERSUBSCRIBE": "repro.core.distributed.protocol",
    "ColumnTask": "repro.core.distributed.protocol",
    "derive_task_batch": "repro.core.distributed.protocol",
    "instance_fingerprint": "repro.core.distributed.protocol",
    "parse_worker_address": "repro.core.distributed.protocol",
    "WorkerHandle": "repro.core.distributed.worker",
    "WorkerServer": "repro.core.distributed.worker",
    "serve": "repro.core.distributed.worker",
    "start_local_worker": "repro.core.distributed.worker",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    """Resolve the public names from their submodules on first access."""
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
