"""Wire protocol of the ``cluster`` execution backend.

The cluster backend and its workers talk over TCP through
:mod:`multiprocessing.connection` (stdlib ``Listener``/``Client``), which
provides message framing, pickling and HMAC challenge–response authentication
— there is no hand-rolled socket code and no new runtime dependency.  This
module defines everything both sides must agree on:

* the **operations** a client may request (:data:`OP_PING`,
  :data:`OP_STATUS`, :data:`OP_HAS_INSTANCE`, :data:`OP_PUT_INSTANCE`,
  :data:`OP_SCORE_COLUMN`, :data:`OP_SCORE_COLUMNS`, :data:`OP_SHUTDOWN`) and
  the two response statuses (:data:`STATUS_OK`, :data:`STATUS_ERROR`).
  :data:`OP_STATUS` is the introspection op behind ``repro cluster health``:
  its reply carries the worker's protocol version, pid, uptime, cached
  instance fingerprints and served-work counters (tasks and score bytes), so
  an operator can audit a fleet without disturbing its caches;
* the **task unit** (:class:`ColumnTask`): one per-interval score column —
  interval index plus the interval's two per-user scheduled-sum vectors —
  which is the same RPC unit the in-process ``process`` backend dispatches to
  its pool;
* the **batch sizing rule** (:func:`derive_task_batch`): protocol v2 moves
  tasks in batches of ``ceil(|T| / (lanes * TASK_OVERSUBSCRIBE))`` columns
  (clamped to :data:`MAX_TASK_BATCH`), and the client keeps
  :data:`PIPELINE_DEPTH` batches in flight per link, so the per-request wire
  latency is amortised over many columns and the workers prefetch instead of
  idling between round-trips;
* the **instance fingerprint** (:func:`instance_fingerprint` for shipped
  arrays, :func:`file_fingerprint` for a shared backing file): a content hash
  of the static instance data.  An instance ships to a worker **once per
  fingerprint** (mirroring the process backend's publish-once shared-memory
  model) and is cached worker-side, so repeated runs on the same instance —
  and every task of every run — stream only a few KB each;
* address (:func:`parse_worker_address`) and authkey
  (:func:`authkey_bytes`) handling.

Every request is a tuple ``(op, *payload)`` and every response a pair
``(status, payload)``.  Protocol v3 made :data:`OP_PUT_INSTANCE`'s payload a
kind-dispatched dict shaped by the instance's storage:

* ``{"kind": "arrays", "arrays": {...}}`` — the classic dense ship: the
  precomputed event-major µ / value·µ rows plus competing sums and σ;
* ``{"kind": "csr", "arrays": {...}}`` — the ``"sparse"`` storage ships the
  (much smaller) event-major CSR arrays plus per-event values, and the
  worker densifies event blocks on demand;
* ``{"kind": "file", "path": ...}`` — a memory-mapped instance whose backing
  NPZ is visible to the worker (same machine or shared filesystem) ships
  **only its path**: the worker maps the file in place and rebuilds the
  static arrays itself (zero-copy NPZ shipping).  A worker that cannot open
  the path answers :data:`ERROR_FILE_UNAVAILABLE` and the client falls back
  to shipping the CSR bytes under the same fingerprint.

Responses to :data:`OP_SCORE_COLUMN` carry ``(interval_index, scores)``;
responses to :data:`OP_SCORE_COLUMNS` carry a tuple of such pairs, one per
task of the batch, in task order.  The well-known error payload
:data:`ERROR_UNKNOWN_INSTANCE` tells the client the worker evicted (or never
had) the fingerprint, and the client re-ships the instance and retries — a
worker restart is therefore invisible apart from the one-off reshipping cost.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.errors import SolverError

#: Version tag exchanged in the :data:`OP_PING` handshake; bumped whenever the
#: message layout changes incompatibly.  v2 added batched dispatch
#: (:data:`OP_SCORE_COLUMNS`); v3 made :data:`OP_PUT_INSTANCE`'s payload
#: storage-aware (kind-dispatched dict: dense arrays, CSR arrays, or a
#: backing-file path).  A mismatched peer is rejected at connect time with a
#: clear error instead of failing mid-run on an unknown message shape.
PROTOCOL_VERSION: int = 3

#: Shared secret used for ``multiprocessing.connection``'s HMAC handshake when
#: :attr:`~repro.core.execution.ExecutionConfig.cluster_key` is left unset.
#: It gates accidental cross-talk between unrelated clusters, not hostile
#: networks — run real deployments with an explicit key on a trusted network.
DEFAULT_CLUSTER_KEY: str = "ses-repro-cluster"

#: Default bind host of a worker server (loopback: explicit opt-in for LAN use).
DEFAULT_WORKER_HOST: str = "127.0.0.1"

# -- operations ------------------------------------------------------------- #
OP_PING = "ping"
OP_STATUS = "status"
OP_HAS_INSTANCE = "has-instance"
OP_PUT_INSTANCE = "put-instance"
OP_SCORE_COLUMN = "score-column"
OP_SCORE_COLUMNS = "score-columns"
OP_SHUTDOWN = "shutdown"

# -- scheduling-service operations (``repro serve``) ------------------------ #
# The online scheduling service (:mod:`repro.service`) reuses this wire layer
# (framing, pickling, HMAC handshake, status pairs) with its own operations.
# A session is created by OP_LOAD_INSTANCE (payload: ``SESInstance.to_dict()``)
# and addressed by the returned session id in every later request.
OP_LOAD_INSTANCE = "load-instance"
OP_MUTATE = "mutate"
OP_RESOLVE = "resolve"
OP_GET_SCHEDULE = "get-schedule"
OP_SESSION_STATUS = "session-status"

# -- batched, pipelined dispatch (protocol v2) ------------------------------- #
#: Batches a lane aims to produce per dispatch lane when the batch size is
#: auto-derived: enough slack that a fast worker can steal share from a slow
#: one, without collapsing back into per-column round-trips.
TASK_OVERSUBSCRIBE: int = 4

#: Upper clamp of the auto-derived batch size: one reply carries at most this
#: many score columns, which bounds both the reply's memory footprint and the
#: share a dying worker can strand in flight.
MAX_TASK_BATCH: int = 64

#: Batches the client keeps in flight per link (send the next batch before
#: receiving the current reply): the worker's OS socket buffer holds the next
#: request while it computes, so it never idles on the wire between batches.
PIPELINE_DEPTH: int = 2

#: Seconds before the first reconnection attempt to a failed worker address;
#: doubled per consecutive failure up to :data:`RECONNECT_BACKOFF_MAX`.
RECONNECT_BACKOFF_BASE: float = 0.05

#: Ceiling of the reconnection backoff (seconds).
RECONNECT_BACKOFF_MAX: float = 0.5

#: Poll interval (seconds) of an idle dispatch lane waiting for a configured
#: address to leave backoff — the period of mid-run re-discovery.
REDISCOVERY_INTERVAL: float = 0.02

# -- response statuses ------------------------------------------------------ #
STATUS_OK = "ok"
STATUS_ERROR = "error"

#: Error payload meaning "this worker does not hold the fingerprint" — the
#: client responds by re-shipping the instance matrices and retrying.
ERROR_UNKNOWN_INSTANCE = "unknown-instance"

#: Error payload meaning "a task referenced its call's cached selection, but
#: this connection has no selection cached under that token" (e.g. the worker
#: restarted mid-call) — the client retries with the full selector attached.
ERROR_UNKNOWN_SELECTION = "unknown-selection"

#: Error payload meaning "this worker cannot open the backing file of a
#: ``{"kind": "file"}`` instance ship" (no shared filesystem, file deleted,
#: or compressed/corrupt members) — the client falls back to shipping the
#: instance bytes under the same fingerprint.
ERROR_FILE_UNAVAILABLE = "file-unavailable"

#: Sentinel selector meaning "use the selection cached under this task's
#: token": one subset ``score_matrix`` call attaches the index array to the
#: first task it sends down each connection and this marker to the rest, so
#: the selector crosses the wire once per (connection, call) instead of once
#: per interval.
SELECTOR_CACHED = "cached"


@dataclass(frozen=True)
class ColumnTask:
    """One unit of remote work: one interval's score column.

    The static instance matrices live worker-side (shipped once per
    fingerprint), so a task carries only the engine's *mutable* per-interval
    state — exactly the payload of the process backend's pool tasks:

    Attributes
    ----------
    interval_index:
        The column to score.
    token:
        Client-call token: every task of one ``score_matrix`` call shares it,
        so the worker materialises a subset selection once per call (cached by
        token) instead of once per task.
    selector:
        Event-row selection of the call: ``None`` (every event), the index
        array itself (the worker caches it under ``token``), or
        :data:`SELECTOR_CACHED` (use the selection already cached under
        ``token``; the worker answers :data:`ERROR_UNKNOWN_SELECTION` if it
        has none, and the client retries with the array attached).
    scheduled, scheduled_value:
        The interval's per-user scheduled-interest and value-weighted sums.
    utility:
        The interval's current utility (subtracted to turn utilities into
        assignment scores).
    step:
        Event-axis chunk size the worker must apply (the memory guard — and a
        bit-identity requirement: the serial batch path chunks with the same
        step).
    """

    interval_index: int
    token: int
    selector: object  # None | ndarray | SELECTOR_CACHED
    scheduled: np.ndarray
    scheduled_value: np.ndarray
    utility: float
    step: int


def derive_task_batch(
    num_intervals: int, lanes: int, task_batch: Optional[int] = None
) -> int:
    """Columns per :data:`OP_SCORE_COLUMNS` batch for one ``score_matrix`` call.

    The automatic size spreads the intervals over
    ``lanes * TASK_OVERSUBSCRIBE`` batches — enough batches that lanes keep
    re-balancing against each other (and against worker death), while each
    batch still amortises one round-trip over many columns:
    ``ceil(num_intervals / (lanes * TASK_OVERSUBSCRIBE))`` clamped to
    ``[1, MAX_TASK_BATCH]``.  An explicit ``task_batch`` (the
    :attr:`~repro.core.execution.ExecutionConfig.task_batch` knob) bypasses
    the derivation and is clamped only to ``[1, num_intervals]`` —
    ``task_batch=1`` reproduces v1's per-column dispatch unit.
    """
    num_intervals = max(1, int(num_intervals))
    if task_batch is not None:
        return max(1, min(int(task_batch), num_intervals))
    lanes = max(1, int(lanes))
    derived = -(-num_intervals // (lanes * TASK_OVERSUBSCRIBE))
    return max(1, min(derived, MAX_TASK_BATCH))


def parse_worker_address(address: str) -> Tuple[str, int]:
    """Split a ``"host:port"`` worker address, validating both parts."""
    if not isinstance(address, str) or address.count(":") != 1:
        raise SolverError(
            f"worker address must be a 'host:port' string, got {address!r}"
        )
    host, _, port_text = address.partition(":")
    host = host.strip()
    try:
        port = int(port_text)
    except ValueError:
        raise SolverError(f"invalid port in worker address {address!r}") from None
    if not host or not (0 < port < 65536):
        raise SolverError(f"invalid worker address {address!r}")
    return host, port


def format_worker_address(host: str, port: int) -> str:
    """The canonical ``"host:port"`` form of a worker address."""
    return f"{host}:{int(port)}"


def authkey_bytes(cluster_key: Optional[str]) -> bytes:
    """The connection authkey as bytes (``None`` selects the library default)."""
    return (cluster_key or DEFAULT_CLUSTER_KEY).encode("utf-8")


#: Bytes hashed per digest update when fingerprinting arrays or files — keeps
#: peak memory flat even when an array is a disk-backed memmap view.
FINGERPRINT_CHUNK_BYTES: int = 16 * 1024 * 1024


def instance_fingerprint(arrays: Dict[str, np.ndarray]) -> str:
    """Content hash of the static instance matrices (the ship-once key).

    Hashes every array's name, shape, dtype and raw bytes, so two engines
    built from equal instances share one fingerprint (and one worker-side
    cache entry), while any change to the matrices — even a single element —
    produces a different key.  The bytes are fed to the digest in
    :data:`FINGERPRINT_CHUNK_BYTES` chunks — the digest stream (and therefore
    every historical fingerprint) is unchanged, but a memory-mapped array is
    never materialised whole.
    """
    digest = hashlib.sha1()
    for name in sorted(arrays):
        array = arrays[name]
        if not array.flags["C_CONTIGUOUS"]:
            array = np.ascontiguousarray(array)
        digest.update(name.encode("utf-8"))
        digest.update(str(array.shape).encode("utf-8"))
        digest.update(array.dtype.str.encode("utf-8"))
        flat = array.reshape(-1)
        step = max(1, FINGERPRINT_CHUNK_BYTES // max(1, array.itemsize))
        for start in range(0, flat.size, step):
            digest.update(np.asarray(flat[start : start + step]).tobytes())
    return digest.hexdigest()


def file_fingerprint(path: str) -> str:
    """Content hash of an instance's backing file (the zero-copy ship key).

    Chunk-reads the file, so a multi-GB NPZ fingerprints in bounded memory.
    Prefixed ``"file:"`` to keep the key space disjoint from
    :func:`instance_fingerprint` — the same logical instance shipped as
    arrays and as a file must not collide on one worker-side cache entry
    built from different payload shapes.
    """
    digest = hashlib.sha1()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(FINGERPRINT_CHUNK_BYTES)
            if not chunk:
                break
            digest.update(chunk)
    return "file:" + digest.hexdigest()


__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_CLUSTER_KEY",
    "DEFAULT_WORKER_HOST",
    "OP_PING",
    "OP_STATUS",
    "OP_HAS_INSTANCE",
    "OP_PUT_INSTANCE",
    "OP_SCORE_COLUMN",
    "OP_SCORE_COLUMNS",
    "OP_SHUTDOWN",
    "OP_LOAD_INSTANCE",
    "OP_MUTATE",
    "OP_RESOLVE",
    "OP_GET_SCHEDULE",
    "OP_SESSION_STATUS",
    "STATUS_OK",
    "STATUS_ERROR",
    "ERROR_UNKNOWN_INSTANCE",
    "ERROR_UNKNOWN_SELECTION",
    "ERROR_FILE_UNAVAILABLE",
    "SELECTOR_CACHED",
    "FINGERPRINT_CHUNK_BYTES",
    "TASK_OVERSUBSCRIBE",
    "MAX_TASK_BATCH",
    "PIPELINE_DEPTH",
    "RECONNECT_BACKOFF_BASE",
    "RECONNECT_BACKOFF_MAX",
    "REDISCOVERY_INTERVAL",
    "ColumnTask",
    "derive_task_batch",
    "parse_worker_address",
    "format_worker_address",
    "authkey_bytes",
    "instance_fingerprint",
    "file_fingerprint",
]
