"""Worker-side cache of static instance matrices, keyed by fingerprint.

A cluster worker outlives any single client: one ``repro worker serve``
process typically serves many scheduler runs — and often many *instances* —
over its lifetime.  The :class:`InstanceCache` is what makes the wire protocol
cheap: the static matrices of an instance (tens of MB at paper scale) ship
**once per fingerprint** and every subsequent task against that instance
streams only its per-interval vectors.

The cache is a small thread-safe LRU (the worker serves each client
connection on its own thread).  Eviction is safe by construction: a client
whose fingerprint was evicted gets the well-known
:data:`~repro.core.distributed.protocol.ERROR_UNKNOWN_INSTANCE` reply and
re-ships — correctness never depends on residency.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.core.errors import SolverError

#: Instances a worker keeps resident by default.  Paper-scale matrices are a
#: few tens of MB each, so the default bounds the worker at well under a GB.
DEFAULT_CACHE_CAPACITY: int = 4


class InstanceCache:
    """Thread-safe LRU mapping instance fingerprints to their scoring records.

    A record is whatever :func:`~repro.core.distributed.worker.build_instance_record`
    rebuilt from the shipped payload — an event-row source plus the static
    per-interval matrices.
    """

    def __init__(self, capacity: int = DEFAULT_CACHE_CAPACITY) -> None:
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise SolverError(
                f"cache capacity must be a positive integer, got {capacity!r}"
            )
        self._capacity = capacity
        self._entries: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        """Maximum number of resident instances."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def get(self, fingerprint: str) -> Optional[Dict[str, object]]:
        """The record stored under ``fingerprint`` (refreshing its recency)."""
        with self._lock:
            record = self._entries.get(fingerprint)
            if record is not None:
                self._entries.move_to_end(fingerprint)
            return record

    def put(self, fingerprint: str, record: Dict[str, object]) -> None:
        """Store (or refresh) an instance, evicting the least recently used."""
        with self._lock:
            self._entries[fingerprint] = record
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every resident instance."""
        with self._lock:
            self._entries.clear()

    def fingerprints(self) -> List[str]:
        """The resident fingerprints, least recently used first.

        A snapshot taken under the lock — the status op reports it without
        touching recency, so health checks never perturb eviction order.
        """
        with self._lock:
            return list(self._entries)


__all__ = ["DEFAULT_CACHE_CAPACITY", "InstanceCache"]
