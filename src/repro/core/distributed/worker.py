"""The cluster worker server (``repro worker serve``).

A worker is one OS process that listens on a TCP address, caches the static
matrices of the instances it has been sent (see
:class:`~repro.core.distributed.cache.InstanceCache`) and answers
:data:`~repro.core.distributed.protocol.OP_SCORE_COLUMNS` batches (and the
single-column :data:`~repro.core.distributed.protocol.OP_SCORE_COLUMN`) by
running the library's single bit-identity-critical kernel
(:func:`~repro.core.execution.score_block_kernel`) over each interval column —
exactly what the in-process ``process`` backend's pool workers do, with a
socket in place of shared memory.

One worker computes one column at a time (the kernel is a NumPy pass that
holds the CPU); parallelism comes from running **several workers** — on one
machine or many — and letting the client stream tasks to all of them.  Each
client connection is served on its own thread, so a worker can also be shared
by several clients; the per-connection selection cache keeps a client's
subset-selected rows materialised once per ``score_matrix`` call.

Lifecycle is deterministic: :data:`~repro.core.distributed.protocol.OP_SHUTDOWN`
(or :meth:`WorkerServer.stop`) closes the listener and ends
:meth:`WorkerServer.serve_forever`; :func:`start_local_worker` spawns a worker
as a child process and returns a :class:`WorkerHandle` whose :meth:`~WorkerHandle.stop`
performs that handshake (used by the tests, the benchmark and
``examples/cluster_quickstart.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from multiprocessing.connection import Client, Connection, Listener
from typing import Dict, Optional

import numpy as np

from repro.core.distributed.cache import DEFAULT_CACHE_CAPACITY, InstanceCache
from repro.core.distributed.protocol import (
    DEFAULT_WORKER_HOST,
    ERROR_FILE_UNAVAILABLE,
    ERROR_UNKNOWN_INSTANCE,
    ERROR_UNKNOWN_SELECTION,
    OP_HAS_INSTANCE,
    OP_PING,
    OP_PUT_INSTANCE,
    OP_SCORE_COLUMN,
    OP_SCORE_COLUMNS,
    OP_SHUTDOWN,
    OP_STATUS,
    PROTOCOL_VERSION,
    SELECTOR_CACHED,
    STATUS_ERROR,
    STATUS_OK,
    ColumnTask,
    authkey_bytes,
    format_worker_address,
    parse_worker_address,
)
from repro.core.errors import DatasetError, InstanceValidationError, SolverError


class FileUnavailableError(SolverError):
    """A ``{"kind": "file"}`` instance ship named a file this worker cannot map.

    Answered as the well-known :data:`ERROR_FILE_UNAVAILABLE` payload so the
    client can fall back to shipping the instance bytes — it is a routing
    condition, not a run-killing failure.
    """


def build_instance_record(payload) -> Dict[str, object]:
    """Rebuild one shipped instance into a worker-side scoring record.

    The record is what the cache stores and the scoring ops consume:
    ``{"rows": EventRowSource, "comp": ndarray, "sigma": ndarray}``.
    Payload kinds (see the protocol module): ``"arrays"`` wraps the shipped
    dense event-major rows; ``"csr"`` rebuilds the event-major CSR store over
    the shipped arrays (structure already validated client-side); ``"file"``
    memory-maps the named backing NPZ and derives the static arrays from it
    with the **same** :func:`~repro.core.scoring.build_static_arrays` /
    :func:`~repro.core.scoring.build_event_rows` code the client's engine
    ran, so the columns it produces are bit-identical to a byte ship.
    """
    from repro.core.storage import DenseEventRows, SparseStore, StoreEventRows

    if not isinstance(payload, dict) or "kind" not in payload:
        raise SolverError(f"malformed instance payload: {type(payload).__name__}")
    kind = payload["kind"]
    if kind == "arrays":
        arrays = payload["arrays"]
        return {
            "rows": DenseEventRows(arrays["mu_rows"], arrays["value_mu_rows"]),
            "comp": arrays["comp"],
            "sigma": arrays["sigma"],
        }
    if kind == "csr":
        arrays = payload["arrays"]
        shape = tuple(int(extent) for extent in np.asarray(arrays["csr_shape"]))
        store = SparseStore(
            shape,
            arrays["csr_indptr"],
            arrays["csr_indices"],
            arrays["csr_data"],
            validate=False,
        )
        return {
            "rows": StoreEventRows(store, arrays["values"]),
            "comp": arrays["comp"],
            "sigma": arrays["sigma"],
        }
    if kind == "file":
        from repro.core.instance_io import load_npz
        from repro.core.scoring import build_event_rows, build_static_arrays

        try:
            instance = load_npz(payload["path"], mmap=True)
        except (OSError, DatasetError, InstanceValidationError) as error:
            raise FileUnavailableError(
                f"cannot map shipped instance file {payload['path']!r}: {error}"
            ) from error
        comp, sigma, values, _ = build_static_arrays(instance)
        return {
            "rows": build_event_rows(instance.interest.store, values),
            "comp": comp,
            "sigma": sigma,
        }
    raise SolverError(f"unknown instance payload kind {kind!r}")


def score_column(record: Dict[str, object], task: ColumnTask, rows) -> np.ndarray:
    """One interval's score column against a cached instance record.

    Runs the same :func:`~repro.core.execution.score_block_kernel` as the
    in-process batch path, chunked along the event axis with the task's step
    — sparse and memory-mapped row sources densify one block at a time — so
    the returned column is bit-identical to the serial batch computation
    regardless of which machine (or storage) produced it.
    """
    from repro.core.execution import score_block_kernel

    comp_column = record["comp"][:, task.interval_index]
    sigma_column = record["sigma"][:, task.interval_index]
    num_rows = rows.num_rows
    scores = np.empty(num_rows, dtype=np.float64)
    for start in range(0, num_rows, task.step):
        stop = min(start + task.step, num_rows)
        mu_rows, value_mu_rows = rows.block(start, stop)
        scores[start:stop] = score_block_kernel(
            mu_rows,
            value_mu_rows,
            comp_column,
            sigma_column,
            task.scheduled,
            task.scheduled_value,
            task.utility,
        )
    return scores


def _is_loopback(host: str) -> bool:
    """Whether a bind host stays on this machine (loopback / localhost)."""
    return host == "localhost" or host == "::1" or host.startswith("127.")


class WorkerServer:
    """One cluster worker: a TCP listener over an instance cache.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port; the actual address
        is available as :attr:`address` once constructed.
    cluster_key:
        Shared secret of the connection handshake (``None`` selects
        :data:`~repro.core.distributed.protocol.DEFAULT_CLUSTER_KEY`); clients
        must present the same key.  Binding a **non-loopback** host with the
        default key is refused: the key is public (it ships in this
        repository) and an authenticated connection deserialises pickles, so
        serving beyond loopback demands an explicit secret.
    capacity:
        Instances kept resident (see
        :class:`~repro.core.distributed.cache.InstanceCache`).
    """

    def __init__(
        self,
        host: str = DEFAULT_WORKER_HOST,
        port: int = 0,
        *,
        cluster_key: Optional[str] = None,
        capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        if cluster_key is None and not _is_loopback(host):
            raise SolverError(
                f"refusing to bind cluster worker to non-loopback {host!r} with "
                "the default (public) cluster key: authenticated peers can send "
                "arbitrary pickles — pass an explicit secret via cluster_key "
                "(CLI: --cluster-key) shared with your clients"
            )
        self._cache = InstanceCache(capacity)
        self._stop_event = threading.Event()
        # Served-work counters behind OP_STATUS.  time.monotonic (not
        # time.time): uptime is an elapsed-time metric, and the deterministic
        # layers ban wall-clock reads.
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._tasks_served = 0
        self._bytes_served = 0
        try:
            self._listener = Listener((host, int(port)), authkey=authkey_bytes(cluster_key))
        except OSError as error:
            raise SolverError(f"cannot bind cluster worker to {host}:{port}: {error}") from None
        bound_host, bound_port = self._listener.address  # type: ignore[misc]
        self._address = format_worker_address(bound_host, bound_port)

    @property
    def address(self) -> str:
        """The actual ``"host:port"`` the worker is listening on."""
        return self._address

    @property
    def cache(self) -> InstanceCache:
        """The worker's instance cache."""
        return self._cache

    def serve_forever(self) -> None:
        """Accept connections until a shutdown request (or :meth:`stop`)."""
        while not self._stop_event.is_set():
            try:
                connection = self._listener.accept()
            except (OSError, EOFError):
                # Listener closed by stop()/shutdown, or a client failed the
                # authentication handshake / dropped mid-accept — keep serving
                # unless we were asked to stop.
                if self._stop_event.is_set():
                    break
                continue
            except multiprocessing.AuthenticationError:
                continue
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,), daemon=True
            )
            thread.start()
        self.stop()

    def stop(self) -> None:
        """Stop accepting and close the listener (safe to call repeatedly)."""
        first_stop = not self._stop_event.is_set()
        self._stop_event.set()
        if first_stop:
            # Closing a listening socket does not interrupt a concurrent
            # blocking accept() on Linux — wake it with a throwaway
            # connection so serve_forever observes the stop flag.
            host, port = parse_worker_address(self._address)
            if host in ("0.0.0.0", "::"):  # wildcard binds are not connectable
                host = "127.0.0.1"
            try:
                with socket.create_connection((host, port), timeout=1.0):
                    pass
            except OSError:
                pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _serve_connection(self, connection: Connection) -> None:
        """Serve one client until it disconnects (one thread per connection)."""
        # Per-connection cache of the last subset selection: one score_matrix
        # call dispatches many tasks with the same token, so the fancy-indexed
        # row copy happens once per call instead of once per task.
        selection: Dict[str, object] = {"token": None, "rows": None}
        try:
            while not self._stop_event.is_set():
                try:
                    request = connection.recv()
                except (EOFError, OSError):
                    break
                try:
                    response, shutdown = self._dispatch(request, selection)
                except Exception as error:  # staticcheck: allow(broad-except) -- serialised into the STATUS_ERROR reply below: the client raises it as SolverError, and letting it kill this connection thread would hide it instead
                    response, shutdown = (
                        (STATUS_ERROR, f"{type(error).__name__}: {error}"),
                        False,
                    )
                try:
                    connection.send(response)
                except (OSError, BrokenPipeError):
                    break
                if shutdown:
                    self.stop()
                    break
        finally:
            connection.close()

    def _dispatch(self, request, selection: Dict[str, object]):
        """Handle one request tuple; returns ``(response, shutdown)``."""
        if not isinstance(request, tuple) or not request:
            return (STATUS_ERROR, f"malformed request: {request!r}"), False
        op = request[0]
        if op == OP_PING:
            payload = {"version": PROTOCOL_VERSION, "pid": os.getpid(),
                       "instances": len(self._cache)}
            return (STATUS_OK, payload), False
        if op == OP_STATUS:
            with self._lock:
                tasks_served, bytes_served = self._tasks_served, self._bytes_served
            payload = {
                "version": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "uptime_sec": time.monotonic() - self._started,
                "instances": self._cache.fingerprints(),
                "capacity": self._cache.capacity,
                "tasks_served": tasks_served,
                "bytes_served": bytes_served,
            }
            return (STATUS_OK, payload), False
        if op == OP_HAS_INSTANCE:
            (fingerprint,) = request[1:]
            return (STATUS_OK, fingerprint in self._cache), False
        if op == OP_PUT_INSTANCE:
            fingerprint, payload = request[1:]
            try:
                record = build_instance_record(payload)
            except FileUnavailableError:
                # A routing condition, not a failure: the client falls back
                # to shipping the instance bytes under the same fingerprint.
                return (STATUS_ERROR, ERROR_FILE_UNAVAILABLE), False
            self._cache.put(fingerprint, record)
            return (STATUS_OK, True), False
        if op == OP_SCORE_COLUMN:
            fingerprint, task = request[1:]
            record = self._cache.get(fingerprint)
            if record is None:
                return (STATUS_ERROR, ERROR_UNKNOWN_INSTANCE), False
            rows = self._selected_rows(record, task, selection)
            if rows is None:
                return (STATUS_ERROR, ERROR_UNKNOWN_SELECTION), False
            scores = score_column(record, task, rows)
            self._count_served(1, scores.nbytes)
            return (STATUS_OK, (task.interval_index, scores)), False
        if op == OP_SCORE_COLUMNS:
            # Protocol v2: one request carries a whole batch of column tasks
            # and one reply carries every column, in task order — same kernel,
            # same chunking, one round-trip.  The batch fails as a unit (the
            # client re-sends it after healing), so the instance/selection
            # checks run before any column is computed.
            fingerprint, batch = request[1:]
            record = self._cache.get(fingerprint)
            if record is None:
                return (STATUS_ERROR, ERROR_UNKNOWN_INSTANCE), False
            columns = []
            for task in batch:
                rows = self._selected_rows(record, task, selection)
                if rows is None:
                    return (STATUS_ERROR, ERROR_UNKNOWN_SELECTION), False
                columns.append((task.interval_index, score_column(record, task, rows)))
            self._count_served(
                len(columns), sum(scores.nbytes for _, scores in columns)
            )
            return (STATUS_OK, tuple(columns)), False
        if op == OP_SHUTDOWN:
            return (STATUS_OK, True), True
        return (STATUS_ERROR, f"unknown operation {op!r}"), False

    def _count_served(self, tasks: int, nbytes: int) -> None:
        """Record served work (connection threads share the counters)."""
        with self._lock:
            self._tasks_served += tasks
            self._bytes_served += nbytes

    @staticmethod
    def _selected_rows(
        record: Dict[str, object], task: ColumnTask, selection: Dict[str, object]
    ) -> Optional[object]:
        """The (possibly subset-selected) event-row source of one task.

        A task may reference its call's cached selection instead of carrying
        the index array (:data:`SELECTOR_CACHED` — the selector crosses the
        wire once per connection per call); ``None`` is returned when that
        cache entry is missing (worker restarted mid-call) so the dispatcher
        can answer :data:`ERROR_UNKNOWN_SELECTION` and the client retries
        with the array attached.
        """
        rows = record["rows"]
        if task.selector is None:
            return rows
        if isinstance(task.selector, str) and task.selector == SELECTOR_CACHED:
            if selection["token"] != task.token:
                return None
            return selection["rows"]
        if selection["token"] != task.token:
            selection["token"] = task.token
            selection["rows"] = rows.select(task.selector)  # type: ignore[attr-defined]
        return selection["rows"]


def serve(
    host: str = DEFAULT_WORKER_HOST,
    port: int = 0,
    *,
    cluster_key: Optional[str] = None,
    capacity: int = DEFAULT_CACHE_CAPACITY,
    announce=None,
) -> str:
    """Run a worker server in this process until it is shut down.

    ``announce`` (when given) is called with the bound ``"host:port"`` before
    serving — the CLI prints it so scripts can scrape the ephemeral port.
    Returns the address after the server stops.
    """
    server = WorkerServer(host, port, cluster_key=cluster_key, capacity=capacity)
    if announce is not None:
        announce(server.address)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        server.stop()
    return server.address


def _local_worker_main(host, port, cluster_key, capacity, channel) -> None:
    """Child-process entry point of :func:`start_local_worker`."""
    server = WorkerServer(host, port, cluster_key=cluster_key, capacity=capacity)
    channel.send(server.address)
    channel.close()
    server.serve_forever()


class WorkerHandle:
    """A locally-spawned worker process and its address.

    Returned by :func:`start_local_worker`; :meth:`stop` performs the
    deterministic shutdown handshake (falling back to ``terminate`` if the
    worker does not comply), :meth:`kill` hard-kills the process — the tests
    use it to exercise the client's failure re-dispatch.
    """

    def __init__(self, process: multiprocessing.Process, address: str,
                 cluster_key: Optional[str]) -> None:
        self.process = process
        self.address = address
        self._cluster_key = cluster_key

    def stop(self, timeout: float = 5.0) -> None:
        """Ask the worker to shut down; terminate it if it does not."""
        if self.process.is_alive():
            try:
                host, port = parse_worker_address(self.address)
                connection = Client((host, port), authkey=authkey_bytes(self._cluster_key))
                try:
                    connection.send((OP_SHUTDOWN,))
                    connection.recv()
                finally:
                    connection.close()
            except (OSError, EOFError, multiprocessing.AuthenticationError):
                pass
            self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover - unresponsive worker
            self.process.terminate()
            self.process.join(timeout)

    def kill(self, timeout: float = 5.0) -> None:
        """Hard-kill the worker (simulates a machine/process failure).

        SIGKILL, not SIGTERM: the point is abrupt death with no Python
        cleanup — no flushed buffers, no closed sockets — so the failure
        tests exercise what a powered-off machine looks like to the client.
        """
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout)


def start_local_worker(
    host: str = DEFAULT_WORKER_HOST,
    port: int = 0,
    *,
    cluster_key: Optional[str] = None,
    capacity: int = DEFAULT_CACHE_CAPACITY,
) -> WorkerHandle:
    """Spawn a worker server as a child process and wait for its address.

    The child is started with the ``spawn`` method (safe regardless of this
    process's threads) and binds before the call returns, so the returned
    :class:`WorkerHandle.address` is immediately connectable.
    """
    context = multiprocessing.get_context("spawn")
    parent_end, child_end = context.Pipe(duplex=False)
    process = context.Process(
        target=_local_worker_main,
        args=(host, port, cluster_key, capacity, child_end),
        daemon=True,
    )
    process.start()
    child_end.close()
    try:
        if not parent_end.poll(30.0):
            raise SolverError("cluster worker did not report its address within 30s")
        address = parent_end.recv()
    except (EOFError, OSError):
        process.terminate()
        raise SolverError("cluster worker died before binding its address") from None
    finally:
        parent_end.close()
    return WorkerHandle(process, address, cluster_key)


__all__ = [
    "WorkerServer",
    "WorkerHandle",
    "FileUnavailableError",
    "build_instance_record",
    "score_column",
    "serve",
    "start_local_worker",
]
