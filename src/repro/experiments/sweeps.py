"""The §4.2.8 summary sweep: utility-equality statistics and speed-up factors.

The paper summarises its evaluation with a handful of aggregate claims:

* INC always returns the same solution as ALG; HOR-I the same as HOR.
* HOR matches ALG's utility in more than 70 % of the experiments; in the rest
  the average difference is ≈ 0.008 % and the maximum 1.3 %.
* The contributed algorithms perform about half of ALG's computations and are
  2–5× faster.

:func:`summary_sweep` reruns a grid of configurations (datasets × several
``k``/|T| combinations) and computes the same aggregates, so the reproduction
can be checked against these claims directly (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.execution import ExecutionConfig, merge_legacy_execution
from repro.experiments.figures import ALL_DATASETS, ExperimentScale, get_scale
from repro.experiments.harness import run_experiment_point
from repro.experiments.metrics import MetricRecord, group_records


@dataclass
class SummaryStatistics:
    """Aggregates over a sweep of experiment points (the §4.2.8 claims)."""

    num_points: int = 0
    hor_equal_utility_fraction: float = 0.0
    hor_mean_relative_gap: float = 0.0
    hor_max_relative_gap: float = 0.0
    inc_always_equal_to_alg: bool = True
    hor_i_always_equal_to_hor: bool = True
    mean_computation_ratio: Dict[str, float] = field(default_factory=dict)
    mean_time_speedup: Dict[str, float] = field(default_factory=dict)
    records: List[MetricRecord] = field(default_factory=list)

    def as_rows(self) -> List[Dict[str, object]]:
        """Flatten into table rows for the report printer."""
        rows: List[Dict[str, object]] = [
            {"statistic": "experiment points", "value": self.num_points},
            {
                "statistic": "HOR == ALG utility (fraction of points)",
                "value": round(self.hor_equal_utility_fraction, 4),
            },
            {
                "statistic": "HOR vs ALG mean relative utility gap (%)",
                "value": round(100.0 * self.hor_mean_relative_gap, 4),
            },
            {
                "statistic": "HOR vs ALG max relative utility gap (%)",
                "value": round(100.0 * self.hor_max_relative_gap, 4),
            },
            {"statistic": "INC utility == ALG utility everywhere", "value": self.inc_always_equal_to_alg},
            {"statistic": "HOR-I utility == HOR utility everywhere", "value": self.hor_i_always_equal_to_hor},
        ]
        for name, value in sorted(self.mean_computation_ratio.items()):
            rows.append(
                {"statistic": f"{name} / ALG score computations (mean ratio)", "value": round(value, 4)}
            )
        for name, value in sorted(self.mean_time_speedup.items()):
            rows.append({"statistic": f"ALG / {name} wall time (mean speed-up)", "value": round(value, 4)})
        return rows


def summary_sweep(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ALL_DATASETS,
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
    utility_tolerance: float = 1e-9,
) -> SummaryStatistics:
    """Run the summary grid and compute the §4.2.8 aggregates.

    The grid crosses the datasets with three (k, |T|) regimes: k < |T| (the
    Table 1 default), k ≈ |T| and k > |T| — the regimes in which the paper's
    algorithms behave differently.  ``storage`` converts every sweep instance
    to the named interest-matrix storage first (results are storage-invariant,
    so the aggregates are unchanged).
    """
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="summary_sweep"
    )
    resolved = get_scale(scale)
    k = resolved.default_k
    regimes: List[Tuple[str, int, int]] = [
        ("k<|T|", k, resolved.default_intervals),
        ("k=|T|", k, k),
        ("k>|T|", 2 * k, resolved.default_intervals),
    ]

    records: List[MetricRecord] = []
    for dataset in datasets:
        for label, point_k, num_intervals in regimes:
            overrides = {
                "num_users": resolved.num_users,
                "num_events": 3 * k,
                "num_intervals": num_intervals,
                "num_locations": resolved.num_locations,
                "competing_per_interval_range": resolved.competing_range,
                "available_resources": resolved.available_resources,
                "required_resources_range": resolved.required_resources_range,
                "seed": resolved.seed,
            }
            records.extend(
                run_experiment_point(
                    dataset,
                    k=point_k,
                    experiment_id="summary",
                    dataset_overrides=overrides,
                    algorithms=("ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"),
                    params={"regime": label, "num_intervals": num_intervals},
                    seed=seed,
                    execution=execution,
                    storage=storage,
                )
            )
    return summarize_records(records, utility_tolerance=utility_tolerance)


def summarize_records(
    records: Sequence[MetricRecord], *, utility_tolerance: float = 1e-9
) -> SummaryStatistics:
    """Compute the §4.2.8 aggregates from an arbitrary collection of records."""
    stats = SummaryStatistics(records=list(records))
    grouped = group_records(
        records,
        key=lambda record: (record.dataset, record.k, tuple(sorted(record.params.items()))),
    )

    gaps: List[float] = []
    equal_points = 0
    considered_points = 0
    computation_ratios: Dict[str, List[float]] = {}
    speedups: Dict[str, List[float]] = {}

    for members in grouped.values():
        by_algorithm = {member.algorithm: member for member in members}
        alg = by_algorithm.get("ALG")
        if alg is None:
            continue
        considered_points += 1

        hor = by_algorithm.get("HOR")
        if hor is not None:
            scale_value = max(abs(alg.utility), 1e-12)
            gap = abs(alg.utility - hor.utility) / scale_value
            gaps.append(gap)
            if gap <= utility_tolerance:
                equal_points += 1

        inc = by_algorithm.get("INC")
        if inc is not None and not math.isclose(
            inc.utility, alg.utility, rel_tol=utility_tolerance, abs_tol=1e-9
        ):
            stats.inc_always_equal_to_alg = False

        hor_i = by_algorithm.get("HOR-I")
        if hor is not None and hor_i is not None and not math.isclose(
            hor_i.utility, hor.utility, rel_tol=utility_tolerance, abs_tol=1e-9
        ):
            stats.hor_i_always_equal_to_hor = False

        for name in ("INC", "HOR", "HOR-I"):
            member = by_algorithm.get(name)
            if member is None:
                continue
            if alg.score_computations > 0:
                computation_ratios.setdefault(name, []).append(
                    member.score_computations / alg.score_computations
                )
            if member.time_sec > 0:
                speedups.setdefault(name, []).append(alg.time_sec / member.time_sec)

    stats.num_points = considered_points
    if gaps:
        stats.hor_equal_utility_fraction = equal_points / len(gaps)
        stats.hor_mean_relative_gap = sum(gaps) / len(gaps)
        stats.hor_max_relative_gap = max(gaps)
    stats.mean_computation_ratio = {
        name: sum(values) / len(values) for name, values in computation_ratios.items()
    }
    stats.mean_time_speedup = {name: sum(values) / len(values) for name, values in speedups.items()}
    return stats
