"""Experiment harness reproducing the paper's evaluation (§4).

* :mod:`repro.experiments.metrics` — the per-run metric record (utility,
  time, score computations, assignments examined) and aggregation helpers.
* :mod:`repro.experiments.harness` — run a set of algorithms on one instance
  and collect records.
* :mod:`repro.experiments.figures` — one function per paper figure
  (Fig. 5–10), each sweeping the corresponding parameter and returning a
  :class:`~repro.experiments.figures.FigureResult`.
* :mod:`repro.experiments.sweeps` — the §4.2.8 summary sweep (utility-equality
  statistics and speed-up factors across many configurations).
* :mod:`repro.experiments.report` — ASCII tables for results.
"""

from repro.experiments.metrics import MetricRecord, records_to_rows, group_records
from repro.experiments.harness import run_algorithms, run_experiment_point
from repro.experiments.figures import (
    EXPERIMENTS,
    FigureResult,
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments.report import format_table, format_figure_result
from repro.experiments.sweeps import summary_sweep, SummaryStatistics

__all__ = [
    "MetricRecord",
    "records_to_rows",
    "group_records",
    "run_algorithms",
    "run_experiment_point",
    "EXPERIMENTS",
    "FigureResult",
    "available_experiments",
    "get_experiment",
    "run_experiment",
    "format_table",
    "format_figure_result",
    "summary_sweep",
    "SummaryStatistics",
]
