"""Metric records collected by the experiment harness.

Every (algorithm, instance, parameter point) run produces one
:class:`MetricRecord` carrying the three quantities the paper reports —
utility, wall-clock time and number of score computations — plus the
search-space counter of Fig. 10b and enough provenance (dataset, parameters,
seed) to group and pivot records into the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms.base import SchedulerResult


@dataclass
class MetricRecord:
    """One algorithm run within one experiment point."""

    experiment_id: str
    dataset: str
    algorithm: str
    k: int
    utility: float
    net_utility: float
    num_scheduled: int
    time_sec: float
    score_computations: int
    user_computations: int
    assignments_examined: int
    params: Dict[str, object] = field(default_factory=dict)
    seed: Optional[int] = None

    @classmethod
    def from_result(
        cls,
        result: SchedulerResult,
        *,
        experiment_id: str,
        dataset: str,
        params: Optional[Mapping[str, object]] = None,
        seed: Optional[int] = None,
    ) -> "MetricRecord":
        """Build a record from a :class:`~repro.algorithms.base.SchedulerResult`.

        The scoring backend the run used is recorded under
        ``params["backend"]``, the instance's interest-matrix storage under
        ``params["storage"]`` and the resolved worker count under
        ``params["plan"]`` and ``params["workers"]`` (unless the caller
        already set them), so rows of different backends / storages / scoring
        plans / fan-outs can be grouped and compared in figure tables.  A distributed run additionally records its remote worker
        addresses under ``params["cluster"]`` and its wire batch size under
        ``params["task_batch"]`` (``"auto"`` when the size was auto-derived;
        in-process runs omit both keys).
        """
        merged_params = dict(params or {})
        merged_params.setdefault("backend", result.backend)
        merged_params.setdefault("storage", result.storage)
        merged_params.setdefault("plan", result.plan)
        merged_params.setdefault("workers", result.workers)
        if result.cluster:
            merged_params.setdefault("cluster", ",".join(result.cluster))
            merged_params.setdefault(
                "task_batch",
                result.task_batch if result.task_batch is not None else "auto",
            )
        return cls(
            experiment_id=experiment_id,
            dataset=dataset,
            algorithm=result.algorithm,
            k=result.k,
            utility=result.utility,
            net_utility=result.net_utility,
            num_scheduled=result.num_scheduled,
            time_sec=result.elapsed_seconds,
            score_computations=result.score_computations,
            user_computations=result.user_computations,
            assignments_examined=result.assignments_examined,
            params=merged_params,
            seed=seed,
        )

    def value(self, metric: str) -> float:
        """Read one metric by name (``"utility"``, ``"time_sec"``, …)."""
        if metric in ("utility", "net_utility", "time_sec"):
            return float(getattr(self, metric))
        if metric in (
            "score_computations",
            "user_computations",
            "assignments_examined",
            "num_scheduled",
            "k",
        ):
            return float(getattr(self, metric))
        if metric in self.params:
            return float(self.params[metric])  # type: ignore[arg-type]
        raise KeyError(f"unknown metric {metric!r}")

    def to_row(self) -> Dict[str, object]:
        """Flatten the record (params prefixed with ``param.``) for table output."""
        row: Dict[str, object] = {
            "experiment": self.experiment_id,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "k": self.k,
            "scheduled": self.num_scheduled,
            "utility": round(self.utility, 4),
            "time_sec": round(self.time_sec, 4),
            "score_computations": self.score_computations,
            "user_computations": self.user_computations,
            "assignments_examined": self.assignments_examined,
        }
        for key, value in self.params.items():
            row[f"param.{key}"] = value
        return row


def records_to_rows(records: Iterable[MetricRecord]) -> List[Dict[str, object]]:
    """Flatten a collection of records into table rows."""
    return [record.to_row() for record in records]


def group_records(
    records: Iterable[MetricRecord],
    key: Callable[[MetricRecord], Tuple],
) -> Dict[Tuple, List[MetricRecord]]:
    """Group records by an arbitrary key function (insertion-ordered)."""
    grouped: Dict[Tuple, List[MetricRecord]] = {}
    for record in records:
        grouped.setdefault(key(record), []).append(record)
    return grouped


def series_by_algorithm(
    records: Sequence[MetricRecord],
    *,
    x_param: str,
    metric: str,
) -> Dict[str, List[Tuple[float, float]]]:
    """Pivot records into per-algorithm ``(x, y)`` series (one paper plot line each)."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for record in records:
        x_value = record.value(x_param) if x_param != "k" else float(record.k)
        series.setdefault(record.algorithm, []).append((x_value, record.value(metric)))
    for points in series.values():
        points.sort(key=lambda point: point[0])
    return series


def speedup(
    records: Sequence[MetricRecord],
    *,
    baseline: str = "ALG",
    target: str,
    metric: str = "time_sec",
) -> List[float]:
    """Per-experiment-point ratios ``baseline_metric / target_metric`` (e.g. speed-ups)."""
    grouped = group_records(
        records, key=lambda record: (record.dataset, record.k, tuple(sorted(record.params.items())))
    )
    ratios: List[float] = []
    for members in grouped.values():
        baseline_value = next(
            (member.value(metric) for member in members if member.algorithm == baseline), None
        )
        target_value = next(
            (member.value(metric) for member in members if member.algorithm == target), None
        )
        if baseline_value is None or target_value is None or target_value <= 0:
            continue
        ratios.append(baseline_value / target_value)
    return ratios
