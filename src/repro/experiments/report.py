"""Plain-text reporting of experiment results.

The benchmark harness prints the same series the paper plots; since the
repository is plotting-library-free, the output is fixed-width ASCII tables —
one row per (x-value, algorithm) with the utility / computations / time
columns — which is enough to eyeball the shapes described in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.metrics import MetricRecord


def format_table(
    rows: Sequence[Mapping[str, object]],
    *,
    columns: Optional[Sequence[str]] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render dict rows as a fixed-width ASCII table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[index]) for line in rendered))
        for index, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(widths[index]) for index, column in enumerate(columns))
    separator = "  ".join("-" * widths[index] for index in range(len(columns)))
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
        for line in rendered
    ]
    return "\n".join([header, separator, *body])


def format_records(
    records: Iterable[MetricRecord],
    *,
    columns: Optional[Sequence[str]] = None,
) -> str:
    """Render metric records as a table (default column set mirrors the paper)."""
    default_columns = [
        "dataset",
        "algorithm",
        "k",
        "utility",
        "score_computations",
        "user_computations",
        "time_sec",
        "assignments_examined",
    ]
    rows = [record.to_row() for record in records]
    return format_table(rows, columns=columns or default_columns)


def format_series(
    series: Mapping[str, List[tuple]],
    *,
    x_label: str,
    metric: str,
) -> str:
    """Render per-algorithm ``(x, y)`` series as one table (x values as columns)."""
    x_values: List[float] = sorted({x for points in series.values() for x, _ in points})
    rows: List[Dict[str, object]] = []
    for algorithm in sorted(series):
        row: Dict[str, object] = {"algorithm": algorithm, "metric": metric}
        lookup = dict(series[algorithm])
        for x_value in x_values:
            label = f"{x_label}={x_value:g}"
            row[label] = lookup.get(x_value, "")
        rows.append(row)
    return format_table(rows)


def format_figure_result(figure_result) -> str:
    """Render a :class:`~repro.experiments.figures.FigureResult` like the paper's figure.

    One table per metric, mirroring the sub-plots (utility / computations /
    time) of the corresponding figure.
    """
    blocks: List[str] = [f"== {figure_result.figure_id}: {figure_result.title} =="]
    for metric in figure_result.metrics:
        blocks.append(f"-- {metric} --")
        for dataset in figure_result.datasets:
            series = figure_result.series(metric=metric, dataset=dataset)
            if not series:
                continue
            blocks.append(f"[{dataset}]")
            blocks.append(format_series(series, x_label=figure_result.x_param, metric=metric))
    return "\n".join(blocks)
