"""One function per figure of the paper's experimental section (§4.2).

Every function sweeps the figure's x-axis parameter, builds the appropriate
dataset instances, runs the algorithms and returns a :class:`FigureResult`
containing one :class:`~repro.experiments.metrics.MetricRecord` per
(x-value, dataset, algorithm).  The benchmark harness prints these as tables;
``docs/PAPER_MAPPING.md`` maps each figure to its entry point and benchmark.

The paper ran with up to one million users and ``k`` up to 500 on a C++
implementation; the reproduction keeps every *ratio* of Table 1 (``|E| = 3k``,
``|T| = 3k/2``, competing events per interval, resources) but scales the
absolute sizes down (see :class:`ExperimentScale`), which preserves the
relative behaviour of the algorithms — the quantity the paper's figures are
about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.algorithms.registry import PAPER_METHODS
from repro.core.errors import ExperimentError
from repro.core.execution import ExecutionConfig, merge_legacy_execution
from repro.experiments.harness import run_experiment_point
from repro.experiments.metrics import MetricRecord, series_by_algorithm

#: Dataset line-up of the paper's figures.
ALL_DATASETS = ("Meetup", "Concerts", "Unf", "Zip")


@dataclass(frozen=True)
class ExperimentScale:
    """Absolute sizes used when regenerating the figures.

    ``default_k`` plays the role of the paper's k = 100; every derived
    quantity (|E| = 3k, |T| = 3k/2, …) is computed from it exactly as in
    Table 1.
    """

    name: str
    num_users: int
    default_k: int
    k_values: Tuple[int, ...]
    intervals_values: Tuple[int, ...]
    events_values: Tuple[int, ...]
    users_values: Tuple[int, ...]
    locations_values: Tuple[int, ...]
    competing_range: Tuple[int, int] = (1, 16)
    num_locations: int = 12
    available_resources: float = 30.0
    required_resources_range: Tuple[float, float] = (1.0, 15.0)
    seed: int = 7

    @property
    def default_events(self) -> int:
        """|E| at the default point (3k, as in Table 1)."""
        return 3 * self.default_k

    @property
    def default_intervals(self) -> int:
        """|T| at the default point (3k/2, as in Table 1)."""
        return max(1, (3 * self.default_k) // 2)


SCALES: Dict[str, ExperimentScale] = {
    # Used by the unit/integration tests: seconds, not minutes.
    "tiny": ExperimentScale(
        name="tiny",
        num_users=120,
        default_k=6,
        k_values=(4, 6, 10),
        intervals_values=(3, 6, 9, 12),
        events_values=(6, 18, 30),
        users_values=(60, 120, 240),
        locations_values=(2, 4, 8),
        competing_range=(1, 4),
        num_locations=4,
        available_resources=30.0,
        required_resources_range=(1.0, 15.0),
    ),
    # Used by the benchmark harness: the documented reproduction scale.
    "default": ExperimentScale(
        name="default",
        num_users=1200,
        default_k=24,
        k_values=(12, 17, 24, 48, 96),
        intervals_values=(5, 12, 24, 36, 48, 72),
        events_values=(24, 72, 120, 240),
        users_values=(500, 2000, 5000),
        locations_values=(3, 6, 12, 24, 34),
        competing_range=(1, 16),
        num_locations=12,
        available_resources=30.0,
        required_resources_range=(1.0, 15.0),
    ),
    # A middle ground for quick interactive runs.
    "small": ExperimentScale(
        name="small",
        num_users=400,
        default_k=12,
        k_values=(6, 9, 12, 24, 48),
        intervals_values=(4, 9, 12, 18, 24, 36),
        events_values=(12, 36, 60, 120),
        users_values=(200, 800, 2000),
        locations_values=(2, 4, 8, 12, 17),
        competing_range=(1, 8),
        num_locations=8,
        available_resources=30.0,
        required_resources_range=(1.0, 15.0),
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale given by name or passed through as an object."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError:
        raise ExperimentError(
            f"unknown scale {scale!r}; known: {', '.join(sorted(SCALES))}"
        ) from None


@dataclass
class FigureResult:
    """Records and metadata of one regenerated figure."""

    figure_id: str
    title: str
    x_param: str
    metrics: Tuple[str, ...]
    datasets: Tuple[str, ...]
    scale: str
    records: List[MetricRecord] = field(default_factory=list)
    notes: Dict[str, object] = field(default_factory=dict)

    def series(self, *, metric: str, dataset: str) -> Dict[str, List[Tuple[float, float]]]:
        """Per-algorithm ``(x, y)`` series for one metric and dataset."""
        filtered = [record for record in self.records if record.dataset == dataset]
        return series_by_algorithm(filtered, x_param=self.x_param, metric=metric)

    def algorithms(self) -> List[str]:
        """Algorithms appearing in the records."""
        return sorted({record.algorithm for record in self.records})

    def x_values(self) -> List[float]:
        """Distinct x-axis values present in the records."""
        values = {
            record.value(self.x_param) if self.x_param != "k" else float(record.k)
            for record in self.records
        }
        return sorted(values)


def _dataset_overrides(
    scale: ExperimentScale,
    *,
    num_events: int,
    num_intervals: int,
    num_users: Optional[int] = None,
    num_locations: Optional[int] = None,
    competing_range: Optional[Tuple[int, int]] = None,
    available_resources: Optional[float] = None,
    seed: Optional[int] = None,
) -> Dict[str, object]:
    """Assemble the dataset-builder keyword arguments for one sweep point."""
    return {
        "num_users": num_users if num_users is not None else scale.num_users,
        "num_events": num_events,
        "num_intervals": num_intervals,
        "num_locations": num_locations if num_locations is not None else scale.num_locations,
        "competing_per_interval_range": competing_range
        if competing_range is not None
        else scale.competing_range,
        "available_resources": available_resources
        if available_resources is not None
        else scale.available_resources,
        "required_resources_range": scale.required_resources_range,
        "seed": seed if seed is not None else scale.seed,
    }


# --------------------------------------------------------------------------- #
# Figure 5 — varying the number of scheduled events k
# --------------------------------------------------------------------------- #
def fig5(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ALL_DATASETS,
    algorithms: Sequence[str] = tuple(PAPER_METHODS),
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """Fig. 5: utility, computations and time as k grows.

    As in the paper, the other parameters stay at their Table 1 defaults
    (|E| = 3·k_default, |T| = 3·k_default/2), so the largest k values exceed
    |T| — the regime where HOR-I starts to differ from HOR and where INC
    catches up with HOR.  A k larger than |E| simply schedules every candidate
    event (the paper's k = 500 with |E| = 300 behaves the same way).
    """
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="fig5"
    )
    resolved = get_scale(scale)
    result = FigureResult(
        figure_id="fig5",
        title="Varying the number of scheduled events k",
        x_param="k",
        metrics=("utility", "user_computations", "time_sec"),
        datasets=tuple(datasets),
        scale=resolved.name,
    )
    for dataset in datasets:
        for k in resolved.k_values:
            num_events = resolved.default_events
            num_intervals = resolved.default_intervals
            overrides = _dataset_overrides(
                resolved, num_events=num_events, num_intervals=num_intervals
            )
            result.records.extend(
                run_experiment_point(
                    dataset,
                    k=k,
                    experiment_id="fig5",
                    dataset_overrides=overrides,
                    algorithms=algorithms,
                    params={"k": k, "num_events": num_events, "num_intervals": num_intervals},
                    seed=seed,
                    execution=execution,
                    storage=storage,
                )
            )
    return result


# --------------------------------------------------------------------------- #
# Figure 6 — varying the number of time intervals |T|
# --------------------------------------------------------------------------- #
def fig6(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ALL_DATASETS,
    algorithms: Sequence[str] = tuple(PAPER_METHODS),
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """Fig. 6: utility and time as |T| grows (k and |E| at their defaults)."""
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="fig6"
    )
    resolved = get_scale(scale)
    result = FigureResult(
        figure_id="fig6",
        title="Varying the number of time intervals |T|",
        x_param="num_intervals",
        metrics=("utility", "user_computations", "time_sec"),
        datasets=tuple(datasets),
        scale=resolved.name,
    )
    k = resolved.default_k
    num_events = resolved.default_events
    for dataset in datasets:
        for num_intervals in resolved.intervals_values:
            overrides = _dataset_overrides(
                resolved, num_events=num_events, num_intervals=num_intervals
            )
            result.records.extend(
                run_experiment_point(
                    dataset,
                    k=k,
                    experiment_id="fig6",
                    dataset_overrides=overrides,
                    algorithms=algorithms,
                    params={"k": k, "num_events": num_events, "num_intervals": num_intervals},
                    seed=seed,
                    execution=execution,
                    storage=storage,
                )
            )
    return result


# --------------------------------------------------------------------------- #
# Figure 7 — varying the number of candidate events |E|
# --------------------------------------------------------------------------- #
def fig7(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ("Concerts", "Unf"),
    algorithms: Sequence[str] = tuple(PAPER_METHODS),
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """Fig. 7: utility and time as |E| grows (k < |T|, so HOR-I ≡ HOR)."""
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="fig7"
    )
    resolved = get_scale(scale)
    result = FigureResult(
        figure_id="fig7",
        title="Varying the number of candidate events |E|",
        x_param="num_events",
        metrics=("utility", "user_computations", "time_sec"),
        datasets=tuple(datasets),
        scale=resolved.name,
    )
    k = resolved.default_k
    num_intervals = resolved.default_intervals
    for dataset in datasets:
        for num_events in resolved.events_values:
            if num_events < k:
                continue
            overrides = _dataset_overrides(
                resolved, num_events=num_events, num_intervals=num_intervals
            )
            result.records.extend(
                run_experiment_point(
                    dataset,
                    k=k,
                    experiment_id="fig7",
                    dataset_overrides=overrides,
                    algorithms=algorithms,
                    params={"k": k, "num_events": num_events, "num_intervals": num_intervals},
                    seed=seed,
                    execution=execution,
                    storage=storage,
                )
            )
    return result


# --------------------------------------------------------------------------- #
# Figure 8 — varying the number of users |U|
# --------------------------------------------------------------------------- #
def fig8(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ("Unf",),
    algorithms: Sequence[str] = tuple(PAPER_METHODS),
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """Fig. 8: time as |U| grows, for |T| = 3k/2 (panel a) and |T| ≈ 0.65k (panel b)."""
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="fig8"
    )
    resolved = get_scale(scale)
    result = FigureResult(
        figure_id="fig8",
        title="Varying the number of users |U|",
        x_param="num_users",
        metrics=("utility", "user_computations", "time_sec"),
        datasets=tuple(datasets),
        scale=resolved.name,
    )
    k = resolved.default_k
    num_events = resolved.default_events
    panels = {
        "a": resolved.default_intervals,             # k < |T| (HOR-I identical to HOR)
        "b": max(1, int(round(0.65 * k))),           # k > |T| (the paper's supplementary panel)
    }
    for dataset in datasets:
        for panel, num_intervals in panels.items():
            for num_users in resolved.users_values:
                overrides = _dataset_overrides(
                    resolved,
                    num_events=num_events,
                    num_intervals=num_intervals,
                    num_users=num_users,
                )
                result.records.extend(
                    run_experiment_point(
                        dataset,
                        k=k,
                        experiment_id="fig8",
                        dataset_overrides=overrides,
                        algorithms=algorithms,
                        params={
                            "k": k,
                            "num_users": num_users,
                            "num_intervals": num_intervals,
                            "panel": panel,
                        },
                        seed=seed,
                        execution=execution,
                        storage=storage,
                    )
                )
    result.notes["panels"] = panels
    return result


# --------------------------------------------------------------------------- #
# Figure 9 — varying the number of available locations
# --------------------------------------------------------------------------- #
def fig9(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ("Unf",),
    algorithms: Sequence[str] = tuple(PAPER_METHODS),
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """Fig. 9: utility and time as the number of event locations varies (|T| ≈ 0.65k)."""
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="fig9"
    )
    resolved = get_scale(scale)
    result = FigureResult(
        figure_id="fig9",
        title="Varying the number of available locations",
        x_param="num_locations",
        metrics=("utility", "time_sec"),
        datasets=tuple(datasets),
        scale=resolved.name,
    )
    k = resolved.default_k
    num_events = resolved.default_events
    num_intervals = max(1, int(round(0.65 * k)))
    for dataset in datasets:
        for num_locations in resolved.locations_values:
            overrides = _dataset_overrides(
                resolved,
                num_events=num_events,
                num_intervals=num_intervals,
                num_locations=num_locations,
            )
            result.records.extend(
                run_experiment_point(
                    dataset,
                    k=k,
                    experiment_id="fig9",
                    dataset_overrides=overrides,
                    algorithms=algorithms,
                    params={
                        "k": k,
                        "num_locations": num_locations,
                        "num_intervals": num_intervals,
                    },
                    seed=seed,
                    execution=execution,
                    storage=storage,
                )
            )
    return result


# --------------------------------------------------------------------------- #
# Figure 10a — HOR / HOR-I worst case w.r.t. k and |T|
# --------------------------------------------------------------------------- #
def fig10a(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ALL_DATASETS,
    algorithms: Sequence[str] = ("ALG", "INC", "HOR", "HOR-I", "TOP"),
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """Fig. 10a: execution time in the horizontal algorithms' worst case (k mod |T| = 1)."""
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="fig10a"
    )
    resolved = get_scale(scale)
    result = FigureResult(
        figure_id="fig10a",
        title="HOR & HOR-I worst case w.r.t. k and |T|",
        x_param="num_intervals",
        metrics=("utility", "user_computations", "time_sec"),
        datasets=tuple(datasets),
        scale=resolved.name,
    )
    k = resolved.default_k
    num_intervals = max(1, k - 1)  # k mod |T| = 1, the worst case of Propositions 5 and 7
    num_events = resolved.default_events
    for dataset in datasets:
        overrides = _dataset_overrides(
            resolved, num_events=num_events, num_intervals=num_intervals
        )
        result.records.extend(
            run_experiment_point(
                dataset,
                k=k,
                experiment_id="fig10a",
                dataset_overrides=overrides,
                algorithms=algorithms,
                params={"k": k, "num_intervals": num_intervals},
                seed=seed,
                execution=execution,
                storage=storage,
            )
        )
    return result


# --------------------------------------------------------------------------- #
# Figure 10b — search space (assignments examined) of ALG vs INC
# --------------------------------------------------------------------------- #
def fig10b(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ("Unf",),
    algorithms: Sequence[str] = ("ALG", "INC"),
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """Fig. 10b: assignments examined by ALG vs INC while varying k, |T| and |E|."""
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="fig10b"
    )
    resolved = get_scale(scale)
    result = FigureResult(
        figure_id="fig10b",
        title="ALG & INC search space (assignments examined)",
        x_param="point",
        metrics=("assignments_examined",),
        datasets=tuple(datasets),
        scale=resolved.name,
    )
    base_k = resolved.default_k
    base_events = resolved.default_events
    base_intervals = resolved.default_intervals

    sweep: List[Tuple[str, Dict[str, int]]] = []
    for k in (base_k // 2, base_k, base_k * 2):
        sweep.append((f"k={k}", {"k": k, "num_events": base_events, "num_intervals": base_intervals}))
    for intervals in (base_intervals, base_intervals * 2, base_intervals * 3):
        sweep.append(
            (
                f"|T|={intervals}",
                {"k": base_k, "num_events": base_events, "num_intervals": intervals},
            )
        )
    for events in resolved.events_values[1:]:
        sweep.append(
            (
                f"|E|={events}",
                {"k": base_k, "num_events": events, "num_intervals": base_intervals},
            )
        )

    for dataset in datasets:
        for position, (label, config) in enumerate(sweep):
            overrides = _dataset_overrides(
                resolved,
                num_events=config["num_events"],
                num_intervals=config["num_intervals"],
            )
            result.records.extend(
                run_experiment_point(
                    dataset,
                    k=config["k"],
                    experiment_id="fig10b",
                    dataset_overrides=overrides,
                    algorithms=algorithms,
                    params={"point": position, "label": label, **config},
                    seed=seed,
                    execution=execution,
                    storage=storage,
                )
            )
    result.notes["sweep_labels"] = [label for label, _ in sweep]
    return result


# --------------------------------------------------------------------------- #
# Extension experiments: parameters whose plots the paper omits for space
# --------------------------------------------------------------------------- #
def ext_competing(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ("Unf",),
    algorithms: Sequence[str] = tuple(PAPER_METHODS),
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """§4.1 (omitted plot): effect of the number of competing events per interval."""
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="ext_competing"
    )
    resolved = get_scale(scale)
    result = FigureResult(
        figure_id="ext_competing",
        title="Varying the number of competing events per interval",
        x_param="competing_high",
        metrics=("utility", "time_sec"),
        datasets=tuple(datasets),
        scale=resolved.name,
    )
    k = resolved.default_k
    for dataset in datasets:
        for high in (4, 8, 16, 32, 64):
            overrides = _dataset_overrides(
                resolved,
                num_events=resolved.default_events,
                num_intervals=resolved.default_intervals,
                competing_range=(1, high),
            )
            result.records.extend(
                run_experiment_point(
                    dataset,
                    k=k,
                    experiment_id="ext_competing",
                    dataset_overrides=overrides,
                    algorithms=algorithms,
                    params={"k": k, "competing_high": high},
                    seed=seed,
                    execution=execution,
                    storage=storage,
                )
            )
    return result


def ext_resources(
    scale: str | ExperimentScale = "default",
    *,
    datasets: Sequence[str] = ("Unf",),
    algorithms: Sequence[str] = tuple(PAPER_METHODS),
    seed: int = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> FigureResult:
    """§4.1 (omitted plot): effect of the organiser's available resources θ."""
    execution = merge_legacy_execution(
        execution, backend=backend, chunk_size=chunk_size, workers=workers, owner="ext_resources"
    )
    resolved = get_scale(scale)
    result = FigureResult(
        figure_id="ext_resources",
        title="Varying the available resources θ",
        x_param="available_resources",
        metrics=("utility", "time_sec"),
        datasets=tuple(datasets),
        scale=resolved.name,
    )
    k = resolved.default_k
    for dataset in datasets:
        for theta in (10, 20, 30, 50, 100):
            overrides = _dataset_overrides(
                resolved,
                num_events=resolved.default_events,
                num_intervals=resolved.default_intervals,
                available_resources=float(theta),
            )
            result.records.extend(
                run_experiment_point(
                    dataset,
                    k=k,
                    experiment_id="ext_resources",
                    dataset_overrides=overrides,
                    algorithms=algorithms,
                    params={"k": k, "available_resources": theta},
                    seed=seed,
                    execution=execution,
                    storage=storage,
                )
            )
    return result


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExperimentSpec:
    """Registry entry binding an experiment id to its function and provenance."""

    experiment_id: str
    paper_reference: str
    description: str
    runner: Callable[..., FigureResult]


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.experiment_id: spec
    for spec in (
        ExperimentSpec("fig5", "Figure 5", "Utility / computations / time vs k", fig5),
        ExperimentSpec("fig6", "Figure 6", "Utility / time vs number of intervals", fig6),
        ExperimentSpec("fig7", "Figure 7", "Utility / time vs number of candidate events", fig7),
        ExperimentSpec("fig8", "Figure 8", "Time vs number of users (two |T| panels)", fig8),
        ExperimentSpec("fig9", "Figure 9", "Utility / time vs number of locations", fig9),
        ExperimentSpec("fig10a", "Figure 10a", "HOR/HOR-I worst case w.r.t. k and |T|", fig10a),
        ExperimentSpec("fig10b", "Figure 10b", "ALG vs INC search space", fig10b),
        ExperimentSpec(
            "ext_competing", "§4.1 (omitted)", "Effect of competing events per interval", ext_competing
        ),
        ExperimentSpec("ext_resources", "§4.1 (omitted)", "Effect of available resources θ", ext_resources),
    )
}


def available_experiments() -> List[str]:
    """Ids of every registered experiment."""
    return sorted(EXPERIMENTS)


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment spec by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(available_experiments())}"
        ) from None


def run_experiment(experiment_id: str, **kwargs: object) -> FigureResult:
    """Run a registered experiment by id (keyword arguments go to its function)."""
    return get_experiment(experiment_id).runner(**kwargs)
