"""Run algorithms on instances and collect metric records.

The harness is deliberately small: it instantiates the requested schedulers,
runs them, validates the produced schedules (a safety net — an infeasible
schedule would silently distort every downstream comparison) and converts the
results into :class:`~repro.experiments.metrics.MetricRecord` objects.
"""

from __future__ import annotations

import contextlib
import tempfile
from typing import Dict, List, Mapping, Optional, Sequence

from repro.algorithms.base import SchedulerResult
from repro.algorithms.registry import PAPER_METHODS, get_scheduler
from repro.core.errors import ExperimentError
from repro.core.execution import ExecutionConfig, merge_legacy_execution
from repro.core.instance import SESInstance
from repro.core.validation import validate_solution
from repro.datasets.builders import build_dataset
from repro.experiments.metrics import MetricRecord


def apply_storage(
    instance: SESInstance,
    storage: Optional[str],
    stack: contextlib.ExitStack,
) -> SESInstance:
    """``instance`` converted to the requested interest-matrix storage.

    ``None`` (or the storage the instance already uses) returns the instance
    unchanged.  Converting to the ``"mmap"`` storage spills the instance to an
    uncompressed NPZ in a temporary directory registered on ``stack``, so the
    backing file outlives every scheduler that maps it and is removed when
    the caller's stack closes.  Conversion never changes values, so results
    stay bit-identical across storages.
    """
    if storage is None or instance.storage == storage:
        return instance
    if storage == "mmap":
        directory = stack.enter_context(
            tempfile.TemporaryDirectory(prefix="ses-repro-mmap-")
        )
        return instance.with_storage("mmap", directory=directory)
    return instance.with_storage(storage)


def run_algorithms(
    instance: SESInstance,
    k: int,
    *,
    algorithms: Optional[Sequence[str]] = None,
    experiment_id: str = "adhoc",
    params: Optional[Mapping[str, object]] = None,
    seed: Optional[int] = 0,
    validate: bool = True,
    execution: Optional[ExecutionConfig] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
    results: Optional[List[SchedulerResult]] = None,
) -> List[MetricRecord]:
    """Run a set of algorithms on one instance and return one record per run.

    Parameters
    ----------
    algorithms:
        Algorithm names (defaults to the paper's six methods).  The HOR-I
        entry is skipped automatically when ``k <= |T|`` *and* HOR is also in
        the list, mirroring the paper's plots, unless it is requested
        explicitly as the only horizontal method.
    validate:
        Re-check feasibility and the claimed utility of every schedule.
    execution:
        Execution configuration forwarded to every scheduler
        (:class:`~repro.core.execution.ExecutionConfig`; ``None`` uses the
        library defaults).  The backends are metric-equivalent, so records
        only differ in wall-clock time; the backend and worker count actually
        used are recorded in every record's params, so figure runs can
        compare backends.
    backend, chunk_size, workers:
        .. deprecated:: PR 4
           Legacy loose knobs, folded into ``execution`` with a
           :class:`DeprecationWarning`.
    results:
        Optional sink: when given, the full :class:`SchedulerResult` of every
        run is appended to it (same order as the returned records).  The CLI
        uses this to print schedules without re-running the schedulers.
    """
    execution = merge_legacy_execution(
        execution,
        backend=backend,
        chunk_size=chunk_size,
        workers=workers,
        owner="run_algorithms",
    )
    names = list(algorithms) if algorithms is not None else list(PAPER_METHODS)
    if not names:
        raise ExperimentError("at least one algorithm name is required")

    records: List[MetricRecord] = []
    for name in names:
        scheduler_cls = get_scheduler(name)
        scheduler = scheduler_cls(instance, seed=seed, execution=execution)
        result = scheduler.schedule(k)
        if results is not None:
            results.append(result)
        if validate:
            problems = validate_solution(
                instance, result.schedule, k=k, claimed_utility=result.utility
            )
            if problems:
                raise ExperimentError(
                    f"{name} produced an invalid schedule on {instance.name!r}: "
                    + "; ".join(problems)
                )
        records.append(
            MetricRecord.from_result(
                result,
                experiment_id=experiment_id,
                dataset=instance.name,
                params=params,
                seed=seed,
            )
        )
    return records


def run_experiment_point(
    dataset: str,
    *,
    k: int,
    experiment_id: str,
    dataset_overrides: Optional[Mapping[str, object]] = None,
    algorithms: Optional[Sequence[str]] = None,
    params: Optional[Mapping[str, object]] = None,
    seed: Optional[int] = 0,
    execution: Optional[ExecutionConfig] = None,
    storage: Optional[str] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> List[MetricRecord]:
    """Build a named dataset and run the algorithms on it (one sweep point).

    ``params`` is stored on every record (it is the x-axis annotation of the
    figures); ``dataset_overrides`` are forwarded to the dataset builder;
    ``execution`` to every scheduler (the loose ``backend``/``chunk_size``/
    ``workers`` knobs are deprecated shims).  ``storage`` converts the built
    instance to the named interest-matrix storage first (see
    :func:`apply_storage`); the storage actually used lands in every record's
    ``params["storage"]``.
    """
    execution = merge_legacy_execution(
        execution,
        backend=backend,
        chunk_size=chunk_size,
        workers=workers,
        owner="run_experiment_point",
    )
    merged_params: Dict[str, object] = dict(params or {})
    merged_params.setdefault("k", k)
    with contextlib.ExitStack() as stack:
        instance = apply_storage(
            build_dataset(dataset, **dict(dataset_overrides or {})), storage, stack
        )
        return run_algorithms(
            instance,
            k,
            algorithms=algorithms,
            experiment_id=experiment_id,
            params=merged_params,
            seed=seed,
            execution=execution,
        )
