"""Command-line interface of the reproduction (``ses-repro`` / ``python -m repro``).

Sub-commands
------------

``generate``
    Build one of the named datasets and save it to ``.json`` / ``.npz``.
``solve``
    Run one or more schedulers on a saved or freshly generated instance and
    print the resulting metrics (and optionally the schedule itself).
``experiment``
    Regenerate one of the paper's figures at a chosen scale and print its
    tables.
``backends``
    List the registered execution backends with their resolved defaults on
    this machine (also available as the top-level ``--list-backends`` flag).
``worker``
    Cluster worker management: ``worker serve`` runs one scoring worker of
    the distributed ``cluster`` backend on this machine (point clients at it
    with ``--cluster host:port``).
``serve``
    Run the online scheduling service: long-lived mutable sessions with
    incremental re-solves over the same wire protocol the cluster uses
    (connect with :class:`repro.service.ServiceClient`).
``cluster``
    Cluster fleet management: ``cluster health`` probes each configured
    worker address (reachable / authenticated / protocol version / served
    work) and prints one table, exiting non-zero when any worker is
    unhealthy.
``lint``
    Statically check the project invariants (AST-based rules from
    ``repro.analysis.staticcheck``); exits non-zero on findings, ``--json``
    emits the stable machine-readable report the CI gate archives.
``list``
    List the available datasets, algorithms and experiments.
``info``
    Print summary statistics of a saved instance.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from typing import List, Optional, Sequence

from repro._version import __version__
from repro.algorithms.base import SchedulerResult
from repro.algorithms.registry import PAPER_METHODS, available_schedulers
from repro.core.errors import DatasetError, ReproError, SolverError
from repro.core.instance import SESInstance
from repro.core.execution import (
    DEFAULT_BACKEND,
    ExecutionConfig,
    available_backends,
    available_plans,
    backend_catalog,
    get_backend,
    get_plan,
    plan_catalog,
    resolve_backend,
)
from repro.core.storage import available_stores, get_store
from repro.core.validation import instance_report
from repro.datasets.builders import build_dataset, dataset_names
from repro.datasets.loaders import load_instance, save_instance
from repro.experiments.figures import SCALES, available_experiments, run_experiment
from repro.experiments.report import format_figure_result, format_records, format_table
from repro.experiments.harness import apply_storage, run_algorithms
from repro.experiments.sweeps import summary_sweep


class _ListBackendsAction(argparse.Action):
    """``--list-backends``: print the backend catalogue and exit (like ``--version``)."""

    def __init__(self, option_strings, dest, **kwargs):
        super().__init__(option_strings, dest, nargs=0, **kwargs)

    def __call__(self, parser, namespace, values, option_string=None):
        print(format_table(backend_catalog()))
        parser.exit(0)


def _add_backend_arguments(subparser: argparse.ArgumentParser) -> None:
    """Attach the execution-backend flags shared by ``solve`` and ``experiment``.

    ``--backend`` deliberately has no argparse ``choices``: the registry can
    grow at runtime (``repro.core.execution.register_backend``), so validation
    happens in the execution layer, which reports the currently-available
    names on an unknown backend.
    """
    subparser.add_argument(
        "--backend",
        default=None,
        help="execution backend: 'batch' (the default) evaluates whole "
        "intervals in vectorised NumPy passes, 'parallel' dispatches the "
        "batched event blocks to a thread pool, 'process' shards "
        "score-matrix columns across a shared-memory process pool, "
        "'cluster' shards them across remote workers (see --cluster), "
        "'scalar' scores one (event, interval) pair at a time (identical "
        "results, different speed); recorded in the output rows.  "
        f"Registered backends: {', '.join(available_backends())} "
        "(see the 'backends' sub-command)",
    )
    subparser.add_argument(
        "--storage",
        default=None,
        help="interest-matrix storage the instance is converted to before "
        "scheduling: 'dense' keeps full user×event arrays (the builders' "
        "default), 'sparse' keeps an event-major CSR of the non-zero "
        "entries, 'mmap' streams an uncompressed instance NPZ from disk "
        "(an .npz --instance is memory-mapped in place when possible; "
        "anything else is spilled to a temporary directory first); "
        "identical results, different memory footprint; recorded in the "
        f"output rows.  Registered stores: {', '.join(available_stores())}",
    )
    subparser.add_argument(
        "--plan",
        default=None,
        help="scoring plan of the bulk backends: 'direct' (the default) runs "
        "the reference kernel over every user row, 'blocked' mines the "
        "instance's interest-pattern equivalence classes once and scores "
        "one representative per class (identical results, faster on "
        "duplicate-heavy instances); non-bulk backends pin to 'direct'; "
        "recorded in the output rows.  Registered plans: "
        f"{', '.join(available_plans())}",
    )
    subparser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="events per vectorised pass of the bulk backends (memory guard; "
        "default bounds one temporary at ~64 MB regardless of instance size)",
    )
    subparser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker fan-out of the pooled backends — threads for 'parallel', "
        "processes for 'process' (default: the machine's CPU count; 1 "
        "degrades to the serial batch path; ignored by the other backends)",
    )
    subparser.add_argument(
        "--cluster",
        metavar="ADDR[,ADDR...]",
        default=None,
        help="comma-separated 'host:port' addresses of running cluster "
        "workers (start them with 'worker serve'); implies "
        "--backend cluster and shards score-matrix columns across them",
    )
    subparser.add_argument(
        "--cluster-key",
        default=None,
        help="shared authentication secret of the cluster connections "
        "(must match the workers'; default: the library key)",
    )
    subparser.add_argument(
        "--task-batch",
        type=int,
        default=None,
        help="columns per cluster dispatch batch (default: auto-derived as "
        "ceil(intervals / (lanes * 4)), capped at 64; 1 reproduces the "
        "per-column v1 wire behaviour; ignored by in-process backends)",
    )


def _execution_from_args(args: argparse.Namespace) -> ExecutionConfig:
    """One ExecutionConfig from the shared backend flags.

    The backend name is validated here so a typo fails fast (with the
    available-names list) before any dataset is generated or loaded; the
    remaining knobs are validated on resolution downstream.  ``--cluster``
    implies ``--backend cluster`` (and combining it with any *other* explicit
    backend is a contradiction, reported as such).
    """
    backend = args.backend
    cluster = getattr(args, "cluster", None)
    if cluster:
        if backend is None:
            backend = "cluster"
        elif not get_backend(resolve_backend(backend)).uses_cluster:
            raise SolverError(
                f"--cluster shards across remote workers, but --backend "
                f"{backend!r} runs in-process; drop one of the two flags"
            )
    if backend is None:
        backend = DEFAULT_BACKEND
    resolve_backend(backend)
    plan = getattr(args, "plan", None)
    if plan is not None:
        get_plan(plan)  # fail fast on a typo, with the available names
    return ExecutionConfig(
        backend=backend,
        plan=plan,
        chunk_size=args.chunk_size,
        workers=args.workers,
        workers_addr=cluster,
        cluster_key=getattr(args, "cluster_key", None),
        task_batch=getattr(args, "task_batch", None),
    )


def _storage_from_args(args: argparse.Namespace) -> Optional[str]:
    """The validated ``--storage`` name (``None`` keeps each instance's own).

    Like ``--backend``, the name is checked against the live store registry
    here so a typo fails fast — before any dataset is generated or loaded —
    with the currently-available names in the message.
    """
    storage = getattr(args, "storage", None)
    if storage is not None:
        get_store(storage)
    return storage


def _solve_instance(
    args: argparse.Namespace, storage: Optional[str], stack: contextlib.ExitStack
) -> SESInstance:
    """Load or generate the ``solve`` instance under the requested storage.

    An ``.npz`` instance requested as ``mmap`` is memory-mapped straight from
    its file when possible — the dense matrices are never materialised, which
    is what lets ``solve`` handle instances larger than RAM.  A compressed
    NPZ or JSON source falls back to a normal load followed by a spill to a
    temporary directory (removed when ``stack`` closes).
    """
    if args.instance:
        if storage == "mmap" and args.instance.endswith(".npz"):
            try:
                return load_instance(args.instance, mmap=True)
            except DatasetError:
                pass  # compressed / legacy NPZ: load it eagerly, spill below
        instance = load_instance(args.instance)
    else:
        instance = build_dataset(args.dataset, **_generate_overrides(args))
    return apply_storage(instance, storage, stack)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="ses-repro",
        description="Social Event Scheduling (SES) reproduction toolkit",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    parser.add_argument(
        "--list-backends",
        action=_ListBackendsAction,
        help="list the registered execution backends with their resolved "
        "defaults on this machine, then exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a dataset instance")
    generate.add_argument("dataset", choices=dataset_names(), help="dataset family to generate")
    generate.add_argument("output", help="output path (.json or .npz)")
    generate.add_argument("--users", type=int, default=None, help="number of users")
    generate.add_argument("--events", type=int, default=None, help="number of candidate events")
    generate.add_argument("--intervals", type=int, default=None, help="number of time intervals")
    generate.add_argument("--locations", type=int, default=None, help="number of event locations")
    generate.add_argument("--seed", type=int, default=7, help="random seed")

    solve = subparsers.add_parser("solve", help="run schedulers on an instance")
    source = solve.add_mutually_exclusive_group(required=True)
    source.add_argument("--instance", help="path of a saved instance (.json/.npz)")
    source.add_argument("--dataset", choices=dataset_names(), help="generate this dataset on the fly")
    solve.add_argument("-k", type=int, required=True, help="number of events to schedule")
    solve.add_argument(
        "--algorithms",
        nargs="+",
        default=list(PAPER_METHODS),
        help=f"schedulers to run (available: {', '.join(available_schedulers())})",
    )
    solve.add_argument("--users", type=int, default=None, help="users when generating on the fly")
    solve.add_argument("--events", type=int, default=None, help="events when generating on the fly")
    solve.add_argument("--intervals", type=int, default=None, help="intervals when generating on the fly")
    solve.add_argument("--seed", type=int, default=0, help="seed for randomised schedulers")
    _add_backend_arguments(solve)
    solve.add_argument("--show-schedule", action="store_true", help="print the assignments")

    experiment = subparsers.add_parser("experiment", help="regenerate a paper figure")
    experiment.add_argument(
        "experiment_id",
        choices=available_experiments() + ["summary"],
        help="figure id (fig5 … fig10b, ext_*, or 'summary' for the §4.2.8 sweep)",
    )
    experiment.add_argument(
        "--scale", choices=sorted(SCALES), default="small", help="experiment scale preset"
    )
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--json", action="store_true", help="emit JSON rows instead of tables")
    _add_backend_arguments(experiment)

    subparsers.add_parser(
        "backends",
        help="list the registered execution backends and their resolved defaults",
    )

    worker = subparsers.add_parser(
        "worker", help="cluster worker management (see the 'cluster' backend)"
    )
    worker_commands = worker.add_subparsers(dest="worker_command", required=True)
    serve = worker_commands.add_parser(
        "serve",
        help="run one scoring worker on this machine until shut down "
        "(prints the bound 'host:port' first — pass it to --cluster)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="address to bind (default: loopback; bind a LAN address to "
        "serve remote clients)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default: 0 = an ephemeral port, printed on start)",
    )
    serve.add_argument(
        "--cluster-key", default=None,
        help="shared authentication secret clients must present "
        "(default: the library key)",
    )
    serve.add_argument(
        "--cache-capacity", type=int, default=None,
        help="instances kept resident in the worker's fingerprint cache "
        "(default: 4)",
    )

    service = subparsers.add_parser(
        "serve",
        help="run the online scheduling service until shut down: sessions "
        "accept mutation batches and re-solve incrementally (prints the "
        "bound 'host:port' first — connect with repro.service.ServiceClient)",
    )
    service.add_argument(
        "--host", default="127.0.0.1",
        help="address to bind (default: loopback; bind a LAN address to "
        "serve remote clients)",
    )
    service.add_argument(
        "--port", type=int, default=0,
        help="port to bind (default: 0 = an ephemeral port, printed on start)",
    )
    service.add_argument(
        "--cluster-key", default=None,
        help="shared authentication secret clients must present "
        "(default: the library key)",
    )

    cluster = subparsers.add_parser(
        "cluster", help="cluster fleet management (see the 'cluster' backend)"
    )
    cluster_commands = cluster.add_subparsers(dest="cluster_command", required=True)
    health = cluster_commands.add_parser(
        "health",
        help="probe each configured worker address (reachable / authenticated "
        "/ protocol version / served-work counters) and print one table; "
        "exits non-zero when any worker is unhealthy",
    )
    health.add_argument(
        "--cluster",
        metavar="ADDR[,ADDR...]",
        required=True,
        help="comma-separated 'host:port' addresses of the workers to probe",
    )
    health.add_argument(
        "--cluster-key",
        default=None,
        help="shared authentication secret of the probe connections "
        "(must match the workers'; default: the library key)",
    )
    health.add_argument(
        "--json",
        action="store_true",
        help="emit the health rows as JSON instead of a table",
    )

    lint = subparsers.add_parser(
        "lint",
        help="statically check the project invariants (exit 1 on findings)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tools", "benchmarks"],
        help="files/directories to scan (default: src tools benchmarks, "
        "resolved from the current directory)",
    )
    lint.add_argument(
        "--json",
        action="store_true",
        help="emit the stable JSON report (schema_version, files_scanned, "
        "per-rule counts, waivers, findings) instead of text",
    )
    lint.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="comma-separated rule ids to run (default: every registered "
        "rule; see --list-rules)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule catalogue (id, scope, severity, "
        "summary) and exit",
    )
    lint.add_argument(
        "--root",
        default=None,
        help="project root for rule path scoping (default: auto-detected "
        "from the nearest setup.py/pyproject.toml/.git ancestor)",
    )

    subparsers.add_parser("list", help="list datasets, algorithms and experiments")

    info = subparsers.add_parser("info", help="summarise a saved instance")
    info.add_argument("instance", help="path of a saved instance (.json/.npz)")

    return parser


def _generate_overrides(args: argparse.Namespace) -> dict:
    overrides: dict = {"seed": args.seed}
    if args.users is not None:
        overrides["num_users"] = args.users
    if args.events is not None:
        overrides["num_events"] = args.events
    if args.intervals is not None:
        overrides["num_intervals"] = args.intervals
    if getattr(args, "locations", None) is not None:
        overrides["num_locations"] = args.locations
    return overrides


def _command_generate(args: argparse.Namespace) -> int:
    instance = build_dataset(args.dataset, **_generate_overrides(args))
    path = save_instance(instance, args.output)
    print(f"wrote {instance.name} instance to {path}")
    print(format_table([instance.describe()]))
    return 0


def _command_solve(args: argparse.Namespace) -> int:
    # Validate the backend and storage names before the (possibly expensive)
    # instance is generated or loaded, so a typo fails fast.
    execution = _execution_from_args(args)
    storage = _storage_from_args(args)
    with contextlib.ExitStack() as stack:
        instance = _solve_instance(args, storage, stack)
        # The results sink captures each scheduler's run so --show-schedule
        # can print the assignments without running everything a second time.
        results: List[SchedulerResult] = []
        records = run_algorithms(
            instance,
            args.k,
            algorithms=args.algorithms,
            experiment_id="cli",
            seed=args.seed,
            execution=execution,
            results=results,
        )
        print(format_records(records))
        if args.show_schedule:
            for name, result in zip(args.algorithms, results):
                assignments = ", ".join(
                    f"{instance.events[a.event_index].id}@{instance.intervals[a.interval_index].id}"
                    for a in result.schedule.assignments()
                )
                print(f"{name}: {assignments}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    if args.experiment_id == "summary":
        stats = summary_sweep(
            scale=args.scale,
            seed=args.seed,
            execution=_execution_from_args(args),
            storage=_storage_from_args(args),
        )
        if args.json:
            print(json.dumps(stats.as_rows(), indent=2))
        else:
            print(format_table(stats.as_rows()))
        return 0
    figure = run_experiment(
        args.experiment_id,
        scale=args.scale,
        seed=args.seed,
        execution=_execution_from_args(args),
        storage=_storage_from_args(args),
    )
    if args.json:
        print(json.dumps([record.to_row() for record in figure.records], indent=2))
    else:
        print(format_figure_result(figure))
    return 0


def _command_backends(_: argparse.Namespace) -> int:
    print(format_table(backend_catalog()))
    print()
    print(format_table(plan_catalog()))
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    # `worker_command` is required and 'serve' is its only action so far; the
    # sub-subparser keeps room for future actions (status, drain, …).
    from repro.core.distributed.cache import DEFAULT_CACHE_CAPACITY
    from repro.core.distributed.worker import serve

    capacity = args.cache_capacity if args.cache_capacity is not None else DEFAULT_CACHE_CAPACITY
    serve(
        args.host,
        args.port,
        cluster_key=args.cluster_key,
        capacity=capacity,
        announce=lambda address: print(
            f"ses-repro cluster worker listening on {address}", flush=True
        ),
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    # Imported lazily (like the worker machinery): the service package is
    # only needed by this long-running command.
    from repro.service import serve

    serve(
        args.host,
        args.port,
        cluster_key=args.cluster_key,
        announce=lambda address: print(
            f"ses-repro scheduling service listening on {address}", flush=True
        ),
    )
    return 0


def _command_cluster(args: argparse.Namespace) -> int:
    # `cluster_command` is required and 'health' is its only action so far;
    # the sub-subparser keeps room for future actions (drain, evict, …).
    from repro.core.distributed.health import HEALTH_COLUMNS, fleet_health

    addresses = [
        address.strip() for address in args.cluster.split(",") if address.strip()
    ]
    if not addresses:
        raise SolverError("--cluster names no worker address")
    rows = fleet_health(addresses, cluster_key=args.cluster_key)
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(format_table(rows, columns=list(HEALTH_COLUMNS)))
    return 0 if all(row["healthy"] for row in rows) else 1


def _command_lint(args: argparse.Namespace) -> int:
    # Imported lazily (like the worker machinery): the lint framework pulls
    # in the rule registry, which ordinary CLI commands never need.
    from repro.analysis.staticcheck import (
        format_report,
        format_rule_table,
        run_lint,
    )

    if args.list_rules:
        print(format_rule_table())
        return 0
    rule_ids = (
        [rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()]
        if args.rules is not None
        else None
    )
    report = run_lint(args.paths, root=args.root, rule_ids=rule_ids)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(format_report(report))
    return 0 if report.clean else 1


def _command_list(_: argparse.Namespace) -> int:
    print("datasets:    " + ", ".join(dataset_names()))
    print("algorithms:  " + ", ".join(available_schedulers()))
    print("backends:    " + ", ".join(available_backends()))
    print("plans:       " + ", ".join(available_plans()))
    print("storages:    " + ", ".join(available_stores()))
    print("experiments: " + ", ".join(available_experiments() + ["summary"]))
    print("scales:      " + ", ".join(sorted(SCALES)))
    return 0


def _command_info(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    print(format_table([instance_report(instance)]))
    return 0


_COMMANDS = {
    "generate": _command_generate,
    "solve": _command_solve,
    "experiment": _command_experiment,
    "backends": _command_backends,
    "worker": _command_worker,
    "serve": _command_serve,
    "cluster": _command_cluster,
    "lint": _command_lint,
    "list": _command_list,
    "info": _command_info,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
