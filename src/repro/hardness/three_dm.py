"""3-Bounded 3-Dimensional Matching (3DM-3) instances and matchers.

An instance consists of three disjoint element sets ``X``, ``Y``, ``Z`` of
equal size ``n`` and a set of triples ``T ⊆ X × Y × Z``; in the 3-bounded
variant every element appears in at most three triples.  A *matching* is a
subset of triples in which no element appears twice.  Deciding whether a
perfect matching (size ``n``) exists is NP-complete, and maximising the
matching size is APX-hard — the property the SES reduction relies on.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import ReproError

Triple = Tuple[int, int, int]


class HardnessError(ReproError):
    """Invalid 3DM-3 instance or matching."""


@dataclass(frozen=True)
class ThreeDMInstance:
    """A 3-bounded 3-dimensional matching instance.

    Elements of each dimension are the integers ``0 … n−1``; triples are
    ``(x, y, z)`` index tuples.
    """

    n: int
    triples: Tuple[Triple, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise HardnessError("n must be positive")
        if not self.triples:
            raise HardnessError("a 3DM instance needs at least one triple")
        occurrences = {dimension: [0] * self.n for dimension in range(3)}
        for triple in self.triples:
            if len(triple) != 3:
                raise HardnessError(f"triples must have three coordinates, got {triple!r}")
            for dimension, element in enumerate(triple):
                if not (0 <= element < self.n):
                    raise HardnessError(
                        f"element {element} of triple {triple!r} outside [0, {self.n})"
                    )
                occurrences[dimension][element] += 1
        for dimension, counts in occurrences.items():
            worst = max(counts)
            if worst > 3:
                raise HardnessError(
                    f"3-bounded violation: an element of dimension {dimension} appears "
                    f"{worst} times (max allowed is 3)"
                )

    @property
    def num_triples(self) -> int:
        """``m = |T|``."""
        return len(self.triples)


def is_matching(instance: ThreeDMInstance, selected: Sequence[int]) -> bool:
    """``True`` when the selected triple indices form a matching."""
    seen_x: set[int] = set()
    seen_y: set[int] = set()
    seen_z: set[int] = set()
    for index in selected:
        if not (0 <= index < instance.num_triples):
            return False
        x, y, z = instance.triples[index]
        if x in seen_x or y in seen_y or z in seen_z:
            return False
        seen_x.add(x)
        seen_y.add(y)
        seen_z.add(z)
    return len(set(selected)) == len(list(selected))


def greedy_matching(instance: ThreeDMInstance) -> List[int]:
    """Greedy maximal matching (triples taken in index order)."""
    chosen: List[int] = []
    seen_x: set[int] = set()
    seen_y: set[int] = set()
    seen_z: set[int] = set()
    for index, (x, y, z) in enumerate(instance.triples):
        if x in seen_x or y in seen_y or z in seen_z:
            continue
        chosen.append(index)
        seen_x.add(x)
        seen_y.add(y)
        seen_z.add(z)
    return chosen


def exact_maximum_matching(instance: ThreeDMInstance, *, limit: int = 2_000_000) -> List[int]:
    """Maximum matching by exhaustive search (tiny instances only).

    The search enumerates subsets in decreasing size order and stops at the
    first matching found, so the worst case is ``2^m`` subsets; the ``limit``
    guards against accidental use on large inputs.
    """
    m = instance.num_triples
    if 2 ** m > limit:
        raise HardnessError(
            f"instance too large for exact matching: 2^{m} subsets exceed the limit {limit}"
        )
    best: List[int] = []
    for size in range(min(instance.n, m), 0, -1):
        for subset in itertools.combinations(range(m), size):
            if is_matching(instance, subset):
                return list(subset)
        if best:
            break
    return best


def random_3dm3_instance(
    n: int,
    *,
    num_triples: Optional[int] = None,
    seed: Optional[int] = None,
    ensure_perfect: bool = True,
) -> ThreeDMInstance:
    """Generate a random 3-bounded 3DM instance.

    When ``ensure_perfect`` is True the instance contains a hidden perfect
    matching (the identity triples under a random permutation), plus random
    extra triples subject to the 3-bounded constraint.
    """
    rng = np.random.default_rng(seed)
    target = num_triples if num_triples is not None else 2 * n
    if target < n and ensure_perfect:
        raise HardnessError("num_triples must be at least n when ensure_perfect is set")

    triples: List[Triple] = []
    occurrences = {dimension: [0] * n for dimension in range(3)}

    def can_add(triple: Triple) -> bool:
        return all(occurrences[dim][element] < 3 for dim, element in enumerate(triple))

    def add(triple: Triple) -> None:
        triples.append(triple)
        for dim, element in enumerate(triple):
            occurrences[dim][element] += 1

    if ensure_perfect:
        permutation_y = rng.permutation(n)
        permutation_z = rng.permutation(n)
        for x in range(n):
            add((x, int(permutation_y[x]), int(permutation_z[x])))

    attempts = 0
    while len(triples) < target and attempts < 50 * target:
        attempts += 1
        candidate: Triple = (
            int(rng.integers(0, n)),
            int(rng.integers(0, n)),
            int(rng.integers(0, n)),
        )
        if candidate in triples or not can_add(candidate):
            continue
        add(candidate)

    return ThreeDMInstance(n=n, triples=tuple(triples))
