"""Approximation-hardness machinery (paper §2.2, Theorem 1).

The paper proves that SES is NP-hard to approximate within a factor larger
than ``1 − ε`` by reduction from 3-Bounded 3-Dimensional Matching (3DM-3).
This subpackage implements both sides of that reduction so the construction
can be exercised and verified programmatically:

* :mod:`repro.hardness.three_dm` — 3DM-3 instances, matching verification,
  a greedy matching heuristic and a small exact matcher.
* :mod:`repro.hardness.reduction` — the construction of the restricted SES
  instance from a 3DM-3 instance (interest values 0.25 / 0.75 / the δ-scaled
  competing interests of the proof) and helpers that translate matchings into
  schedules and verify the utility correspondence used in the proof sketch.
"""

from repro.hardness.three_dm import (
    ThreeDMInstance,
    exact_maximum_matching,
    greedy_matching,
    is_matching,
    random_3dm3_instance,
)
from repro.hardness.reduction import (
    ReductionArtifacts,
    reduce_to_ses,
    schedule_from_matching,
    utility_of_matching_schedule,
)

__all__ = [
    "ThreeDMInstance",
    "exact_maximum_matching",
    "greedy_matching",
    "is_matching",
    "random_3dm3_instance",
    "ReductionArtifacts",
    "reduce_to_ses",
    "schedule_from_matching",
    "utility_of_matching_schedule",
]
