"""The 3DM-3 → SES reduction of Theorem 1 (paper §2.2).

The proof maps a 3-bounded 3-dimensional matching instance onto a highly
restricted SES instance:

* every triple (edge) ``g_t`` becomes a candidate **time interval** with a
  single competing event;
* every element of ``X ∪ Y ∪ Z`` becomes a candidate event of set ``E1`` with
  resource requirement ξ = 1, and ``m − n`` filler events ``E2`` with ξ = 3
  are added; the organiser owns θ = 3 resources, so an interval hosts either
  the three elements of "its" triple or one filler event;
* each ``E1`` event is liked by exactly one dedicated user (µ = 0.25), each
  ``E2`` event by one dedicated user (µ = 0.75);
* the dedicated user of an element ``p`` has interest
  ``0.25·(0.75 − δ)/(0.25 + δ)`` in the competing event of every interval
  whose triple contains ``p``, and 0.75 otherwise (δ < 1/12);
* ``E2`` users have zero interest in every competing event;
* the social activity probability is 1 everywhere.

With this construction, packing the three elements of a matched triple into
its interval yields interval utility ``3·(0.25 + δ)``, and a filler event
alone in an interval yields utility 1 — which is what ties the SES utility to
the 3DM-3 matching size and yields the inapproximability bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.entities import CompetingEvent, Event, Organizer, TimeInterval, User
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.core.schedule import Schedule
from repro.hardness.three_dm import HardnessError, ThreeDMInstance, is_matching

#: Names of the three element dimensions, used to build readable ids.
DIMENSIONS = ("x", "y", "z")


@dataclass
class ReductionArtifacts:
    """The SES instance produced by the reduction plus the index bookkeeping."""

    instance: SESInstance
    source: ThreeDMInstance
    delta: float
    #: (dimension, element) → candidate-event index of the E1 event.
    element_event_index: Dict[Tuple[int, int], int]
    #: Candidate-event indices of the E2 filler events.
    filler_event_indices: List[int]
    #: Triple index → interval index (identity, kept for clarity).
    triple_interval_index: Dict[int, int]
    #: The k used when solving the reduced instance (= 3n + |E2|).
    k: int

    @property
    def matched_interval_utility(self) -> float:
        """Utility contributed by an interval hosting a fully matched triple."""
        return 3.0 * (0.25 + self.delta)

    @property
    def filler_interval_utility(self) -> float:
        """Utility contributed by an interval hosting one filler (E2) event."""
        return 1.0

    def expected_utility(self, matching_size: int) -> float:
        """Utility of the canonical schedule built from a matching of the given size."""
        return matching_size * self.matched_interval_utility + len(self.filler_event_indices)


def reduce_to_ses(source: ThreeDMInstance, *, delta: float = 0.05) -> ReductionArtifacts:
    """Construct the restricted SES instance of Theorem 1 from a 3DM-3 instance.

    Parameters
    ----------
    source:
        The 3DM-3 instance (n elements per dimension, m triples).
    delta:
        The positive constant δ < 1/12 of the proof.
    """
    if not (0.0 < delta < 1.0 / 12.0):
        raise HardnessError(f"delta must lie in (0, 1/12), got {delta}")
    n = source.n
    m = source.num_triples
    num_fillers = max(0, m - n)

    # ---------------------------------------------------------------- events
    events: List[Event] = []
    element_event_index: Dict[Tuple[int, int], int] = {}
    for dimension in range(3):
        for element in range(n):
            element_event_index[(dimension, element)] = len(events)
            events.append(
                Event(
                    id=f"{DIMENSIONS[dimension]}{element}",
                    location=f"loc-{DIMENSIONS[dimension]}{element}",  # unique → no location constraint
                    required_resources=1.0,
                )
            )
    filler_event_indices: List[int] = []
    for filler in range(num_fillers):
        filler_event_indices.append(len(events))
        events.append(
            Event(id=f"f{filler}", location=f"loc-f{filler}", required_resources=3.0)
        )

    # -------------------------------------------------------------- intervals
    intervals = [TimeInterval(id=f"g{index}", label=f"triple-{index}") for index in range(m)]
    triple_interval_index = {index: index for index in range(m)}

    # -------------------------------------------------- competing events (1/interval)
    competing = [CompetingEvent(id=f"c{index}", interval_id=f"g{index}") for index in range(m)]

    # ----------------------------------------------------------------- users
    users: List[User] = []
    for dimension in range(3):
        for element in range(n):
            users.append(User(id=f"u-{DIMENSIONS[dimension]}{element}"))
    for filler in range(num_fillers):
        users.append(User(id=f"u-f{filler}"))
    num_users = len(users)
    num_events = len(events)

    # -------------------------------------------------------------- interest µ
    interest = np.zeros((num_users, num_events), dtype=np.float64)
    for dimension in range(3):
        for element in range(n):
            user_index = dimension * n + element
            interest[user_index, element_event_index[(dimension, element)]] = 0.25
    for filler in range(num_fillers):
        user_index = 3 * n + filler
        interest[user_index, filler_event_indices[filler]] = 0.75

    # ------------------------------------------------- competing interest µ(u, c)
    adjusted = 0.25 * (0.75 - delta) / (0.25 + delta)
    competing_interest = np.zeros((num_users, m), dtype=np.float64)
    for dimension in range(3):
        for element in range(n):
            user_index = dimension * n + element
            for triple_index, triple in enumerate(source.triples):
                in_triple = triple[dimension] == element
                competing_interest[user_index, triple_index] = adjusted if in_triple else 0.75
    # E2 users keep zero interest in every competing event.

    activity = np.ones((num_users, m), dtype=np.float64)

    instance = SESInstance(
        events=events,
        intervals=intervals,
        competing_events=competing,
        users=users,
        interest=InterestMatrix(interest, copy=False),
        competing_interest=InterestMatrix(competing_interest, copy=False),
        activity=activity,
        organizer=Organizer(name="reduction", available_resources=3.0),
        name=f"3dm3-reduction-n{n}-m{m}",
        metadata={"delta": delta, "n": n, "m": m},
    )
    return ReductionArtifacts(
        instance=instance,
        source=source,
        delta=delta,
        element_event_index=element_event_index,
        filler_event_indices=filler_event_indices,
        triple_interval_index=triple_interval_index,
        k=3 * n + num_fillers,
    )


def schedule_from_matching(artifacts: ReductionArtifacts, matching: Sequence[int]) -> Schedule:
    """Build the canonical SES schedule corresponding to a 3DM-3 matching.

    The three element-events of every matched triple are assigned to the
    triple's interval; the filler events are assigned, one each, to distinct
    unmatched intervals.

    Raises
    ------
    HardnessError
        If the triple indices do not form a matching or there are not enough
        unmatched intervals for the filler events.
    """
    source = artifacts.source
    if not is_matching(source, matching):
        raise HardnessError("the provided triple indices do not form a matching")

    schedule = Schedule()
    matched_intervals = set()
    for triple_index in matching:
        interval_index = artifacts.triple_interval_index[triple_index]
        matched_intervals.add(interval_index)
        triple = source.triples[triple_index]
        for dimension, element in enumerate(triple):
            event_index = artifacts.element_event_index[(dimension, element)]
            schedule.add(event_index, interval_index)

    free_intervals = [
        interval_index
        for interval_index in range(artifacts.instance.num_intervals)
        if interval_index not in matched_intervals
    ]
    if len(free_intervals) < len(artifacts.filler_event_indices):
        raise HardnessError(
            "not enough unmatched intervals to place the filler events "
            f"({len(free_intervals)} free, {len(artifacts.filler_event_indices)} fillers)"
        )
    for filler_event_index, interval_index in zip(artifacts.filler_event_indices, free_intervals):
        schedule.add(filler_event_index, interval_index)
    return schedule


def utility_of_matching_schedule(artifacts: ReductionArtifacts, matching: Sequence[int]) -> float:
    """Closed-form utility of the canonical schedule of a matching (proof sketch value)."""
    if not is_matching(artifacts.source, matching):
        raise HardnessError("the provided triple indices do not form a matching")
    return artifacts.expected_utility(len(list(matching)))
