"""RAND — the random-assignment baseline (§4.1).

RAND assigns events to intervals uniformly at random subject to feasibility.
It performs no score computations at all; its utility is the floor every
informed method should beat (and the gap grows with ``k`` in the paper's
plots, because a larger ``k`` gives the greedy methods more chances to pick
better-than-random assignments).
"""

from __future__ import annotations

import random

from repro.algorithms.base import BaseScheduler
from repro.core.schedule import Schedule


class RandScheduler(BaseScheduler):
    """The RAND baseline: feasible but uninformed random assignments."""

    name = "RAND"

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        checker = self.checker
        counter = self.counter
        rng = random.Random(self._seed)
        schedule = self._start_schedule()

        event_order = list(range(instance.num_events))
        rng.shuffle(event_order)
        interval_indices = list(range(instance.num_intervals))

        for event_index in event_order:
            if len(schedule) >= k:
                break
            if schedule.is_scheduled(event_index):
                continue
            candidate_intervals = interval_indices[:]
            rng.shuffle(candidate_intervals)
            for interval_index in candidate_intervals:
                counter.count_examined()
                if checker.is_feasible(event_index, interval_index):
                    schedule.add(event_index, interval_index)
                    checker.commit(event_index, interval_index)
                    counter.count_selection()
                    break
        return schedule
