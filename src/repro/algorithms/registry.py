"""Name-based registry of the available schedulers.

The experiment harness, the CLI and downstream users refer to algorithms by
the names the paper uses (``"ALG"``, ``"INC"``, ``"HOR"``, ``"HOR-I"``,
``"TOP"``, ``"RAND"``, plus ``"EXACT"`` for the brute-force verifier).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.algorithms.ablations import AlgOrganizedScheduler, IncUpdatesOnlyScheduler
from repro.algorithms.alg import AlgScheduler
from repro.algorithms.base import BaseScheduler, SchedulerResult
from repro.algorithms.exact import ExactScheduler
from repro.algorithms.hor import HorScheduler
from repro.algorithms.hor_i import HorIScheduler
from repro.algorithms.inc import IncScheduler
from repro.algorithms.rand import RandScheduler
from repro.algorithms.top import TopScheduler
from repro.core.counters import ComputationCounter
from repro.core.errors import SolverError
from repro.core.execution import ExecutionConfig, merge_legacy_execution
from repro.core.instance import SESInstance

_REGISTRY: Dict[str, Type[BaseScheduler]] = {
    AlgScheduler.name: AlgScheduler,
    IncScheduler.name: IncScheduler,
    HorScheduler.name: HorScheduler,
    HorIScheduler.name: HorIScheduler,
    TopScheduler.name: TopScheduler,
    RandScheduler.name: RandScheduler,
    ExactScheduler.name: ExactScheduler,
    IncUpdatesOnlyScheduler.name: IncUpdatesOnlyScheduler,
    AlgOrganizedScheduler.name: AlgOrganizedScheduler,
}

#: Canonical ordering used by reports (mirrors the paper's legends).
PAPER_METHODS: List[str] = ["ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"]

#: The three algorithms contributed by the paper.
CONTRIBUTED_METHODS: List[str] = ["INC", "HOR", "HOR-I"]


def available_schedulers() -> List[str]:
    """Names of every registered scheduler."""
    return sorted(_REGISTRY)


def get_scheduler(name: str) -> Type[BaseScheduler]:
    """Return the scheduler class registered under ``name`` (case-insensitive).

    ``"HORI"`` and ``"HOR_I"`` are accepted aliases for ``"HOR-I"``.
    """
    canonical = name.strip().upper().replace("_", "-")
    if canonical == "HORI":
        canonical = "HOR-I"
    try:
        return _REGISTRY[canonical]
    except KeyError:
        raise SolverError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from None


def register_scheduler(cls: Type[BaseScheduler], *, replace: bool = False) -> Type[BaseScheduler]:
    """Register a custom scheduler class (usable as a decorator).

    Raises
    ------
    SolverError
        If a scheduler with the same name exists and ``replace`` is False.
    """
    if not replace and cls.name in _REGISTRY:
        raise SolverError(f"a scheduler named {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def run_scheduler(
    name: str,
    instance: SESInstance,
    k: int,
    *,
    seed: Optional[int] = None,
    counter: Optional[ComputationCounter] = None,
    execution: Optional[ExecutionConfig] = None,
    locked: Optional[Sequence[Tuple[int, int]]] = None,
    backend: Optional[str] = None,
    chunk_size: Optional[int] = None,
    workers: Optional[int] = None,
) -> SchedulerResult:
    """Instantiate and run a scheduler by name (one-call convenience helper).

    ``execution`` selects the scoring engine's execution backend and knobs
    (:class:`~repro.core.execution.ExecutionConfig`; ``None`` uses the library
    defaults).  ``locked`` pins assignments ``(event_index, interval_index)``
    into the schedule before the algorithm runs (see
    :class:`~repro.algorithms.base.BaseScheduler`).  The legacy ``backend=`` /
    ``chunk_size=`` / ``workers=`` keyword arguments still work but are
    deprecated.
    """
    execution = merge_legacy_execution(
        execution,
        backend=backend,
        chunk_size=chunk_size,
        workers=workers,
        owner="run_scheduler",
    )
    scheduler_cls = get_scheduler(name)
    scheduler = scheduler_cls(
        instance,
        counter=counter,
        seed=seed,
        execution=execution,
        locked=tuple(tuple(pair) for pair in locked) if locked else None,
    )
    return scheduler.schedule(k)
