"""HOR — the Horizontal Assignment algorithm (paper §3.3).

HOR trades a (usually negligible) loss of solution quality for a drastic
reduction in score updates.  It works in *rounds*: at the beginning of a
round it computes the score of every currently valid assignment, and during
the round it selects at most **one** assignment per interval — the interval's
top assignment, processed in globally decreasing score order (the *horizontal
selection policy*).  Because an interval receives at most one new event per
round, the scores computed at the beginning of the round remain exact for
every interval that has not yet been selected into, so no updates are needed
until the next round.

When ``k ≤ |T|`` a single round suffices and HOR performs only the initial
``|E|·|T|`` score computations (Proposition 4).  The paper's Fig. 5–9 show
HOR matching ALG's utility in more than 70 % of runs, with an average
difference of 0.008 % otherwise.
"""

from __future__ import annotations

from typing import List, Optional

from repro.algorithms.base import AssignmentEntry, BaseScheduler
from repro.core.schedule import Schedule


class HorScheduler(BaseScheduler):
    """Horizontal Assignment algorithm (HOR)."""

    name = "HOR"

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        counter = self.counter
        schedule = self._start_schedule()

        num_intervals = instance.num_intervals
        rounds = 0

        while len(schedule) < k:
            rounds += 1
            initial_round = rounds == 1

            # Recompute the scores of every valid assignment for this round
            # (one batched evaluation per interval over its feasible events).
            lists = self._generate_all_entries(
                initial=initial_round, only_valid=True, schedule=schedule
            )

            # M: per-interval cursor into the sorted list (the interval's current top).
            cursors = [0] * num_intervals
            # Intervals that already received an event this round are closed.
            closed = [False] * num_intervals

            selected_this_round = 0
            while len(schedule) < k:
                best: Optional[AssignmentEntry] = None
                best_interval = -1
                for interval_index in range(num_intervals):
                    if closed[interval_index]:
                        continue
                    entry = self._advance_cursor(lists, cursors, interval_index, schedule)
                    if entry is None:
                        continue
                    counter.count_examined()
                    if best is None or entry.sort_key() < best.sort_key():
                        best = entry
                        best_interval = interval_index
                if best is None:
                    break
                self._select_assignment(schedule, best.event_index, best_interval, best.score)
                closed[best_interval] = True
                selected_this_round += 1

            if selected_this_round == 0:
                break  # No valid assignment remains: a further round would not help.

        self.note("rounds", rounds)
        return schedule

    def _advance_cursor(
        self,
        lists: List[List[AssignmentEntry]],
        cursors: List[int],
        interval_index: int,
        schedule: Schedule,
    ) -> Optional[AssignmentEntry]:
        """Move the interval's cursor past entries whose event got scheduled.

        Entries were generated as feasible at the start of the round and the
        interval has not received a new event since (otherwise it would be
        closed), so only the "event already scheduled" condition can
        invalidate them mid-round.
        """
        entries = lists[interval_index]
        position = cursors[interval_index]
        while position < len(entries) and schedule.is_scheduled(entries[position].event_index):
            self.counter.count_examined()
            position += 1
        cursors[interval_index] = position
        if position >= len(entries):
            return None
        return entries[position]
