"""Common machinery shared by every SES scheduler.

:class:`BaseScheduler` implements the template method :meth:`BaseScheduler.schedule`
(timing, counter management, result assembly, output validation) and provides
the helpers used by the concrete algorithms:

* a deterministic total order over assignments — higher score first, then
  smaller event index, then smaller interval index — so that the
  ALG/INC and HOR/HOR-I equivalence propositions of the paper hold exactly
  even in the presence of ties;
* :class:`AssignmentEntry`, the mutable record the interval-organised
  algorithms keep per (event, interval) pair.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.constraints import ConstraintChecker
from repro.core.counters import ComputationCounter
from repro.core.errors import SolverError
from repro.core.execution import (
    DEFAULT_BACKEND,
    DEFAULT_PLAN,
    ExecutionConfig,
    merge_legacy_execution,
)
from repro.core.instance import SESInstance
from repro.core.schedule import Schedule
from repro.core.storage import DEFAULT_STORAGE
from repro.core.scoring import ScoringEngine

#: Number of stale scores fetched per speculative bulk-refresh call.  Small
#: enough that a walk cut short by the Φ bound wastes little work, large
#: enough to amortise the vectorised call overhead over many pairs.
REFRESH_BLOCK_SIZE = 64


@dataclass
class SchedulerResult:
    """The outcome of one scheduler run.

    Attributes
    ----------
    algorithm:
        Registry name of the scheduler (``"ALG"``, ``"INC"``, …).
    k:
        The requested number of events to schedule.
    schedule:
        The produced (feasible) schedule; may contain fewer than ``k``
        assignments when the instance does not admit ``k`` feasible ones.
    utility:
        Total utility Ω(S) of the schedule (Eq. 3).
    net_utility:
        Utility minus organisation costs (equals ``utility`` for paper-style
        instances where every cost is zero).
    elapsed_seconds:
        Wall-clock time of the run.
    counters:
        Snapshot of the :class:`~repro.core.counters.ComputationCounter`.
    extras:
        Algorithm-specific diagnostics (e.g. number of rounds for HOR).
    backend:
        Name of the execution backend the run used (``"scalar"``,
        ``"batch"``, ``"parallel"``, ``"process"``, …) — recorded so harness
        tables can tell backend rows apart.
    storage:
        Registry name of the instance's interest-matrix storage the run used
        (``"dense"``, ``"sparse"``, ``"mmap"``, …) — recorded so harness
        tables can tell storage rows apart.  Every storage produces
        bit-identical schedules and counters; only footprint and speed
        differ.
    workers:
        The resolved worker count of the run's engine (1 unless a pooled
        backend was asked to fan out).
    cluster:
        The remote worker addresses of a ``cluster``-backend run (the empty
        tuple for in-process runs) — recorded so harness tables can tell a
        distributed row from a degraded local one.
    cluster_stats:
        The cluster backend's dispatch counters
        (:meth:`~repro.core.execution.ExecutionBackend.stats`): per-address
        tasks / batches / round-trips / bytes, plus the locally-computed
        column count.  Empty for in-process runs.
    task_batch:
        The resolved :attr:`~repro.core.execution.ExecutionConfig.task_batch`
        knob of a cluster run (``None`` means the batch size was auto-derived
        per call; also ``None`` for in-process runs).
    plan:
        Registry name of the scoring plan the run used (``"direct"``,
        ``"blocked"``, …) — recorded so harness tables can tell plan rows
        apart.  Every plan produces bit-identical schedules and counters;
        only speed differs.
    service:
        Per-session statistics of a run performed through the online
        scheduling service (:mod:`repro.service`): mutations applied,
        intervals/events invalidated, score computations saved vs a cold
        solve.  Empty for one-shot runs.
    """

    algorithm: str
    k: int
    schedule: Schedule
    utility: float
    net_utility: float
    elapsed_seconds: float
    counters: Dict[str, int]
    extras: Dict[str, object] = field(default_factory=dict)
    backend: str = DEFAULT_BACKEND
    workers: int = 1
    cluster: Tuple[str, ...] = ()
    cluster_stats: Dict[str, object] = field(default_factory=dict)
    task_batch: Optional[int] = None
    storage: str = DEFAULT_STORAGE
    plan: str = DEFAULT_PLAN
    service: Dict[str, object] = field(default_factory=dict)

    @property
    def num_scheduled(self) -> int:
        """Number of assignments actually produced."""
        return len(self.schedule)

    @property
    def score_computations(self) -> int:
        """Number of assignment-score evaluations performed."""
        return int(self.counters.get("score_computations", 0))

    @property
    def user_computations(self) -> int:
        """The paper's computation metric: |U| per score evaluation."""
        return int(self.counters.get("user_computations", 0))

    @property
    def assignments_examined(self) -> int:
        """The paper's Fig. 10b search-space metric."""
        return int(self.counters.get("assignments_examined", 0))

    def _cluster_summary(self) -> object:
        """The ``cluster`` summary cell: dispatch counters for cluster runs.

        In-process runs report ``"-"``.  Cluster runs report a mapping with
        the worker addresses plus the per-run dispatch totals (tasks served
        remotely, wire batches, round-trips, bytes each way, columns computed
        locally), so harness tables and the benchmark JSON expose shipping
        overhead next to compute time.
        """
        if not self.cluster:
            return "-"
        cell: Dict[str, object] = {"workers": ",".join(self.cluster)}
        for key in (
            "tasks",
            "batches",
            "round_trips",
            "bytes_sent",
            "bytes_received",
            "local_columns",
        ):
            if key in self.cluster_stats:
                cell[key] = self.cluster_stats[key]
        return cell

    def summary(self) -> Dict[str, object]:
        """Flat dictionary used by the experiment harness and reports."""
        return {
            "algorithm": self.algorithm,
            "backend": self.backend,
            "storage": self.storage,
            "plan": self.plan,
            "workers": self.workers,
            "cluster": self._cluster_summary(),
            "task_batch": (
                (self.task_batch if self.task_batch is not None else "auto")
                if self.cluster
                else "-"
            ),
            "k": self.k,
            "scheduled": self.num_scheduled,
            "utility": self.utility,
            "net_utility": self.net_utility,
            "time_sec": self.elapsed_seconds,
            "score_computations": self.score_computations,
            "user_computations": self.user_computations,
            "assignments_examined": self.assignments_examined,
            "service": self.service or "-",
        }


class AssignmentEntry:
    """Mutable record of one candidate assignment used by INC/HOR/HOR-I.

    ``score`` is the last computed score; ``updated`` says whether that score
    reflects the current schedule (exact) or is a stale upper bound.
    """

    __slots__ = ("event_index", "interval_index", "score", "updated")

    def __init__(self, event_index: int, interval_index: int, score: float, updated: bool = True):
        self.event_index = event_index
        self.interval_index = interval_index
        self.score = score
        self.updated = updated

    def sort_key(self) -> Tuple[float, int, int]:
        """Descending-score, ascending-(event, interval) total order."""
        return (-self.score, self.event_index, self.interval_index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "+" if self.updated else "-"
        return f"α(e{self.event_index}, t{self.interval_index})={self.score:.4f}{flag}"


def better_candidate(
    first: Optional[Tuple[float, int, int]], second: Optional[Tuple[float, int, int]]
) -> Optional[Tuple[float, int, int]]:
    """Return the better of two ``(score, event, interval)`` candidates.

    ``None`` means "no candidate".  The order is the library-wide tie-break:
    larger score wins; ties go to the smaller event index, then the smaller
    interval index.
    """
    if first is None:
        return second
    if second is None:
        return first
    first_key = (-first[0], first[1], first[2])
    second_key = (-second[0], second[1], second[2])
    return first if first_key <= second_key else second


class BaseScheduler(ABC):
    """Abstract base class of every SES scheduler.

    Subclasses implement :meth:`_run`, which receives the effective ``k`` and
    must return a feasible :class:`~repro.core.schedule.Schedule`; the base
    class takes care of timing, utility evaluation and result packaging.

    Parameters
    ----------
    instance:
        The SES problem instance.
    counter:
        Optional externally-owned counter (useful to aggregate across runs);
        a fresh one is created when omitted.
    seed:
        Seed for the randomised schedulers (ignored by the deterministic ones).
    execution:
        The :class:`~repro.core.execution.ExecutionConfig` selecting the
        scoring engine's execution backend and its knobs (``None`` selects
        the library defaults).  Every backend produces identical schedules,
        utilities and counter totals — the config only decides how fast.
    locked:
        Assignments ``(event_index, interval_index)`` pinned into the
        schedule before the algorithm runs (the online service's lock
        mutations).  They are committed in deterministic sorted order against
        the schedule, the constraint checker and the scoring engine, count
        toward ``k``, and are never revisited by the algorithm — so a locked
        run is exactly the algorithm run on the residual problem, and a warm
        re-solve with the same locks matches a cold one bit for bit.
    warm_grid:
        Optional provider of a cached initial score grid: an object with a
        ``grid(engine)`` method returning the full ``|E| × |T|`` initial
        score matrix for the engine's current (post-lock) state, or ``None``
        to fall back to a fresh computation.  Because the bulk kernels'
        per-row reductions are independent of block composition, a provider
        that patches only stale rows/columns stays bit-identical to a cold
        :meth:`~repro.core.scoring.ScoringEngine.score_matrix` call.
    backend, chunk_size, workers:
        .. deprecated:: PR 4
           Legacy loose knobs, folded into ``execution`` with a
           :class:`DeprecationWarning`.  Passing them together with
           ``execution`` raises.
    """

    #: Registry name; subclasses override.
    name: str = "base"

    def __init__(
        self,
        instance: SESInstance,
        *,
        counter: Optional[ComputationCounter] = None,
        seed: Optional[int] = None,
        execution: Optional[ExecutionConfig] = None,
        locked: Optional[Tuple[Tuple[int, int], ...]] = None,
        warm_grid: Optional[object] = None,
        backend: Optional[str] = None,
        chunk_size: Optional[int] = None,
        workers: Optional[int] = None,
    ) -> None:
        self._instance = instance
        self._counter = counter if counter is not None else ComputationCounter()
        if self._counter.num_users == 0:
            self._counter.num_users = instance.num_users
        self._seed = seed
        execution = merge_legacy_execution(
            execution,
            backend=backend,
            chunk_size=chunk_size,
            workers=workers,
            owner=type(self).__name__,
        )
        self._execution = execution.resolve(instance.num_users)
        self._locked = self._validate_locked(locked)
        self._warm_grid = warm_grid
        self._engine: Optional[ScoringEngine] = None
        self._checker: Optional[ConstraintChecker] = None

    def _validate_locked(
        self, locked: Optional[Tuple[Tuple[int, int], ...]]
    ) -> Tuple[Tuple[int, int], ...]:
        """Index-validate and deterministically order the locked assignments."""
        if not locked:
            return ()
        pairs = sorted((int(event), int(interval)) for event, interval in locked)
        seen_events: set = set()
        for event_index, interval_index in pairs:
            if not 0 <= event_index < self._instance.num_events:
                raise SolverError(
                    f"locked event index {event_index} outside "
                    f"[0, {self._instance.num_events})"
                )
            if not 0 <= interval_index < self._instance.num_intervals:
                raise SolverError(
                    f"locked interval index {interval_index} outside "
                    f"[0, {self._instance.num_intervals})"
                )
            if event_index in seen_events:
                raise SolverError(
                    f"event {event_index} appears in more than one locked assignment"
                )
            seen_events.add(event_index)
        return tuple(pairs)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    @property
    def instance(self) -> SESInstance:
        """The instance being scheduled."""
        return self._instance

    @property
    def counter(self) -> ComputationCounter:
        """The counter recording this scheduler's work."""
        return self._counter

    @property
    def execution(self) -> ExecutionConfig:
        """The resolved execution configuration of the scheduler's engine."""
        return self._execution

    @property
    def backend(self) -> str:
        """Name of the execution backend the scheduler's engine will use."""
        return self._execution.backend

    @property
    def chunk_size(self) -> int:
        """Events per vectorised pass of the engine's bulk evaluations."""
        return self._execution.chunk_size

    @property
    def workers(self) -> int:
        """Worker count of the pooled backends (1 for the serial backends)."""
        return self._execution.workers

    def schedule(self, k: int) -> SchedulerResult:
        """Produce a feasible schedule of (up to) ``k`` events.

        Raises
        ------
        SolverError
            If ``k`` is not a positive integer.
        """
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise SolverError(f"k must be a positive integer, got {k!r}")
        effective_k = min(k, self._instance.num_events)
        if len(self._locked) > effective_k:
            raise SolverError(
                f"k={k} cannot cover the {len(self._locked)} locked assignments"
            )

        self._engine = ScoringEngine(
            self._instance,
            counter=self._counter,
            execution=self._execution,
        )
        self._checker = ConstraintChecker(self._instance)
        self._extras: Dict[str, object] = {}

        try:
            started = time.perf_counter()
            schedule = self._run(effective_k)
            elapsed = time.perf_counter() - started

            utility = self._engine.evaluate_schedule(schedule)
            net_utility = self._engine.evaluate_schedule(schedule, include_costs=True)
            # Snapshot the backend's dispatch counters before close() — the
            # cluster backend keys them by worker address (not link objects),
            # so the snapshot stays valid after the connections are gone.
            backend_stats = self._engine.execution_backend.stats()
        finally:
            # Release the pooled backends' workers (and the process backend's
            # shared-memory block) deterministically — the engine stays usable
            # (a later bulk call recreates the pool), but cleanup must not
            # depend on GC reaching __del__.
            self._engine.close()
        return SchedulerResult(
            algorithm=self.name,
            k=k,
            schedule=schedule,
            utility=utility,
            net_utility=net_utility,
            elapsed_seconds=elapsed,
            counters=self._counter.snapshot(),
            extras=dict(self._extras),
            backend=self._execution.backend,
            workers=self._execution.workers,
            cluster=self._execution.workers_addr or (),
            cluster_stats=backend_stats if self._execution.workers_addr else {},
            task_batch=self._execution.task_batch,
            storage=self._instance.storage,
            plan=self._execution.plan,
        )

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _run(self, k: int) -> Schedule:
        """Produce the schedule; implemented by each algorithm."""

    @property
    def engine(self) -> ScoringEngine:
        """The scoring engine of the current run."""
        if self._engine is None:
            raise SolverError("engine is only available inside schedule()")
        return self._engine

    @property
    def checker(self) -> ConstraintChecker:
        """The constraint checker of the current run."""
        if self._checker is None:
            raise SolverError("constraint checker is only available inside schedule()")
        return self._checker

    def note(self, key: str, value: object) -> None:
        """Record an algorithm-specific diagnostic in the result's ``extras``."""
        self._extras[key] = value

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _start_schedule(self) -> Schedule:
        """A fresh schedule pre-seeded with the run's locked assignments.

        Every algorithm's ``_run`` starts here instead of ``Schedule()``:
        the locked pairs are committed in deterministic sorted order against
        the schedule, the constraint checker and the scoring engine, so the
        algorithm then works on the residual problem with the locked state
        already applied — identically in cold and warm runs, which is what
        keeps the two bit-identical.
        """
        schedule = Schedule()
        for event_index, interval_index in self._locked:
            schedule.add(event_index, interval_index)
            self.checker.commit(event_index, interval_index)
            self.engine.apply(event_index, interval_index)
        return schedule

    def _select_assignment(
        self, schedule: Schedule, event_index: int, interval_index: int, score: float
    ) -> None:
        """Commit a selection: schedule, constraint state and scoring state."""
        schedule.add(event_index, interval_index)
        self.checker.commit(event_index, interval_index)
        self.engine.apply(event_index, interval_index, score=score)
        self._counter.count_selection()

    def _initial_score_grid(self, *, initial: bool = True):
        """The full |E|×|T| score matrix, counted as generated assignments.

        One :meth:`~repro.core.scoring.ScoringEngine.score_matrix` call under
        the active backend (the process backend shards its columns across the
        pool); every (event, interval) pair is recorded as one generated
        assignment and one score computation, as in per-pair generation.

        When a warm-grid provider was supplied it is consulted first (for the
        initial generation only): a provided grid holds exactly the values a
        fresh ``score_matrix`` call would return (see the ``warm_grid``
        constructor parameter), so the run stays bit-identical while skipping
        the score computations the provider already had cached.
        """
        if initial and self._warm_grid is not None:
            grid = self._warm_grid.grid(self.engine)
            if grid is not None:
                self._counter.count_generated(int(grid.size))
                return grid
        grid = self.engine.score_matrix(initial=initial)
        self._counter.count_generated(int(grid.size))
        return grid

    def _generate_all_entries(
        self, *, initial: bool = True, only_valid: bool = False, schedule: Optional[Schedule] = None
    ) -> List[List[AssignmentEntry]]:
        """Compute scores for every (event, interval) pair, grouped per interval.

        ``only_valid`` restricts generation to assignments that are currently
        valid (event unscheduled and feasible) — HOR's per-round regeneration —
        while the default generates everything (ALG/INC initialisation).

        Scores are obtained from the engine's bulk API: the full-grid default
        goes through one :meth:`~repro.core.scoring.ScoringEngine.score_matrix`
        call (which the process backend shards per-interval across its pool),
        while the restricted per-round case makes one
        :meth:`~repro.core.scoring.ScoringEngine.interval_scores` call per
        interval.  Either way the counter records one score computation per
        generated (event, interval) pair, and the scores are identical —
        both paths run the same per-interval kernel of the active backend.
        """
        num_intervals = self._instance.num_intervals
        num_events = self._instance.num_events
        per_interval: List[List[AssignmentEntry]] = [[] for _ in range(num_intervals)]
        if not only_valid:
            grid = self._initial_score_grid(initial=initial)
            for interval_index in range(num_intervals):
                column = grid[:, interval_index]
                per_interval[interval_index] = [
                    AssignmentEntry(event_index, interval_index, float(column[event_index]))
                    for event_index in range(num_events)
                ]
                per_interval[interval_index].sort(key=AssignmentEntry.sort_key)
            return per_interval
        candidate_events = [
            event_index
            for event_index in range(num_events)
            if schedule is None or not schedule.is_scheduled(event_index)
        ]
        # A warm-grid provider covers the initial generation: a per-interval
        # bulk call scores a subset of one full-grid column with the same
        # per-row kernel reduction, so slicing the provided grid returns the
        # same bits a fresh interval_scores call would.
        warm = None
        if initial and self._warm_grid is not None:
            warm = self._warm_grid.grid(self.engine)
        for interval_index in range(num_intervals):
            events = [
                event_index
                for event_index in candidate_events
                if self.checker.is_feasible(event_index, interval_index)
            ]
            if not events:
                continue
            if warm is not None:
                scores = warm[events, interval_index]
            else:
                # Passing None lets the engine score its precomputed full
                # event set without materialising a per-interval index copy.
                selector = None if len(events) == num_events else events
                scores = self.engine.interval_scores(interval_index, selector, initial=initial)
            self._counter.count_generated(len(events))
            per_interval[interval_index] = [
                AssignmentEntry(event_index, interval_index, float(score))
                for event_index, score in zip(events, scores)
            ]
        for entries in per_interval:
            entries.sort(key=AssignmentEntry.sort_key)
        return per_interval

    def _stale_score_fetcher(self, interval_index: int, pending: List[int]):
        """A ``fetch(event_index) -> float`` closure resolving stale scores in bulk.

        ``pending`` is the (speculative) list of stale, currently-valid events
        the caller's refresh walk *may* recompute at ``interval_index``, in
        walk order.  Under the bulk strategies their exact scores are fetched
        from :meth:`~repro.core.scoring.ScoringEngine.refresh_scores` in
        blocks of :data:`REFRESH_BLOCK_SIZE` with ``count=False``; each score
        the walk actually consumes is then counted as one update computation.
        A speculatively fetched score the walk never consumes is discarded
        without ever being observed by the algorithm, so schedules, utilities
        and every counter total stay bit-identical to the scalar reference,
        which computes (and counts) one pair at a time.

        Under the scalar backend — or on a cache miss — ``fetch`` degrades to
        one :meth:`~repro.core.scoring.ScoringEngine.assignment_score` call,
        i.e. exactly the reference behaviour.
        """
        engine = self.engine
        counter = self._counter
        if not engine.is_bulk or not pending:
            def fetch_scalar(event_index: int) -> float:
                return engine.assignment_score(event_index, interval_index)

            return fetch_scalar

        cache: Dict[int, float] = {}
        position = 0

        def fetch(event_index: int) -> float:
            nonlocal position
            score = cache.pop(event_index, None)
            while score is None and position < len(pending):
                block = pending[position : position + REFRESH_BLOCK_SIZE]
                position += len(block)
                values = engine.refresh_scores(interval_index, block, count=False)
                cache.update(zip(block, (float(value) for value in values)))
                score = cache.pop(event_index, None)
            if score is None:
                return engine.assignment_score(event_index, interval_index)
            counter.count_score(initial=False)
            return score

        return fetch
