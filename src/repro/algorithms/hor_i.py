"""HOR-I — Horizontal Assignment with Incremental Updating (paper §3.4).

HOR-I follows HOR's horizontal selection policy (one event per interval per
round) but replaces HOR's full per-round score recomputation with the
incremental, bound-pruned updating scheme of INC:

* the per-interval assignment lists built in the first round are kept across
  rounds (entries are dropped lazily once their event is scheduled or they
  become infeasible);
* when an interval received an event in a previous round its scores are
  stale; at the start of the next round the interval is refreshed by walking
  its score-sorted list and recomputing only the entries whose stale score is
  at least the interval's running bound Φ (stale scores are upper bounds, so
  everything below Φ cannot be the interval's top);
* during the round, when an interval's top must be replaced (its event was
  just scheduled for another interval), the replacement is found lazily: the
  head of the list is recomputed only if it is stale, repeatedly, until an
  exact valid head emerges.

HOR-I always returns exactly the same schedule as HOR (Proposition 6) — the
bound pruning never hides an assignment that HOR would have chosen — while
performing at most as many score computations.  When ``k ≤ |T|`` only one
round is needed and HOR-I degenerates to HOR.

Under the batch scoring backend both incremental paths are batched: the
round-start refresh collects the stale prefix its walk can reach and resolves
it through the engine's bulk
:meth:`~repro.core.scoring.ScoringEngine.refresh_scores` API, and the lazy
head resolution of :meth:`HorIScheduler._interval_top` fetches the run of
stale heads in blocks instead of one score per head.  Both count one update
computation per score the walk actually consumes, so schedules, utilities and
counters stay bit-identical to the scalar reference.  ``_interval_top`` also
replaces the former ``pop(0)`` + ``bisect.insort`` bookkeeping (O(n) per
dropped head, quadratic over a run) with a cursor over the sorted list plus a
heap of freshly resolved entries, merged back once per call.

During the selection phase the engine's *structural* per-interval bound
(:meth:`~repro.core.scoring.ScoringEngine.interval_score_bound`) provides an
extra pruning layer on top of the stale-score bounds: an open interval whose
structural bound is safely below the best candidate found so far in the
sweep cannot produce a better top, so its lazy head resolution is skipped
outright.  The bound is sound and identical across scoring backends,
storage tiers and scoring plans, so schedules, utilities, scores and
counter totals remain bit-identical across those axes — only the number of
score recomputations drops.  Construct the scheduler with
``use_interval_bounds=False`` to disable the structural check (the
benchmark baseline).
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.algorithms.base import AssignmentEntry, BaseScheduler
from repro.core.schedule import Schedule


class HorIScheduler(BaseScheduler):
    """Horizontal Assignment with Incremental Updating (HOR-I)."""

    name = "HOR-I"

    def __init__(self, *args, use_interval_bounds: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Apply the engine's structural per-interval score bound to skip the
        #: lazy head resolution of hopeless intervals during selection.
        #: Sound, so the schedule is unchanged; disabling it only serves as
        #: the benchmark baseline.
        self._use_interval_bounds = bool(use_interval_bounds)

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        counter = self.counter
        schedule = self._start_schedule()

        num_intervals = instance.num_intervals
        lists: List[List[AssignmentEntry]] = [[] for _ in range(num_intervals)]
        # has_stale[i]: interval i contains entries whose score predates its last change.
        has_stale = [False] * num_intervals

        rounds = 0
        while len(schedule) < k:
            rounds += 1

            if rounds == 1:
                # First round: generate and score every valid assignment (like
                # HOR) — one batched evaluation per interval.
                lists = self._generate_all_entries(
                    initial=True, only_valid=True, schedule=schedule
                )
            else:
                # Later rounds: refresh only the intervals whose scores went stale,
                # and within them only the entries that can still be the top.
                for interval_index in range(num_intervals):
                    if has_stale[interval_index]:
                        self._refresh_interval(interval_index, lists, schedule)
                        has_stale[interval_index] = any(
                            not entry.updated for entry in lists[interval_index]
                        )

            # ---------------- selection phase (horizontal policy) ----------------
            closed = [False] * num_intervals
            selected_this_round = 0
            while len(schedule) < k:
                best: Optional[AssignmentEntry] = None
                best_interval = -1
                for interval_index in range(num_intervals):
                    if closed[interval_index]:
                        continue
                    if (
                        best is not None
                        and self._use_interval_bounds
                        and self.engine.interval_score_bound(interval_index)
                        < best.score
                        - 4.0 * self.engine.score_noise_tolerance(interval_index)
                    ):
                        # Structural bound caps every fresh score in this
                        # interval, so its top — exact once resolved — cannot
                        # beat the sweep's current best.  The 4× noise margin
                        # keeps every potential tie candidate inside the
                        # resolved set, so the tie-break (and the schedule)
                        # is unchanged; only the lazy resolution work is
                        # saved.
                        counter.bump("phi_bound_interval_skips")
                        continue
                    entry = self._interval_top(interval_index, lists, schedule)
                    if entry is None:
                        continue
                    counter.count_examined()
                    if best is None or entry.sort_key() < best.sort_key():
                        best = entry
                        best_interval = interval_index
                if best is None:
                    break
                self._select_assignment(schedule, best.event_index, best_interval, best.score)
                closed[best_interval] = True
                selected_this_round += 1
                # The interval's remaining scores now predate its new state.
                remaining = [
                    entry
                    for entry in lists[best_interval]
                    if entry.event_index != best.event_index
                ]
                for entry in remaining:
                    entry.updated = False
                lists[best_interval] = remaining
                has_stale[best_interval] = bool(remaining)

            if selected_this_round == 0:
                break

        self.note("rounds", rounds)
        return schedule

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _refresh_interval(
        self,
        interval_index: int,
        lists: List[List[AssignmentEntry]],
        schedule: Schedule,
    ) -> None:
        """Round-start incremental refresh of one stale interval (Algorithm 3, lines 9–20).

        Walks the score-sorted list keeping a running bound Φ (the best exact
        score recomputed so far).  A stale entry is recomputed only while its
        stale score is at least Φ minus the engine's per-score floating-point
        noise bound (stale scores over-estimate true scores only up to
        rounding); the walk stops at the first stale entry below that cut.

        Under the batch backend the stale prefix the walk can reach is
        resolved through the bulk refresh API in blocks; the fetcher counts
        exactly the scores the walk consumes.
        """
        counter = self.counter
        checker = self.checker
        tolerance = self.engine.score_noise_tolerance(interval_index)
        entries = lists[interval_index]
        fetch = self._stale_score_fetcher(
            interval_index, self._stale_prefix(interval_index, entries, schedule)
        )
        kept: List[AssignmentEntry] = []
        phi: Optional[float] = None
        stop_index = len(entries)

        for position, entry in enumerate(entries):
            counter.count_examined()
            if not entry.updated and phi is not None and entry.score < phi - tolerance:
                stop_index = position
                break
            if schedule.is_scheduled(entry.event_index) or not checker.is_feasible(
                entry.event_index, interval_index
            ):
                continue  # drop invalid entries met in the refreshed prefix
            if not entry.updated:
                entry.score = fetch(entry.event_index)
                entry.updated = True
            if phi is None or entry.score > phi:
                phi = entry.score
            kept.append(entry)

        kept.extend(entries[stop_index:])
        kept.sort(key=AssignmentEntry.sort_key)
        lists[interval_index] = kept

    def _stale_prefix(
        self,
        interval_index: int,
        entries: List[AssignmentEntry],
        schedule: Schedule,
    ) -> List[int]:
        """Stale, valid events the refresh walk can reach, in walk order.

        The collection keeps a *known* bound — the best exact score among the
        already-updated valid entries seen so far — and stops at the first
        stale entry below it.  The walk's actual Φ also absorbs freshly
        recomputed scores, so it is at least the known bound and the walk
        stops at or before the collected prefix: the collection is a superset
        of what the walk can consume.  Pure bookkeeping — no counter side
        effects.  Skipped under the scalar backend.
        """
        if not self.engine.is_bulk:
            return []
        checker = self.checker
        tolerance = self.engine.score_noise_tolerance(interval_index)
        known_bound: Optional[float] = None
        pending: List[int] = []
        for entry in entries:
            if (
                not entry.updated
                and known_bound is not None
                and entry.score < known_bound - tolerance
            ):
                break
            if schedule.is_scheduled(entry.event_index) or not checker.is_feasible(
                entry.event_index, interval_index
            ):
                continue
            if entry.updated:
                if known_bound is None or entry.score > known_bound:
                    known_bound = entry.score
            else:
                pending.append(entry.event_index)
        return pending

    def _interval_top(
        self,
        interval_index: int,
        lists: List[List[AssignmentEntry]],
        schedule: Schedule,
    ) -> Optional[AssignmentEntry]:
        """Exact, valid top assignment of one interval, resolving stale heads lazily.

        Invalid heads (event already scheduled, or no longer feasible) are
        dropped; a stale head is recomputed and competes at its exact score.
        Because stale scores are upper bounds, once the head is exact and
        valid it is guaranteed to be the interval's true top — up to the
        floating-point noise of a score: a deeper stale entry whose stale
        score is within the engine's noise bound of the head could still beat
        it once resolved, so such entries are resolved (and compete through
        the heap) before the head is trusted.

        The head of the interval is the better of the sorted list's cursor
        position and the top of a heap holding the entries resolved during
        this call — dropping a head advances the cursor (O(1)) and resolving
        one pushes onto the heap (O(log r)), instead of the former
        ``pop(0)`` + ``bisect.insort`` pair that shifted the whole list per
        head and went quadratic over a run of stale or invalid heads.  The
        heap and the list tail are merged back once, on exit.  Runs of stale
        heads are recomputed in speculative blocks via the bulk refresh API;
        consumed scores are counted one by one, so every counter total
        matches the scalar reference exactly.
        """
        counter = self.counter
        checker = self.checker
        tolerance = self.engine.score_noise_tolerance(interval_index)
        entries = lists[interval_index]
        start = 0
        resolved: List[Tuple[Tuple[float, int, int], AssignmentEntry]] = []
        fetch = None
        result: Optional[AssignmentEntry] = None

        while start < len(entries) or resolved:
            head: Optional[AssignmentEntry] = entries[start] if start < len(entries) else None
            if resolved and (head is None or resolved[0][0] < head.sort_key()):
                head = resolved[0][1]
                from_heap = True
            else:
                from_heap = False
            counter.count_examined()
            if schedule.is_scheduled(head.event_index) or not checker.is_feasible(
                head.event_index, interval_index
            ):
                if from_heap:
                    heapq.heappop(resolved)
                else:
                    start += 1
                continue
            if head.updated:
                # Noise guard: a deeper stale, valid entry whose stale score
                # is within the per-score rounding bound of the head's exact
                # score could still beat it once resolved.  Resolve the first
                # such entry and re-compete instead of trusting the head.
                blocker_position = self._noise_blocker(
                    entries,
                    start if from_heap else start + 1,
                    head.score - tolerance,
                    interval_index,
                    schedule,
                )
                if blocker_position is not None:
                    blocker = entries[blocker_position]
                    counter.count_examined()
                    if fetch is None:
                        fetch = self._stale_score_fetcher(
                            interval_index,
                            self._stale_run(interval_index, entries, schedule, start),
                        )
                    blocker.score = fetch(blocker.event_index)
                    blocker.updated = True
                    del entries[blocker_position]
                    heapq.heappush(resolved, (blocker.sort_key(), blocker))
                    continue
                result = head
                break
            # Stale, valid list head: resolve it from the speculative block
            # cache (built lazily, at most once per call) and let it compete
            # at its exact score via the heap.
            if fetch is None:
                fetch = self._stale_score_fetcher(
                    interval_index, self._stale_run(interval_index, entries, schedule, start)
                )
            head.score = fetch(head.event_index)
            head.updated = True
            start += 1
            heapq.heappush(resolved, (head.sort_key(), head))

        if resolved:
            exact = [item[1] for item in sorted(resolved, key=lambda item: item[0])]
            lists[interval_index] = list(
                heapq.merge(exact, entries[start:], key=AssignmentEntry.sort_key)
            )
        elif start:
            del entries[:start]
        return result

    def _noise_blocker(
        self,
        entries: List[AssignmentEntry],
        position: int,
        cut: float,
        interval_index: int,
        schedule: Schedule,
    ) -> Optional[int]:
        """Index of the first stale, valid entry at/after ``position`` scoring ≥ ``cut``.

        ``cut`` is the exact head score minus the per-score noise bound:
        entries below it cannot beat the head even after resolution, and
        updated entries in the window are exact and sorted behind the head,
        so they cannot either.  Returns ``None`` when the head is safe.  Pure
        bookkeeping — no counter side effects.
        """
        checker = self.checker
        for index in range(position, len(entries)):
            entry = entries[index]
            if entry.score < cut:
                return None
            if entry.updated:
                continue
            if schedule.is_scheduled(entry.event_index) or not checker.is_feasible(
                entry.event_index, interval_index
            ):
                continue
            return index
        return None

    def _stale_run(
        self,
        interval_index: int,
        entries: List[AssignmentEntry],
        schedule: Schedule,
        start: int,
    ) -> List[int]:
        """The run of stale, valid events from ``start`` that head resolution can reach.

        Invalid entries are skipped (the cursor drops them without a score);
        the run ends at the first updated valid entry — once it surfaces as
        the list head it is returned before any deeper stale entry could be
        examined *by the normal walk*.  The noise-blocker guard of
        :meth:`_interval_top` can reach past that entry (a stale entry within
        the rounding window of an exact head); such resolutions miss this
        speculative cache and fall back to a per-pair score, which the
        fetcher computes and counts identically.  Pure bookkeeping — no
        counter side effects.  Skipped under the scalar backend.
        """
        if not self.engine.is_bulk:
            return []
        checker = self.checker
        pending: List[int] = []
        for entry in entries[start:]:
            if schedule.is_scheduled(entry.event_index) or not checker.is_feasible(
                entry.event_index, interval_index
            ):
                continue
            if entry.updated:
                break
            pending.append(entry.event_index)
        return pending
