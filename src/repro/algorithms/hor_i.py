"""HOR-I — Horizontal Assignment with Incremental Updating (paper §3.4).

HOR-I follows HOR's horizontal selection policy (one event per interval per
round) but replaces HOR's full per-round score recomputation with the
incremental, bound-pruned updating scheme of INC:

* the per-interval assignment lists built in the first round are kept across
  rounds (entries are dropped lazily once their event is scheduled or they
  become infeasible);
* when an interval received an event in a previous round its scores are
  stale; at the start of the next round the interval is refreshed by walking
  its score-sorted list and recomputing only the entries whose stale score is
  at least the interval's running bound Φ (stale scores are upper bounds, so
  everything below Φ cannot be the interval's top);
* during the round, when an interval's top must be replaced (its event was
  just scheduled for another interval), the replacement is found lazily: the
  head of the list is recomputed only if it is stale, repeatedly, until an
  exact valid head emerges.

HOR-I always returns exactly the same schedule as HOR (Proposition 6) — the
bound pruning never hides an assignment that HOR would have chosen — while
performing at most as many score computations.  When ``k ≤ |T|`` only one
round is needed and HOR-I degenerates to HOR.
"""

from __future__ import annotations

import bisect
from typing import List, Optional

from repro.algorithms.base import AssignmentEntry, BaseScheduler
from repro.core.schedule import Schedule


class HorIScheduler(BaseScheduler):
    """Horizontal Assignment with Incremental Updating (HOR-I)."""

    name = "HOR-I"

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        counter = self.counter
        schedule = Schedule()

        num_intervals = instance.num_intervals
        lists: List[List[AssignmentEntry]] = [[] for _ in range(num_intervals)]
        # has_stale[i]: interval i contains entries whose score predates its last change.
        has_stale = [False] * num_intervals

        rounds = 0
        while len(schedule) < k:
            rounds += 1

            if rounds == 1:
                # First round: generate and score every valid assignment (like
                # HOR) — one batched evaluation per interval.
                lists = self._generate_all_entries(
                    initial=True, only_valid=True, schedule=schedule
                )
            else:
                # Later rounds: refresh only the intervals whose scores went stale,
                # and within them only the entries that can still be the top.
                for interval_index in range(num_intervals):
                    if has_stale[interval_index]:
                        self._refresh_interval(interval_index, lists, schedule)
                        has_stale[interval_index] = any(
                            not entry.updated for entry in lists[interval_index]
                        )

            # ---------------- selection phase (horizontal policy) ----------------
            closed = [False] * num_intervals
            selected_this_round = 0
            while len(schedule) < k:
                best: Optional[AssignmentEntry] = None
                best_interval = -1
                for interval_index in range(num_intervals):
                    if closed[interval_index]:
                        continue
                    entry = self._interval_top(interval_index, lists, schedule)
                    if entry is None:
                        continue
                    counter.count_examined()
                    if best is None or entry.sort_key() < best.sort_key():
                        best = entry
                        best_interval = interval_index
                if best is None:
                    break
                self._select_assignment(schedule, best.event_index, best_interval, best.score)
                closed[best_interval] = True
                selected_this_round += 1
                # The interval's remaining scores now predate its new state.
                remaining = [
                    entry
                    for entry in lists[best_interval]
                    if entry.event_index != best.event_index
                ]
                for entry in remaining:
                    entry.updated = False
                lists[best_interval] = remaining
                has_stale[best_interval] = bool(remaining)

            if selected_this_round == 0:
                break

        self.note("rounds", rounds)
        return schedule

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _refresh_interval(
        self,
        interval_index: int,
        lists: List[List[AssignmentEntry]],
        schedule: Schedule,
    ) -> None:
        """Round-start incremental refresh of one stale interval (Algorithm 3, lines 9–20).

        Walks the score-sorted list keeping a running bound Φ (the best exact
        score recomputed so far).  A stale entry is recomputed only while its
        stale score is at least Φ; the walk stops at the first stale entry
        below Φ, since stale scores over-estimate true scores.
        """
        counter = self.counter
        engine = self.engine
        checker = self.checker
        entries = lists[interval_index]
        kept: List[AssignmentEntry] = []
        phi: Optional[float] = None
        stop_index = len(entries)

        for position, entry in enumerate(entries):
            counter.count_examined()
            if not entry.updated and phi is not None and entry.score < phi:
                stop_index = position
                break
            if schedule.is_scheduled(entry.event_index) or not checker.is_feasible(
                entry.event_index, interval_index
            ):
                continue  # drop invalid entries met in the refreshed prefix
            if not entry.updated:
                entry.score = engine.assignment_score(entry.event_index, interval_index)
                entry.updated = True
            if phi is None or entry.score > phi:
                phi = entry.score
            kept.append(entry)

        kept.extend(entries[stop_index:])
        kept.sort(key=AssignmentEntry.sort_key)
        lists[interval_index] = kept

    def _interval_top(
        self,
        interval_index: int,
        lists: List[List[AssignmentEntry]],
        schedule: Schedule,
    ) -> Optional[AssignmentEntry]:
        """Exact, valid top assignment of one interval, resolving stale heads lazily.

        Invalid heads (event already scheduled, or no longer feasible) are
        dropped; a stale head is recomputed and re-inserted in score order.
        Because stale scores are upper bounds, once the head is exact and
        valid it is guaranteed to be the interval's true top.
        """
        counter = self.counter
        engine = self.engine
        checker = self.checker
        entries = lists[interval_index]
        while entries:
            counter.count_examined()
            head = entries[0]
            if schedule.is_scheduled(head.event_index) or not checker.is_feasible(
                head.event_index, interval_index
            ):
                entries.pop(0)
                continue
            if head.updated:
                return head
            head.score = engine.assignment_score(head.event_index, interval_index)
            head.updated = True
            entries.pop(0)
            bisect.insort(entries, head, key=AssignmentEntry.sort_key)
        return None
