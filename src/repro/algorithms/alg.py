"""ALG — the greedy algorithm of the original SES paper (§3.1).

ALG is the existing solution the reproduced paper improves upon.  It first
computes the assignment score of every (event, interval) pair, then repeats
``k`` times:

1. scan **all** remaining assignments and select the valid one with the
   largest score (ties broken by event index, then interval index);
2. remove every assignment of the selected event;
3. recompute ("update") the score of every remaining assignment of the
   selected interval, dropping those that became infeasible.

Step 1 examines the full assignment table on every iteration and step 3
recomputes an interval's scores from scratch — the two costs INC/HOR/HOR-I
are designed to avoid.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.algorithms.base import BaseScheduler
from repro.core.schedule import Schedule


class AlgScheduler(BaseScheduler):
    """The prior-work greedy algorithm (referred to as ALG in the paper)."""

    name = "ALG"

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        engine = self.engine
        checker = self.checker
        counter = self.counter
        schedule = self._start_schedule()

        # Initial generation: the full |E|×|T| score matrix in one bulk call.
        score_grid = self._initial_score_grid()
        scores: Dict[Tuple[int, int], float] = {
            (event_index, interval_index): float(score_grid[event_index, interval_index])
            for event_index in range(instance.num_events)
            for interval_index in range(instance.num_intervals)
            if not schedule.is_scheduled(event_index)
        }

        iterations = 0
        while len(schedule) < k:
            iterations += 1
            best: Optional[Tuple[float, int, int]] = None
            # Examine every remaining assignment to find the top valid one.
            for (event_index, interval_index), score in scores.items():
                counter.count_examined()
                if not checker.is_feasible(event_index, interval_index):
                    continue
                candidate = (score, event_index, interval_index)
                if best is None or self._beats(candidate, best):
                    best = candidate
            if best is None:
                break

            score, event_index, interval_index = best
            self._select_assignment(schedule, event_index, interval_index, score)

            # Drop every assignment that refers to the selected event.
            for other_interval in range(instance.num_intervals):
                scores.pop((event_index, other_interval), None)

            # Update: recompute the scores of the selected interval from scratch
            # (one batched evaluation of every surviving event of the interval).
            stale_pairs = [pair for pair in scores if pair[1] == interval_index]
            refresh_events = []
            for pair in stale_pairs:
                counter.count_examined()
                if not checker.is_feasible(pair[0], interval_index):
                    del scores[pair]
                    continue
                refresh_events.append(pair[0])
            if refresh_events:
                refreshed = engine.interval_scores(interval_index, refresh_events)
                for refreshed_event, score in zip(refresh_events, refreshed):
                    scores[(refreshed_event, interval_index)] = float(score)

        self.note("iterations", iterations)
        return schedule

    @staticmethod
    def _beats(candidate: Tuple[float, int, int], incumbent: Tuple[float, int, int]) -> bool:
        """Library-wide tie-break: larger score, then smaller event, then smaller interval."""
        candidate_key = (-candidate[0], candidate[1], candidate[2])
        incumbent_key = (-incumbent[0], incumbent[1], incumbent[2])
        return candidate_key < incumbent_key
