"""INC — the Incremental Updating algorithm (paper §3.2).

INC produces exactly the same schedule as ALG (Proposition 3) while
performing only a fraction of ALG's score recomputations and examining far
fewer assignments.  It rests on two ideas:

* **Incremental updating** (§3.2.1).  After a selection, the assignments of
  the selected interval keep their old scores and are only flagged as *not
  updated*.  A stale score can only over-estimate the true score
  (Proposition 1: adding events to an interval never increases the marginal
  gain of another event), so before the next selection only the stale
  assignments whose stale score is at least Φ — the best exact, valid score
  currently known — need to be recomputed.

* **Interval-based assignment organisation** (§3.2.2).  Assignments are kept
  in per-interval lists sorted by (possibly stale) score, and each interval
  carries ``M_t``, its best *updated and valid* assignment.  The bound Φ is
  the best ``M_t``; intervals whose top score is below Φ are skipped without
  touching their assignments, which is what shrinks the search space
  (Fig. 10b).

The tie-break (score, then event index, then interval index) is shared with
ALG so the two algorithms select identical assignments even under ties.

Under the batch scoring backend the incremental refresh itself is batched:
:meth:`IncScheduler._update_interval` collects the stale prefix that could
beat Φ (stale scores only over-estimate, so the prefix under the entry bound
is a superset of what the walk can recompute) and resolves it through the
engine's bulk :meth:`~repro.core.scoring.ScoringEngine.refresh_scores` API in
blocks, counting one update computation per score the walk actually consumes
— schedules, utilities and counters stay bit-identical to the scalar
reference (see :meth:`~repro.algorithms.base.BaseScheduler._stale_score_fetcher`).

On top of the paper's stale-score bound, the engine offers a *structural*
per-interval upper bound
(:meth:`~repro.core.scoring.ScoringEngine.interval_score_bound`): a sound
cap on any fresh marginal score in the interval, derived from the interest
structure rather than from previously computed scores.  When an interval
passes the stale-head check but its structural bound is still safely below
Φ, no entry in it can become the argmax and the whole refresh walk is
skipped.  The bound is engine-side and identical across scoring backends,
storage tiers and scoring plans, so schedules, utilities, scores and
counter totals remain bit-identical across those axes — the bound only
lowers the number of score recomputations performed.  Construct the
scheduler with ``use_interval_bounds=False`` to disable the structural
check (the benchmark baseline).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.algorithms.base import AssignmentEntry, BaseScheduler, better_candidate
from repro.core.schedule import Schedule

Candidate = Tuple[float, int, int]


class IncScheduler(BaseScheduler):
    """Incremental Updating algorithm (INC); same output as ALG, fewer computations."""

    name = "INC"

    def __init__(self, *args, use_interval_bounds: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: Apply the engine's structural per-interval score bound as a
        #: second-chance interval skip.  Sound, so the schedule is unchanged;
        #: disabling it only serves as the benchmark baseline.
        self._use_interval_bounds = bool(use_interval_bounds)

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        counter = self.counter
        schedule = self._start_schedule()

        num_intervals = instance.num_intervals

        # ------------------------------------------------------------------
        # Initialisation: generate all assignments (one batched evaluation per
        # interval), grouped and sorted per interval.
        # ------------------------------------------------------------------
        lists = self._generate_all_entries(initial=True)

        # has_stale[i] — interval i contains at least one not-updated assignment.
        has_stale = [False] * num_intervals
        # tops[i] — best *updated and valid* candidate of interval i (M_t in the paper).
        tops: List[Optional[Candidate]] = [
            self._find_top_updated_valid(lists[i], schedule) for i in range(num_intervals)
        ]

        iterations = 0
        while len(schedule) < k:
            iterations += 1

            # Bound Φ: the best exact, valid candidate currently known.
            phi: Optional[Candidate] = None
            for candidate in tops:
                counter.count_examined()
                phi = better_candidate(phi, candidate)

            # Incremental updates: only stale assignments that could beat Φ.
            for interval_index in range(num_intervals):
                if not has_stale[interval_index]:
                    continue
                entries = lists[interval_index]
                if not entries:
                    has_stale[interval_index] = False
                    continue
                counter.count_examined()  # peek at the interval head (M_t check)
                if phi is not None and entries[0].score < phi[0] - self.engine.score_noise_tolerance(interval_index):
                    # Every stale score in this interval is below Φ by more
                    # than the floating-point noise of a score, hence so is
                    # every true score (Proposition 1): skip the interval.
                    continue
                if (
                    phi is not None
                    and self._use_interval_bounds
                    and self.engine.interval_score_bound(interval_index)
                    < phi[0] - 4.0 * self.engine.score_noise_tolerance(interval_index)
                ):
                    # Second chance: the structural bound caps every fresh
                    # score in this interval, so even after recomputation no
                    # entry here can beat Φ.  The 4× noise margin guarantees
                    # no tie candidate (within one score's rounding of Φ) can
                    # hide behind the skip, keeping the tie-break — and hence
                    # the schedule — identical.
                    counter.bump("phi_bound_interval_skips")
                    continue
                phi = self._update_interval(
                    interval_index, lists, tops, schedule, phi
                )
                has_stale[interval_index] = any(not entry.updated for entry in lists[interval_index])

            if phi is None:
                break  # No valid assignment remains anywhere.

            score, event_index, interval_index = phi
            self._select_assignment(schedule, event_index, interval_index, score)

            # The selected interval's scores all become stale.
            selected_entries = lists[interval_index]
            lists[interval_index] = [
                entry for entry in selected_entries if entry.event_index != event_index
            ]
            for entry in lists[interval_index]:
                entry.updated = False
            has_stale[interval_index] = bool(lists[interval_index])
            tops[interval_index] = None

            # Other intervals: the selected event's assignments become invalid.
            # Only the interval tops that referenced it must be recomputed now;
            # the list entries themselves are dropped lazily.
            for other_interval in range(num_intervals):
                if other_interval == interval_index:
                    continue
                top = tops[other_interval]
                if top is not None and top[1] == event_index:
                    tops[other_interval] = self._find_top_updated_valid(
                        lists[other_interval], schedule
                    )

        self.note("iterations", iterations)
        return schedule

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _update_interval(
        self,
        interval_index: int,
        lists: List[List[AssignmentEntry]],
        tops: List[Optional[Candidate]],
        schedule: Schedule,
        phi: Optional[Candidate],
    ) -> Optional[Candidate]:
        """Refresh the stale assignments of one interval that could beat Φ.

        Walks the interval's score-sorted list from the top; every stale entry
        whose (stale) score is at least Φ (minus the engine's per-score
        floating-point noise bound — stale scores are upper bounds only up to
        rounding, see :meth:`~repro.core.scoring.ScoringEngine.score_noise_tolerance`)
        is recomputed.  The walk stops at the first entry below that cut —
        all deeper entries are below it as well.  Returns the possibly-improved
        Φ.

        Under the batch backend the stale prefix above the *incoming* Φ is
        resolved through the bulk refresh API: Φ only rises during the walk,
        so that prefix is a superset of what the walk can consume, and the
        fetcher counts exactly the consumed scores.
        """
        counter = self.counter
        checker = self.checker
        tolerance = self.engine.score_noise_tolerance(interval_index)
        entries = lists[interval_index]
        fetch = self._stale_score_fetcher(
            interval_index,
            self._stale_prefix(interval_index, entries, schedule, phi),
        )
        kept: List[AssignmentEntry] = []
        stop_index = len(entries)

        for position, entry in enumerate(entries):
            counter.count_examined()
            if phi is not None and entry.score < phi[0] - tolerance:
                stop_index = position
                break
            if schedule.is_scheduled(entry.event_index) or not checker.is_feasible(
                entry.event_index, interval_index
            ):
                continue  # drop invalid entries encountered in the prefix
            if not entry.updated:
                entry.score = fetch(entry.event_index)
                entry.updated = True
            candidate: Candidate = (entry.score, entry.event_index, entry.interval_index)
            tops[interval_index] = better_candidate(tops[interval_index], candidate)
            phi = better_candidate(phi, candidate)
            kept.append(entry)

        kept.extend(entries[stop_index:])
        kept.sort(key=AssignmentEntry.sort_key)
        lists[interval_index] = kept
        return phi

    def _stale_prefix(
        self,
        interval_index: int,
        entries: List[AssignmentEntry],
        schedule: Schedule,
        phi: Optional[Candidate],
    ) -> List[int]:
        """Stale, valid events in the prefix that could beat the incoming Φ.

        A superset (in walk order) of the entries :meth:`_update_interval`
        can recompute: the walk's Φ only ever rises, so it stops at or before
        the first entry below the incoming bound.  Pure bookkeeping — no
        counter side effects.  Skipped under the scalar backend, where the
        fetcher computes pairs one at a time anyway.
        """
        if not self.engine.is_bulk:
            return []
        checker = self.checker
        tolerance = self.engine.score_noise_tolerance(interval_index)
        bound = None if phi is None else phi[0]
        pending: List[int] = []
        for entry in entries:
            if bound is not None and entry.score < bound - tolerance:
                break
            if entry.updated:
                continue
            if schedule.is_scheduled(entry.event_index) or not checker.is_feasible(
                entry.event_index, interval_index
            ):
                continue
            pending.append(entry.event_index)
        return pending

    def _find_top_updated_valid(
        self, entries: List[AssignmentEntry], schedule: Schedule
    ) -> Optional[Candidate]:
        """First updated & valid entry of a score-sorted list (``getTopAssgn``)."""
        counter = self.counter
        checker = self.checker
        for entry in entries:
            counter.count_examined()
            if not entry.updated:
                continue
            if schedule.is_scheduled(entry.event_index):
                continue
            if not checker.is_feasible(entry.event_index, entry.interval_index):
                continue
            return (entry.score, entry.event_index, entry.interval_index)
        return None
