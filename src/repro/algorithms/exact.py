"""Exhaustive (optimal) solver for tiny SES instances.

SES is strongly NP-hard, so the exact solver only exists to validate the
greedy algorithms on instances small enough to enumerate: the tests compare
greedy utilities against the true optimum and the hardness module uses it to
verify the 3DM-3 reduction on toy inputs.

The search enumerates, per candidate event, the choice "leave unscheduled" or
"assign to interval t" for every feasible ``t``, pruning branches that cannot
reach ``k`` assignments anymore.  Utility is monotone in added events (every
assignment score is non-negative), so the optimum schedules exactly
``min(k, max feasible)`` events.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms.base import BaseScheduler
from repro.core.errors import SolverError
from repro.core.schedule import Schedule


class ExactScheduler(BaseScheduler):
    """Brute-force optimal scheduler (exponential; guarded by a search-space limit)."""

    name = "EXACT"

    #: Maximum number of leaves ((|T|+1) ** |E|) the solver accepts.
    DEFAULT_SEARCH_LIMIT = 5_000_000

    def __init__(self, *args, search_limit: int = DEFAULT_SEARCH_LIMIT, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._search_limit = search_limit

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        num_events = instance.num_events
        num_intervals = instance.num_intervals
        search_space = (num_intervals + 1) ** num_events
        if search_space > self._search_limit:
            raise SolverError(
                f"instance too large for exhaustive search: (|T|+1)^|E| = {search_space} "
                f"exceeds the limit of {self._search_limit}"
            )

        engine = self.engine
        checker = self.checker
        current = self._start_schedule()
        best_schedule = current.copy()
        best_utility = engine.evaluate_schedule(best_schedule)
        locked_events = set(current.scheduled_events())

        def recurse(event_index: int, assigned: int) -> None:
            nonlocal best_schedule, best_utility
            remaining = num_events - event_index
            # Prune: even assigning every remaining event cannot improve the count
            # beyond k, and utility is monotone, so stop exploring once k reached.
            if assigned == k or event_index == num_events:
                utility = engine.evaluate_schedule(current)
                better_count = len(current) > len(best_schedule)
                same_count = len(current) == len(best_schedule)
                if better_count or (same_count and utility > best_utility + 1e-12):
                    best_schedule = current.copy()
                    best_utility = utility
                return
            if assigned + remaining < len(best_schedule):
                # Cannot even reach the best cardinality found so far.
                return

            if event_index in locked_events:
                # Locked assignments are pinned: no unscheduling, no moving.
                recurse(event_index + 1, assigned)
                return

            # Option 1: leave the event unscheduled.
            recurse(event_index + 1, assigned)
            # Option 2: assign it to each feasible interval.
            for interval_index in range(num_intervals):
                if not checker.is_feasible(event_index, interval_index):
                    continue
                current.add(event_index, interval_index)
                checker.commit(event_index, interval_index)
                recurse(event_index + 1, assigned + 1)
                checker.release(event_index, interval_index)
                current.remove(event_index)

        recurse(0, len(current))
        self.note("optimal_utility", best_utility)
        return best_schedule

    def optimal_utility(self, k: int) -> float:
        """Convenience wrapper returning only the optimal utility value."""
        result = self.schedule(k)
        return result.utility


def optimum(instance, k: int, *, search_limit: Optional[int] = None) -> float:
    """Compute the optimal utility of an instance (tiny instances only)."""
    kwargs = {}
    if search_limit is not None:
        kwargs["search_limit"] = search_limit
    solver = ExactScheduler(instance, **kwargs)
    return solver.schedule(k).utility
