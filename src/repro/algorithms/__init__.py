"""Schedulers for the Social Event Scheduling problem.

* :class:`~repro.algorithms.alg.AlgScheduler` — the greedy algorithm of the
  original SES paper ([4] in the reproduced paper), used as the baseline the
  contributions are compared against.
* :class:`~repro.algorithms.inc.IncScheduler` — Incremental Updating (INC).
* :class:`~repro.algorithms.hor.HorScheduler` — Horizontal Assignment (HOR).
* :class:`~repro.algorithms.hor_i.HorIScheduler` — Horizontal Assignment with
  Incremental Updating (HOR-I).
* :class:`~repro.algorithms.top.TopScheduler` and
  :class:`~repro.algorithms.rand.RandScheduler` — the TOP and RAND baselines.
* :class:`~repro.algorithms.exact.ExactScheduler` — exhaustive search for tiny
  instances (testing/verification only).
"""

from repro.algorithms.base import BaseScheduler, SchedulerResult
from repro.algorithms.alg import AlgScheduler
from repro.algorithms.inc import IncScheduler
from repro.algorithms.hor import HorScheduler
from repro.algorithms.hor_i import HorIScheduler
from repro.algorithms.top import TopScheduler
from repro.algorithms.rand import RandScheduler
from repro.algorithms.exact import ExactScheduler
from repro.algorithms.registry import available_schedulers, get_scheduler

__all__ = [
    "BaseScheduler",
    "SchedulerResult",
    "AlgScheduler",
    "IncScheduler",
    "HorScheduler",
    "HorIScheduler",
    "TopScheduler",
    "RandScheduler",
    "ExactScheduler",
    "available_schedulers",
    "get_scheduler",
]
