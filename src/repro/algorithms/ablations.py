"""Ablation schedulers isolating INC's two schemes (paper §3.2).

INC combines two independent ideas on top of ALG:

1. the **incremental updating scheme** (§3.2.1) — only stale assignments whose
   stale score reaches the bound Φ are recomputed; and
2. the **interval-based assignment organisation** (§3.2.2) — assignments are
   grouped per interval with per-interval tops (``M_t``), so whole intervals
   can be skipped when searching for the next selection.

To quantify what each scheme contributes (the ablation DESIGN.md calls for),
this module provides:

* :class:`IncUpdatesOnlyScheduler` (``INC-U``) — incremental, bound-pruned
  updates but **no** interval organisation: every assignment is examined on
  every iteration, exactly like ALG's scan.  Its score-computation count shows
  the saving of scheme 1 alone; its assignments-examined count stays at ALG's
  level.
* :class:`AlgOrganizedScheduler` (``ALG-O``) — ALG's eager updating but with
  the interval organisation used for selection: after the updates, only the
  per-interval top assignments are examined to pick the next selection.  Its
  score-computation count stays at ALG's level; its assignments-examined
  count shows the saving of scheme 2 alone.

Both produce exactly the same schedules as ALG (they only reorganise *when*
scores are recomputed or *which* entries are looked at, never the values the
selection is based on).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algorithms.base import AssignmentEntry, BaseScheduler, better_candidate
from repro.core.schedule import Schedule

Candidate = Tuple[float, int, int]


class IncUpdatesOnlyScheduler(BaseScheduler):
    """Incremental (bound-pruned) updates without the interval organisation."""

    name = "INC-U"

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        engine = self.engine
        checker = self.checker
        counter = self.counter
        schedule = self._start_schedule()

        score_grid = self._initial_score_grid()
        entries: List[AssignmentEntry] = [
            AssignmentEntry(event_index, interval_index, float(score_grid[event_index, interval_index]))
            for event_index in range(instance.num_events)
            for interval_index in range(instance.num_intervals)
        ]

        while len(schedule) < k:
            # Pass 1 (full scan, like ALG): the best *exact* valid score is the bound Φ.
            phi: Optional[Candidate] = None
            alive: List[AssignmentEntry] = []
            for entry in entries:
                counter.count_examined()
                if schedule.is_scheduled(entry.event_index) or not checker.is_feasible(
                    entry.event_index, entry.interval_index
                ):
                    continue
                alive.append(entry)
                if entry.updated:
                    phi = better_candidate(
                        phi, (entry.score, entry.event_index, entry.interval_index)
                    )
            entries = alive

            # Pass 2: refresh only the stale entries that could beat Φ.
            best = phi
            for entry in entries:
                if entry.updated:
                    continue
                counter.count_examined()
                if phi is not None and entry.score < phi[0]:
                    continue  # stale score is an upper bound: cannot beat Φ
                entry.score = engine.assignment_score(entry.event_index, entry.interval_index)
                entry.updated = True
                best = better_candidate(
                    best, (entry.score, entry.event_index, entry.interval_index)
                )
            if best is None:
                break

            score, event_index, interval_index = best
            self._select_assignment(schedule, event_index, interval_index, score)
            remaining: List[AssignmentEntry] = []
            for entry in entries:
                if entry.event_index == event_index:
                    continue
                if entry.interval_index == interval_index:
                    entry.updated = False
                remaining.append(entry)
            entries = remaining
        return schedule


class AlgOrganizedScheduler(BaseScheduler):
    """ALG's eager updates combined with the interval-based selection organisation."""

    name = "ALG-O"

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        engine = self.engine
        checker = self.checker
        counter = self.counter
        schedule = self._start_schedule()

        lists = self._generate_all_entries(initial=True)
        # Per-interval top valid entry (M_t); kept exact because updates are eager.
        tops: List[Optional[Candidate]] = [
            self._interval_top(lists[interval_index], schedule)
            for interval_index in range(instance.num_intervals)
        ]

        while len(schedule) < k:
            best: Optional[Candidate] = None
            for candidate in tops:
                counter.count_examined()
                best = better_candidate(best, candidate)
            if best is None:
                break
            score, event_index, interval_index = best
            self._select_assignment(schedule, event_index, interval_index, score)

            # Eagerly recompute the selected interval (exactly what ALG does) …
            refreshed: List[AssignmentEntry] = []
            for entry in lists[interval_index]:
                counter.count_examined()
                if entry.event_index == event_index or schedule.is_scheduled(entry.event_index):
                    continue
                if not checker.is_feasible(entry.event_index, interval_index):
                    continue
                entry.score = engine.assignment_score(entry.event_index, interval_index)
                refreshed.append(entry)
            refreshed.sort(key=AssignmentEntry.sort_key)
            lists[interval_index] = refreshed
            tops[interval_index] = self._interval_top(refreshed, schedule)

            # … and repair the tops that referenced the now-scheduled event.
            for other_interval in range(instance.num_intervals):
                if other_interval == interval_index:
                    continue
                top = tops[other_interval]
                if top is not None and top[1] == event_index:
                    tops[other_interval] = self._interval_top(lists[other_interval], schedule)
        return schedule

    def _interval_top(
        self, entries: List[AssignmentEntry], schedule: Schedule
    ) -> Optional[Candidate]:
        for entry in entries:
            self.counter.count_examined()
            if schedule.is_scheduled(entry.event_index):
                continue
            if not self.checker.is_feasible(entry.event_index, entry.interval_index):
                continue
            return (entry.score, entry.event_index, entry.interval_index)
        return None


#: Ablation line-up used by the ablation benchmark.
ABLATION_METHODS: Dict[str, type] = {
    IncUpdatesOnlyScheduler.name: IncUpdatesOnlyScheduler,
    AlgOrganizedScheduler.name: AlgOrganizedScheduler,
}
