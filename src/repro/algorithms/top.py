"""TOP — the "top-k scores, no updates" baseline (§4.1).

TOP computes every assignment score once (against the empty schedule), sorts
them, and greedily takes the k best valid assignments without ever updating a
score.  It therefore performs the minimum possible number of score
computations but ignores the cannibalisation between events placed in the
same interval, which is why its utility is far below the greedy methods in
the paper's plots (it tends to pile "popular" events onto a few intervals).
"""

from __future__ import annotations

from repro.algorithms.base import AssignmentEntry, BaseScheduler
from repro.core.schedule import Schedule


class TopScheduler(BaseScheduler):
    """The TOP baseline: schedule the k assignments with the largest initial scores."""

    name = "TOP"

    def _run(self, k: int) -> Schedule:
        instance = self.instance
        checker = self.checker
        counter = self.counter
        schedule = self._start_schedule()

        score_grid = self._initial_score_grid()
        entries = [
            AssignmentEntry(event_index, interval_index, float(score_grid[event_index, interval_index]))
            for event_index in range(instance.num_events)
            for interval_index in range(instance.num_intervals)
        ]
        entries.sort(key=AssignmentEntry.sort_key)

        for entry in entries:
            if len(schedule) >= k:
                break
            counter.count_examined()
            if schedule.is_scheduled(entry.event_index):
                continue
            if not checker.is_feasible(entry.event_index, entry.interval_index):
                continue
            schedule.add(entry.event_index, entry.interval_index)
            checker.commit(entry.event_index, entry.interval_index)
            counter.count_selection()
        return schedule
