"""Closed-form computation-count models (paper §3.1, §3.3.1, Propositions 4–7).

The formulas below count *assignment-score evaluations* (each costing |U|
user-level operations) for the unconstrained case — no location conflicts and
no binding resource constraint — which is the setting of the paper's own
counting arguments.  On such instances the models match the implementation's
instrumented counters exactly (see ``tests/test_ablations_analysis.py``);
with binding constraints they are upper bounds, because infeasible
assignments drop out of the update loops early.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.errors import ExperimentError


def _validate(num_events: int, num_intervals: int, k: int) -> None:
    if num_events < 1 or num_intervals < 1 or k < 1:
        raise ExperimentError("num_events, num_intervals and k must all be positive")


def predicted_initial_computations(num_events: int, num_intervals: int) -> int:
    """Initial score computations common to ALG, INC, TOP (and HOR's first round): |E|·|T|."""
    if num_events < 1 or num_intervals < 1:
        raise ExperimentError("num_events and num_intervals must be positive")
    return num_events * num_intervals


def predicted_alg_update_computations(num_events: int, k: int) -> int:
    """ALG's update computations on an unconstrained instance.

    After the i-th selection ALG recomputes the score of every remaining
    assignment of the selected interval; with no constraints the remaining
    events number ``|E| − i``, so the total is ``Σ_{i=1..k} (|E| − i)``
    (the paper's ``k|E| − k²/2``-order term).
    """
    _validate(num_events, 1, k)
    selections = min(k, num_events)
    return sum(num_events - i for i in range(1, selections + 1))


def predicted_alg_score_computations(num_events: int, num_intervals: int, k: int) -> int:
    """Total ALG score computations on an unconstrained instance."""
    return predicted_initial_computations(num_events, num_intervals) + (
        predicted_alg_update_computations(num_events, k)
    )


def predicted_hor_rounds(num_intervals: int, k: int) -> int:
    """Number of rounds the horizontal policy needs: ⌈k / |T|⌉."""
    _validate(1, num_intervals, k)
    return math.ceil(k / num_intervals)


def predicted_hor_update_computations(num_events: int, num_intervals: int, k: int) -> int:
    """HOR's update computations on an unconstrained instance.

    Round ``j ≥ 1`` recomputes the scores of every still-unscheduled event in
    every interval: ``|T| · (|E| − j·|T|)`` (§3.3.1).  No updates happen when
    ``k ≤ |T|``.
    """
    _validate(num_events, num_intervals, k)
    rounds = predicted_hor_rounds(num_intervals, min(k, num_events))
    total = 0
    for round_index in range(1, rounds):
        remaining = max(0, num_events - round_index * num_intervals)
        total += num_intervals * remaining
    return total


def predicted_hor_score_computations(num_events: int, num_intervals: int, k: int) -> int:
    """Total HOR score computations on an unconstrained instance."""
    return predicted_initial_computations(num_events, num_intervals) + (
        predicted_hor_update_computations(num_events, num_intervals, k)
    )


def hor_performs_fewer_computations(num_events: int, num_intervals: int, k: int) -> bool:
    """Proposition 4: HOR performs fewer score computations than ALG when
    ``k ≤ |T|`` or ``|E| < (k/2)·(3|T| + 1)``."""
    _validate(num_events, num_intervals, k)
    if k <= num_intervals:
        return True
    return num_events < (k / 2.0) * (3 * num_intervals + 1)


def worst_case_k(num_intervals: int, *, minimum_k: int | None = None) -> int:
    """Propositions 5 and 7: the smallest ``k`` ≥ ``minimum_k`` with
    ``k > |T|`` and ``k mod |T| = 1`` (the horizontal algorithms' worst case)."""
    if num_intervals < 1:
        raise ExperimentError("num_intervals must be positive")
    candidate = num_intervals + 1
    floor = minimum_k if minimum_k is not None else candidate
    while candidate < floor or candidate % num_intervals != 1 or candidate <= num_intervals:
        candidate += 1
    return candidate


@dataclass(frozen=True)
class ComputationForecast:
    """Predicted score-computation counts for one (|E|, |T|, k) configuration."""

    num_events: int
    num_intervals: int
    k: int
    initial: int
    alg_total: int
    hor_total: int
    hor_rounds: int
    hor_wins: bool

    def as_row(self) -> Dict[str, object]:
        """Flat dict for the report printer."""
        return {
            "num_events": self.num_events,
            "num_intervals": self.num_intervals,
            "k": self.k,
            "initial": self.initial,
            "alg_total": self.alg_total,
            "hor_total": self.hor_total,
            "hor_rounds": self.hor_rounds,
            "hor_wins": self.hor_wins,
        }


def forecast(num_events: int, num_intervals: int, k: int) -> ComputationForecast:
    """Bundle every §3 prediction for one configuration."""
    _validate(num_events, num_intervals, k)
    return ComputationForecast(
        num_events=num_events,
        num_intervals=num_intervals,
        k=k,
        initial=predicted_initial_computations(num_events, num_intervals),
        alg_total=predicted_alg_score_computations(num_events, num_intervals, k),
        hor_total=predicted_hor_score_computations(num_events, num_intervals, k),
        hor_rounds=predicted_hor_rounds(num_intervals, min(k, num_events)),
        hor_wins=hor_performs_fewer_computations(num_events, num_intervals, k),
    )
