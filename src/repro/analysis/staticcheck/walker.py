"""The file/package walker: collect sources, run rules, apply waivers.

:func:`run_lint` is the single entry point the CLI, the CI job and the tests
share.  It walks the given files/directories, parses each ``.py`` file once
(`ast` for the rules, `tokenize` for the waivers), runs every applicable
registered rule, filters the findings through the per-line waivers, and
returns a :class:`LintReport` whose :meth:`~LintReport.to_json` emits the
stable schema the CI artifact and future benchmark trending rely on.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.staticcheck.findings import SEVERITY_ERROR, Finding
from repro.analysis.staticcheck.registry import LintError, Rule, available_rules
from repro.analysis.staticcheck.waivers import Waiver, collect_waivers

#: Schema version of :meth:`LintReport.to_json` — bump on breaking changes so
#: trend consumers (BENCH_*.json style) can tell payloads apart.
LINT_SCHEMA_VERSION = 1

#: Rule id of the synthesised finding for files that do not parse (or do not
#: decode as UTF-8 in the first place).
SYNTAX_ERROR_RULE = "syntax-error"

#: Directory names never descended into.
_SKIPPED_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})

#: Files that mark a directory as the project root (for rel-path scoping).
_ROOT_MARKERS = ("setup.py", "pyproject.toml", ".git")


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one parsed source file."""

    path: Path
    #: Project-root-relative POSIX path (what rule scoping matches against).
    rel_path: str
    source: str
    tree: ast.AST
    waivers: Tuple[Waiver, ...]


@dataclass
class LintReport:
    """The outcome of one lint run (findings already waiver-filtered)."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    #: Waiver comments present in the scanned files.
    waivers: int = 0
    #: Findings suppressed by a waiver.
    waived_findings: int = 0
    #: Ids of the rules that ran (the counts in :attr:`rule_counts` cover
    #: exactly these plus :data:`SYNTAX_ERROR_RULE`).
    rules_run: Tuple[str, ...] = ()

    @property
    def clean(self) -> bool:
        """Whether the run produced no findings."""
        return not self.findings

    @property
    def rule_counts(self) -> Dict[str, int]:
        """Surviving findings per rule id, zero-filled for every rule run.

        Zero-filling keeps the JSON schema stable across runs: a rule that
        found nothing still appears, so trend lines never lose columns.
        """
        counts = {rule_id: 0 for rule_id in self.rules_run}
        counts.setdefault(SYNTAX_ERROR_RULE, 0)
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> Dict[str, object]:
        """The stable ``repro lint --json`` payload."""
        return {
            "schema_version": LINT_SCHEMA_VERSION,
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "waivers": self.waivers,
            "waived_findings": self.waived_findings,
            "rules": self.rule_counts,
            "findings": [finding.to_json() for finding in self.findings],
        }


def detect_root(paths: Sequence[Path]) -> Path:
    """The nearest ancestor of ``paths`` carrying a project-root marker.

    When no marker is found, falls back to the working directory if the
    first path lives under it (so ``repro lint src`` in an unmarked checkout
    still scopes rules against ``src/...`` rel-paths), else to the first
    path's (parent) directory — linting a loose file outside any project
    works, with scoped rules simply not applying.
    """
    for start in paths:
        candidate = start.resolve()
        if candidate.is_file():
            candidate = candidate.parent
        while True:
            if any((candidate / marker).exists() for marker in _ROOT_MARKERS):
                return candidate
            if candidate.parent == candidate:
                break
            candidate = candidate.parent
    first = paths[0].resolve()
    cwd = Path.cwd().resolve()
    if first != cwd and first.is_relative_to(cwd):
        return cwd
    return first.parent if first.is_file() else first


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths`` (files kept as-is), sorted, deduped.

    Raises
    ------
    LintError
        When a named path does not exist — a misspelled directory silently
        scanning nothing would report a deceptive "clean".
    """
    collected: List[Path] = []
    for path in paths:
        if not path.exists():
            raise LintError(f"lint path does not exist: {path}")
        if path.is_file():
            collected.append(path.resolve())
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIPPED_DIRS for part in candidate.parts):
                continue
            collected.append(candidate.resolve())
    unique: Dict[Path, None] = {}
    for path in collected:
        unique.setdefault(path, None)
    return sorted(unique)


def _relative_path(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(
    path: Path, root: Path, rules: Sequence[Rule]
) -> Tuple[List[Finding], int, int]:
    """Lint one file; returns ``(findings, waiver_count, waived_count)``."""
    rel_path = _relative_path(path, root)
    try:
        source = path.read_text(encoding="utf-8")
    except UnicodeDecodeError as error:
        return (
            [
                Finding(
                    path=rel_path,
                    line=0,
                    rule=SYNTAX_ERROR_RULE,
                    message=f"file is not valid UTF-8: {error}",
                    severity=SEVERITY_ERROR,
                )
            ],
            0,
            0,
        )
    waivers = tuple(collect_waivers(source))
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        return (
            [
                Finding(
                    path=rel_path,
                    line=error.lineno or 0,
                    rule=SYNTAX_ERROR_RULE,
                    message=f"file does not parse: {error.msg}",
                    severity=SEVERITY_ERROR,
                )
            ],
            len(waivers),
            0,
        )
    context = FileContext(
        path=path, rel_path=rel_path, source=source, tree=tree, waivers=waivers
    )
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies_to(context):
            raw.extend(rule.check(context))
    findings: List[Finding] = []
    waived = 0
    for finding in raw:
        if any(waiver.allows(finding.rule, finding.line) for waiver in waivers):
            waived += 1
        else:
            findings.append(finding)
    return findings, len(waivers), waived


def run_lint(
    paths: Iterable[object],
    *,
    root: Optional[object] = None,
    rule_ids: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint ``paths`` (files and/or directories) with the registered rules.

    Parameters
    ----------
    paths:
        Files or directories to scan (strings or :class:`~pathlib.Path`).
    root:
        Project root for rel-path rule scoping; auto-detected from the paths
        (nearest ``setup.py`` / ``pyproject.toml`` / ``.git`` ancestor) when
        omitted.
    rule_ids:
        Rule ids to run (default: the whole registry, in registration order).
    """
    # Importing the rules module populates the registry (mirrors how the
    # execution backends self-register at import).
    from repro.analysis.staticcheck import rules as _rules  # noqa: F401
    from repro.analysis.staticcheck.registry import resolve_rules

    path_objects = [Path(path) for path in paths]
    if not path_objects:
        raise LintError("no lint paths given")
    selected = resolve_rules(rule_ids)
    root_path = Path(root).resolve() if root is not None else detect_root(path_objects)
    report = LintReport(
        rules_run=tuple(rule.id for rule in selected)
        if rule_ids is not None
        else available_rules()
    )
    for file_path in iter_python_files(path_objects):
        findings, waivers, waived = lint_file(file_path, root_path, selected)
        report.findings.extend(findings)
        report.files_scanned += 1
        report.waivers += waivers
        report.waived_findings += waived
    report.findings.sort()
    return report


__all__ = [
    "FileContext",
    "LINT_SCHEMA_VERSION",
    "LintReport",
    "SYNTAX_ERROR_RULE",
    "detect_root",
    "iter_python_files",
    "lint_file",
    "run_lint",
]
