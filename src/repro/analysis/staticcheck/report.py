"""Text rendering of lint reports (the ``repro lint`` terminal output).

JSON rendering lives on :meth:`~repro.analysis.staticcheck.walker.LintReport.to_json`
(it *is* the schema); this module owns the human-facing side: one
``path:line: [rule] message`` line per finding plus a summary, and the
``--list-rules`` catalogue table.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.staticcheck.registry import rule_catalog
from repro.analysis.staticcheck.walker import LintReport


def format_report(report: LintReport) -> str:
    """The full text rendering: findings (sorted) then the summary line."""
    lines = [finding.format() for finding in report.findings]
    lines.append(format_summary(report))
    return "\n".join(lines)


def format_summary(report: LintReport) -> str:
    """One line: finding/waiver/file totals (and per-rule counts if any)."""
    if report.clean:
        status = "clean"
    else:
        by_rule = [
            f"{rule_id}: {count}"
            for rule_id, count in sorted(report.rule_counts.items())
            if count
        ]
        status = f"{len(report.findings)} finding(s) ({', '.join(by_rule)})"
    return (
        f"repro lint: {status} — {report.files_scanned} file(s) scanned, "
        f"{report.waivers} waiver(s), {report.waived_findings} finding(s) waived"
    )


def format_rule_table(rows: Sequence[Dict[str, str]] | None = None) -> str:
    """An aligned table of the rule catalogue (``--list-rules``)."""
    rows = list(rows) if rows is not None else rule_catalog()
    if not rows:
        return "(no rules registered)"
    headers = list(rows[0])
    widths = {
        header: max(len(header), *(len(str(row[header])) for row in rows))
        for header in headers
    }
    def _line(values: List[str]) -> str:
        return "  ".join(str(value).ljust(widths[h]) for h, value in zip(headers, values))
    out = [_line(headers), _line(["-" * widths[h] for h in headers])]
    out.extend(_line([row[h] for h in headers]) for row in rows)
    return "\n".join(out)


__all__ = ["format_report", "format_rule_table", "format_summary"]
