"""Per-line lint waivers: ``# staticcheck: allow(<rule>) -- justification``.

A waiver comment suppresses findings of the named rule(s) **on the physical
line carrying the comment** — the narrowest possible escape hatch.  Waivers
are themselves checked: one without a justification, or one naming a rule id
that is not registered, is reported by the ``waiver-discipline`` rule, so
every suppression in the tree documents *why* the invariant does not apply.

Comments are found with :mod:`tokenize` (never string matching), so a waiver
spelled inside a string literal is inert.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import List, Tuple

#: Shape: a ``staticcheck:`` comment naming one or more rule ids in
#: ``allow(<rule-id>, ...)``, then a justification after ``--``, ``—`` or
#: ``:`` — everything past the separator is the justification text.
WAIVER_PATTERN = re.compile(
    r"#\s*staticcheck:\s*allow\(\s*(?P<rules>[A-Za-z0-9_,\s\-]*?)\s*\)"
    r"\s*(?:(?:--|—|:)\s*(?P<why>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Waiver:
    """One waiver comment: its line, the rule ids it names, its justification."""

    line: int
    rules: Tuple[str, ...]
    justification: str

    def allows(self, rule_id: str, line: int) -> bool:
        """Whether this waiver suppresses a finding of ``rule_id`` at ``line``."""
        return line == self.line and rule_id in self.rules


def collect_waivers(source: str) -> List[Waiver]:
    """Every waiver comment in ``source``, via the token stream.

    Tokenisation errors yield no waivers — the walker reports the underlying
    syntax error separately, and a file that does not parse has nothing to
    waive.
    """
    waivers: List[Waiver] = []
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return waivers
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = WAIVER_PATTERN.search(token.string)
        if match is None:
            continue
        rules = tuple(
            rule.strip() for rule in match.group("rules").split(",") if rule.strip()
        )
        waivers.append(
            Waiver(
                line=token.start[0],
                rules=rules,
                justification=(match.group("why") or "").strip(),
            )
        )
    return waivers


__all__ = ["WAIVER_PATTERN", "Waiver", "collect_waivers"]
