"""The project-invariant rules (registered into the rule registry at import).

Each rule encodes one invariant the ROADMAP promises and the dynamic test
suites can only catch *after* it breaks something:

* ``no-nondeterminism`` — the deterministic layers must stay deterministic;
* ``imports-policy`` — the stack is stdlib+NumPy only, layered bottom-up;
* ``broad-except`` — no silent error swallowing without a documented reason;
* ``lock-discipline`` — shared state in the distributed layer is mutated
  under its lock, everywhere;
* ``no-deprecated-shims`` — internal call sites use ``ExecutionConfig``, not
  the pre-PR-4 loose kwargs;
* ``counter-discipline`` — the paper's computation counters advance only
  through the canonical ``count_*`` helpers, so totals stay backend-exact;
* ``no-mutable-default`` — the classic shared-default-object trap;
* ``docstring-backend-sync`` / ``docstring-storage-sync`` /
  ``docstring-plan-sync`` — names quoted in docstrings must exist in the
  matching live registry (``register_backend()`` / ``register_store()`` /
  ``register_plan()``), all three parameterisations of one
  :class:`RegistrySyncRule` scan;
* ``waiver-discipline`` — every waiver names a registered rule and carries a
  justification.

Rules are pure functions of a parsed file (plus, for the registry-synced
rules, the live in-process registries); adding one is a subclass + one
:func:`~repro.analysis.staticcheck.registry.register_rule` call.
"""

from __future__ import annotations

import ast
import re
import sys
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.staticcheck.findings import Finding
from repro.analysis.staticcheck.registry import Rule, dotted_name, register_rule
from repro.analysis.staticcheck.walker import FileContext

#: Packages under ``repro`` ordered bottom-up; a module may import repro
#: packages at its own layer or below, never strictly above.  Top-level
#: modules (``cli``, ``__main__``, ``__init__``) sit at the top; unknown
#: *import targets* (leaf modules like ``_version``) default to the bottom so
#: they are importable from anywhere, while unknown *files* default to the
#: top so they may import anything.
IMPORT_LAYERS: Dict[str, int] = {
    "core": 0,
    "algorithms": 1,
    "ebsn": 1,
    "hardness": 1,
    "datasets": 2,
    "analysis": 2,
    "service": 2,
    "experiments": 3,
    "cli": 4,
    "__main__": 4,
    "__init__": 4,
}


def _module_component(rel_path: str) -> str:
    """The repro sub-package (or top-level module stem) of a source file."""
    parts = rel_path.split("/")
    try:
        index = parts.index("repro")
    except ValueError:
        return parts[-1].removesuffix(".py")
    remainder = parts[index + 1 :]
    if not remainder:
        return "__init__"
    if len(remainder) == 1:
        return remainder[0].removesuffix(".py")
    return remainder[0]


@register_rule
class NoNondeterminismRule(Rule):
    """Determinism hazards in the deterministic layers.

    ``core/`` and ``algorithms/`` promise bit-identical results across
    backends and runs; wall-clock reads, unseeded randomness and
    set-iteration order all break that silently.  The seeded RAND baseline
    (``algorithms/rand.py``) is the one sanctioned randomness site.
    """

    id = "no-nondeterminism"
    summary = (
        "no random/time.time/datetime.now/np.random or set-iteration-order "
        "dependence in the deterministic layers"
    )
    path_prefixes = ("src/repro/core/", "src/repro/algorithms/")
    path_excludes = ("src/repro/algorithms/rand.py",)

    #: Call chains that read wall-clock time or entropy.  Matched against the
    #: dotted call name by suffix, so both ``datetime.now()`` and
    #: ``datetime.datetime.now()`` are caught.  ``time.monotonic`` and
    #: ``time.perf_counter`` stay legal: they feed elapsed-time metrics, never
    #: results.
    BANNED_CALLS: Tuple[str, ...] = (
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
    )
    #: Modules whose import alone is a hazard in this scope.
    BANNED_MODULES: Tuple[str, ...] = ("random", "secrets")

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in self.BANNED_MODULES:
                        yield self.finding(
                            context,
                            node,
                            f"import of {alias.name!r} in a deterministic layer; "
                            "randomness belongs in the seeded algorithms/rand.py",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                top = module.split(".")[0]
                if top in self.BANNED_MODULES:
                    yield self.finding(
                        context,
                        node,
                        f"import from {module!r} in a deterministic layer; "
                        "randomness belongs in the seeded algorithms/rand.py",
                    )
                elif module.startswith(("numpy.random", "np.random")):
                    yield self.finding(
                        context,
                        node,
                        "numpy.random import in a deterministic layer; results "
                        "must not depend on global RNG state",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                for banned in self.BANNED_CALLS:
                    if dotted == banned or dotted.endswith("." + banned):
                        yield self.finding(
                            context,
                            node,
                            f"call of {dotted}() in a deterministic layer; "
                            "wall-clock and entropy reads make results "
                            "run-dependent (time.monotonic/perf_counter are "
                            "fine for elapsed-time metrics)",
                        )
                        break
                else:
                    if dotted.startswith(("np.random.", "numpy.random.")):
                        yield self.finding(
                            context,
                            node,
                            f"call of {dotted}() in a deterministic layer; "
                            "results must not depend on global RNG state",
                        )
            for iterator in self._order_dependent_iterations(node):
                yield self.finding(
                    context,
                    iterator,
                    "iteration over a set has nondeterministic order across "
                    "interpreter runs; sort it (or iterate a list/dict) before "
                    "the order can reach a schedule or counter",
                )

    @staticmethod
    def _is_set_expression(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _order_dependent_iterations(self, node: ast.AST) -> Iterator[ast.AST]:
        """Places where a set's arbitrary order escapes into a sequence."""
        if isinstance(node, ast.For) and self._is_set_expression(node.iter):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                if self._is_set_expression(generator.iter):
                    yield generator.iter
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple")
            and len(node.args) == 1
            and self._is_set_expression(node.args[0])
        ):
            yield node


@register_rule
class ImportsPolicyRule(Rule):
    """The stdlib+NumPy dependency policy and the bottom-up layer order.

    Third-party imports other than ``numpy`` are allowed only behind a
    ``try/except ImportError`` optional-dependency guard (the pattern
    ``ebsn/network.py`` uses for its networkx extra).  Intra-``repro``
    imports must respect :data:`IMPORT_LAYERS`: ``core`` never imports
    ``experiments``, and so on up the stack.
    """

    id = "imports-policy"
    summary = (
        "stdlib+NumPy only (other third-party imports need an ImportError "
        "guard) and no upward imports across the repro layer order"
    )
    path_prefixes = ("src/repro/",)

    ALLOWED_THIRD_PARTY: Tuple[str, ...] = ("numpy",)

    def check(self, context: FileContext) -> Iterator[Finding]:
        guarded = self._importerror_guarded_nodes(context.tree)
        file_layer = IMPORT_LAYERS.get(_module_component(context.rel_path), 4)
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: same package, same layer
                    continue
                modules = [node.module or ""]
            else:
                continue
            for module in modules:
                top = module.split(".")[0]
                if top == "repro":
                    components = module.split(".")
                    target = components[1] if len(components) > 1 else "__init__"
                    target_layer = IMPORT_LAYERS.get(target, 0)
                    if target_layer > file_layer:
                        yield self.finding(
                            context,
                            node,
                            f"upward import: this module sits in layer "
                            f"{file_layer} but imports {module!r} from layer "
                            f"{target_layer}; invert the dependency or move "
                            "the shared code down",
                        )
                elif top in sys.stdlib_module_names or top in self.ALLOWED_THIRD_PARTY:
                    continue
                elif id(node) not in guarded:
                    yield self.finding(
                        context,
                        node,
                        f"third-party import {module!r}: the stack is "
                        "stdlib+NumPy only; gate optional dependencies behind "
                        "try/except ImportError with a clear error message",
                    )

    @staticmethod
    def _importerror_guarded_nodes(tree: ast.AST) -> Set[int]:
        """ids of import nodes inside a try whose handlers catch ImportError."""
        guarded: Set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            catches_import_error = False
            for handler in node.handlers:
                names = []
                if isinstance(handler.type, ast.Tuple):
                    names = [dotted_name(element) for element in handler.type.elts]
                elif handler.type is not None:
                    names = [dotted_name(handler.type)]
                if any(
                    name in ("ImportError", "ModuleNotFoundError") for name in names
                ):
                    catches_import_error = True
            if not catches_import_error:
                continue
            for child in node.body:
                for descendant in ast.walk(child):
                    if isinstance(descendant, (ast.Import, ast.ImportFrom)):
                        guarded.add(id(descendant))
        return guarded


@register_rule
class BroadExceptRule(Rule):
    """Bare ``except:`` / ``except Exception`` without a surfacing story.

    A handler that re-raises (any ``raise`` directly in its body) is fine —
    the error still surfaces.  Anything else needs a waiver whose
    justification says where the error is reported instead.
    """

    id = "broad-except"
    summary = (
        "no bare except / except Exception unless the handler re-raises or a "
        "waiver explains where the error is reported"
    )

    BROAD_NAMES = ("Exception", "BaseException")

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            if self._reraises(node):
                continue  # the error is re-raised (possibly wrapped): it surfaces
            label = "bare except:" if broad == "" else f"except {broad}:"
            yield self.finding(
                context,
                node,
                f"{label} swallows errors silently; catch the exceptions the "
                "block can actually raise, re-raise after cleanup, or waive "
                "with a justification naming where the error is reported",
            )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        """Whether the handler body contains a ``raise`` on some path.

        Conditional re-raises (``raise`` nested in if/try/with/loops) count;
        a ``raise`` inside a nested function/class definition does not — it
        runs on that function's call, not on this handler's path.
        """
        stack: List[ast.AST] = list(handler.body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Raise):
                return True
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
            ):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return False

    def _broad_name(self, type_node: Optional[ast.AST]) -> Optional[str]:
        """The broad exception name caught by ``type_node`` (None = narrow)."""
        if type_node is None:
            return ""
        candidates = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        for candidate in candidates:
            dotted = dotted_name(candidate)
            if dotted in self.BROAD_NAMES:
                return dotted
        return None


#: Methods that mutate their receiver in place (list/dict/set/deque API).
_MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "clear", "discard", "extend",
        "extendleft", "insert", "move_to_end", "pop", "popitem", "popleft",
        "remove", "reverse", "setdefault", "sort", "update",
    }
)


@register_rule
class LockDisciplineRule(Rule):
    """Lock discipline of the distributed layer's shared mutable state.

    Within a class, any ``self.<attr>`` that is mutated under a
    ``with self.lock:`` / ``with self._lock:`` block is *lock-guarded*:
    every other mutation of it (assignment, augmented assignment, item
    assignment or an in-place mutator call) must also hold the lock.
    ``__init__`` is exempt — no other thread can hold a reference yet.
    This is exactly the race class PR 6's abort-flag fix patched by hand.
    """

    id = "lock-discipline"
    summary = (
        "in core/distributed/ and service/, attributes mutated under "
        "`with self.lock` / `self._lock` are mutated nowhere else without "
        "the lock"
    )
    path_prefixes = ("src/repro/core/distributed/", "src/repro/service/")

    LOCK_ATTRS = ("lock", "_lock")

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(context, node)

    def _check_class(
        self, context: FileContext, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        mutations: List[Tuple[str, ast.AST, bool, str]] = []
        for item in class_def.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect(item, item.name, False, mutations)
        guarded = {attr for attr, _, under_lock, _ in mutations if under_lock}
        for attr, node, under_lock, method in mutations:
            if under_lock or method in ("__init__", "__new__"):
                continue
            if attr in guarded:
                yield self.finding(
                    context,
                    node,
                    f"self.{attr} is mutated under `with self.lock`/`self._lock` "
                    f"elsewhere in {class_def.name} but is mutated here without "
                    "it; take the lock (or waive with the synchronisation "
                    "argument)",
                )

    def _is_self_lock(self, expression: ast.AST) -> bool:
        return (
            isinstance(expression, ast.Attribute)
            and isinstance(expression.value, ast.Name)
            and expression.value.id == "self"
            and expression.attr in self.LOCK_ATTRS
        )

    @staticmethod
    def _self_attr(expression: ast.AST) -> Optional[str]:
        """``attr`` when ``expression`` is ``self.attr`` (possibly subscripted)."""
        if isinstance(expression, ast.Subscript):
            expression = expression.value
        if (
            isinstance(expression, ast.Attribute)
            and isinstance(expression.value, ast.Name)
            and expression.value.id == "self"
        ):
            return expression.attr
        return None

    def _collect(
        self,
        node: ast.AST,
        method: str,
        under_lock: bool,
        mutations: List[Tuple[str, ast.AST, bool, str]],
    ) -> None:
        """Record every ``self.<attr>`` mutation below ``node`` (lock-aware)."""
        if isinstance(node, ast.With):
            holds = under_lock or any(
                self._is_self_lock(item.context_expr) for item in node.items
            )
            for child in ast.iter_child_nodes(node):
                self._collect(child, method, holds, mutations)
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            # A bare annotation (`self.x: int` with no value) declares, never
            # mutates — only value-carrying assignments count.
            if not (isinstance(node, ast.AnnAssign) and node.value is None):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    attr = self._self_attr(target)
                    if attr is not None:
                        mutations.append((attr, node, under_lock, method))
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                attr = self._self_attr(node.func.value)
                if attr is not None:
                    mutations.append((attr, node, under_lock, method))
        for child in ast.iter_child_nodes(node):
            self._collect(child, method, under_lock, mutations)


@register_rule
class NoDeprecatedShimsRule(Rule):
    """Internal call sites must use ``ExecutionConfig``, not the legacy kwargs.

    The ``backend=`` / ``chunk_size=`` / ``workers=`` loose knobs on the
    scheduler/engine/harness entry points are ``DeprecationWarning`` shims
    kept for external callers; inside the tree every call passes one
    ``execution=ExecutionConfig(...)``.  The CI ``-W error::DeprecationWarning``
    test leg proves the same property dynamically.
    """

    id = "no-deprecated-shims"
    summary = (
        "internal calls to the engine/scheduler/harness entry points pass "
        "execution=ExecutionConfig(...), never the legacy "
        "backend=/chunk_size=/workers= kwargs"
    )
    path_prefixes = ("src/repro/",)

    LEGACY_KWARGS = frozenset({"backend", "chunk_size", "workers"})
    SHIM_CALLEES = frozenset(
        {
            "ScoringEngine",
            "BaseScheduler",
            "run_algorithms",
            "run_experiment_point",
            "run_scheduler",
            "scheduler_cls",
        }
    )

    def _is_shim_entry_point(self, callee: Optional[str]) -> bool:
        if callee is None:
            return False
        tail = callee.rsplit(".", 1)[-1]
        return tail in self.SHIM_CALLEES or tail.endswith("Scheduler")

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            if not self._is_shim_entry_point(dotted_name(node.func)):
                continue
            legacy = sorted(
                keyword.arg
                for keyword in node.keywords
                if keyword.arg in self.LEGACY_KWARGS
            )
            if legacy:
                yield self.finding(
                    context,
                    node,
                    f"deprecated execution kwargs {', '.join(legacy)} passed to "
                    f"{dotted_name(node.func)}(); pass "
                    "execution=ExecutionConfig(...) instead (the shims warn "
                    "and will be removed)",
                )


@register_rule
class CounterDisciplineRule(Rule):
    """Counter totals advance only through the canonical helpers.

    The paper's computation counters must be bit-identical across backends;
    a raw ``counter.score_computations += n`` bypasses the user-weighting
    and initial/update bookkeeping of
    :meth:`~repro.core.counters.ComputationCounter.count_scores` and breaks
    the equivalence suites in ways that only show at aggregation time.
    ``num_users`` stays assignable — it is configuration, not a total.
    """

    id = "counter-discipline"
    summary = (
        "outside core/counters.py, counter totals are never assigned raw — "
        "use the count_*/bump helpers"
    )
    path_prefixes = ("src/repro/",)
    path_excludes = (
        "src/repro/core/counters.py",
        "src/repro/service/stats.py",
    )

    COUNTER_FIELDS = frozenset(
        {
            "score_computations",
            "user_computations",
            "initial_computations",
            "update_computations",
            "assignments_examined",
            "assignments_generated",
            "selections",
            # Saved-work ledger of the online scheduling service
            # (repro.service.stats.SessionStats).
            "mutations_applied",
            "mutation_batches",
            "stale_rows_marked",
            "stale_columns_marked",
            "resolves_total",
            "warm_resolves",
            "scores_recomputed",
            "scores_saved",
        }
    )

    #: Canonical helper for each field, named in the finding message.
    HELPERS = {
        "score_computations": "ComputationCounter.count_score/count_scores",
        "user_computations": "ComputationCounter.count_score/count_scores",
        "initial_computations": "ComputationCounter.count_score(initial=True)",
        "update_computations": "ComputationCounter.count_score(initial=False)",
        "assignments_examined": "ComputationCounter.count_examined",
        "assignments_generated": "ComputationCounter.count_generated",
        "selections": "ComputationCounter.count_selection",
        "mutations_applied": "SessionStats.record_batch",
        "mutation_batches": "SessionStats.record_batch",
        "stale_rows_marked": "SessionStats.record_batch",
        "stale_columns_marked": "SessionStats.record_batch",
        "resolves_total": "SessionStats.record_resolve",
        "warm_resolves": "SessionStats.record_resolve",
        "scores_recomputed": "SessionStats.record_resolve",
        "scores_saved": "SessionStats.record_resolve",
    }

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                if isinstance(node, ast.AnnAssign) and node.value is None:
                    continue  # bare annotation: declares a field, mutates nothing
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in self.COUNTER_FIELDS
                    ):
                        helper = self.HELPERS[target.attr]
                        yield self.finding(
                            context,
                            node,
                            f"raw mutation of the {target.attr!r} counter field; "
                            f"use {helper} so totals stay backend-exact",
                        )
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Attribute)
                        and target.value.attr == "extra"
                        and (dotted_name(target.value) or "").split(".")[-2:-1]
                        in (["counter"], ["_counter"], ["counters"])
                    ):
                        yield self.finding(
                            context,
                            node,
                            "raw item assignment into a counter's extra dict; "
                            "use ComputationCounter.bump",
                        )


@register_rule
class NoMutableDefaultRule(Rule):
    """Mutable default argument values (shared across calls)."""

    id = "no-mutable-default"
    summary = "no list/dict/set (literal or constructor) default argument values"

    MUTABLE_CONSTRUCTORS = frozenset(
        {"list", "dict", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        context,
                        default,
                        "mutable default argument value is shared across "
                        "calls; default to None and create the object inside "
                        "the function",
                    )

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self.MUTABLE_CONSTRUCTORS
        )


class RegistrySyncRule(Rule):
    """Shared scan of the docstring↔registry sync rules (not itself registered).

    One parameterised invariant: a name quoted next to an axis noun in a
    docstring (``\\`\\`batch\\`\\` backend``, ``storage="sparse"``,
    ``plan 'blocked'``) must exist in that axis's live in-process registry —
    a renamed entry would otherwise linger in prose forever.  A subclass
    names the axis (:attr:`entity` / :attr:`registry_entity`), gives the
    prose-adjacency regex fragment (:attr:`noun_pattern`) and keyword
    spelling (:attr:`keyword`), and reads the registry in
    :meth:`registered_names`; the scan itself is inherited.  Adding a sync
    rule for a new registry axis is one small subclass.
    """

    path_prefixes = ("src/repro/",)

    #: Noun of the axis as it appears before/around a quoted name in prose
    #: ("backend"), used in finding messages.
    entity: str = ""
    #: Noun of the registry entry ("backend", "store", "plan") — may differ
    #: from :attr:`entity` ("storage" vs ``register_store()``'s "store").
    registry_entity: str = ""
    #: Regex fragment matching the axis noun *after* a quoted name
    #: (``\`\`name\`\` backend``); defaults to :attr:`keyword`.
    noun_pattern: str = ""
    #: Keyword spelling of the axis (``backend="batch"`` / ``backend 'batch'``).
    keyword: str = ""

    def registered_names(self) -> Set[str]:
        """The axis's live registry (read at check time, never cached)."""
        raise NotImplementedError

    @property
    def mention_patterns(self) -> Tuple[re.Pattern, ...]:
        """The three docstring idioms a name mention can take: ``name``
        <noun> / <keyword>="name" / <keyword> 'name'."""
        noun = self.noun_pattern or self.keyword
        return (
            re.compile(r"[`'\"]([a-z][a-z0-9_]*)[`'\"]+\s+" + noun),
            re.compile(self.keyword + r"\s*=\s*[`'\"]+([a-z][a-z0-9_]*)[`'\"]"),
            re.compile(self.keyword + r"\s+[`'\"]+([a-z][a-z0-9_]*)[`'\"]"),
        )

    def check(self, context: FileContext) -> Iterator[Finding]:
        registered = set(self.registered_names())
        for node in ast.walk(context.tree):
            if not isinstance(
                node, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            docstring = ast.get_docstring(node, clean=False)
            if not docstring or not node.body:
                continue
            constant = node.body[0].value  # type: ignore[union-attr]
            base_line = getattr(constant, "lineno", 1)
            for pattern in self.mention_patterns:
                for match in pattern.finditer(docstring):
                    name = match.group(1)
                    if name in registered:
                        continue
                    line = base_line + docstring[: match.start()].count("\n")
                    yield self.finding(
                        context,
                        line,
                        f"docstring mentions a {name!r} {self.entity} but the "
                        f"live registry has no such {self.registry_entity} "
                        f"(registered: {', '.join(sorted(registered))}); fix "
                        f"the docstring or register the {self.registry_entity}",
                    )


@register_rule
class DocstringBackendSyncRule(RegistrySyncRule):
    """Backend names quoted in docstrings must exist in the live registry.

    The docs subsystem drift-checks the README/ARCHITECTURE backend tables;
    this closes the same loop for the docstrings, where a renamed backend
    would otherwise linger forever (exactly the stale-docstring class PR 4
    fixed by hand in ``ScoringEngine.backend``).
    """

    id = "docstring-backend-sync"
    summary = (
        "backend names mentioned in docstrings exist in the live "
        "register_backend() registry"
    )
    entity = "backend"
    registry_entity = "backend"
    keyword = "backend"

    def registered_names(self) -> Set[str]:
        from repro.core.execution import available_backends

        return set(available_backends())


@register_rule
class DocstringStorageSyncRule(RegistrySyncRule):
    """Storage names quoted in docstrings must exist in the live registry.

    The sibling of :class:`DocstringBackendSyncRule` for the instance-storage
    axis: the docs subsystem drift-checks the ARCHITECTURE storage table, and
    this rule closes the same loop for docstrings that name a ``register_store()``
    entry — a renamed store would otherwise linger in prose forever.
    """

    id = "docstring-storage-sync"
    summary = (
        "storage names mentioned in docstrings exist in the live "
        "register_store() registry"
    )
    entity = "storage"
    registry_entity = "store"
    noun_pattern = r"stor(?:e|age)\b"
    keyword = "storage"

    def registered_names(self) -> Set[str]:
        from repro.core.storage import available_stores

        return set(available_stores())


@register_rule
class DocstringPlanSyncRule(RegistrySyncRule):
    """Scoring-plan names quoted in docstrings must exist in the live registry.

    The third axis of the same invariant: docstrings naming a
    ``register_plan()`` entry (``\\`\\`blocked\\`\\` plan``, ``plan="direct"``)
    must track the live plan registry, mirroring the backend and storage
    sync rules above.
    """

    id = "docstring-plan-sync"
    summary = (
        "scoring-plan names mentioned in docstrings exist in the live "
        "register_plan() registry"
    )
    entity = "plan"
    registry_entity = "plan"
    noun_pattern = r"plan\b"
    keyword = "plan"

    def registered_names(self) -> Set[str]:
        from repro.core.execution import available_plans

        return set(available_plans())


@register_rule
class WaiverDisciplineRule(Rule):
    """Waivers must name registered rules and carry a justification."""

    id = "waiver-discipline"
    summary = (
        "every `# staticcheck: allow(...)` waiver names registered rules and "
        "carries a justification after `--`"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        from repro.analysis.staticcheck.registry import available_rules

        registered = set(available_rules())
        for waiver in context.waivers:
            if not waiver.rules:
                yield self.finding(
                    context,
                    waiver.line,
                    "waiver names no rule; spell it "
                    "`# staticcheck: allow(<rule-id>) -- <justification>`",
                )
                continue
            for rule_id in waiver.rules:
                if rule_id not in registered:
                    yield self.finding(
                        context,
                        waiver.line,
                        f"waiver names unknown rule {rule_id!r}; registered "
                        f"rules: {', '.join(sorted(registered))}",
                    )
            if not waiver.justification:
                yield self.finding(
                    context,
                    waiver.line,
                    "waiver carries no justification; append "
                    "`-- <why this invariant does not apply here>`",
                )


__all__ = [
    "BroadExceptRule",
    "CounterDisciplineRule",
    "DocstringBackendSyncRule",
    "DocstringPlanSyncRule",
    "DocstringStorageSyncRule",
    "RegistrySyncRule",
    "IMPORT_LAYERS",
    "ImportsPolicyRule",
    "LockDisciplineRule",
    "NoDeprecatedShimsRule",
    "NoMutableDefaultRule",
    "NoNondeterminismRule",
    "WaiverDisciplineRule",
]
