"""``repro.analysis.staticcheck`` — the project-invariant lint framework.

A stdlib-only (``ast`` + ``tokenize``) static-analysis pass that proves the
ROADMAP's source-level invariants *before* any test runs: determinism of the
core layers, the stdlib+NumPy dependency policy, lock discipline in the
distributed layer, no deprecated execution-kwarg shims at internal call
sites, counter discipline, and docstring/registry sync.  The design mirrors
the execution layer one-to-one:

* :class:`~repro.analysis.staticcheck.registry.Rule` +
  :func:`~repro.analysis.staticcheck.registry.register_rule` — a name
  registry of rule strategies (the lint twin of ``register_backend()``);
* :func:`~repro.analysis.staticcheck.walker.run_lint` — the file/package
  walker shared by the ``repro lint`` CLI, the CI gate and the tests;
* per-line ``# staticcheck: allow(<rule>) -- justification`` waivers
  (:mod:`~repro.analysis.staticcheck.waivers`), themselves checked by the
  ``waiver-discipline`` rule;
* structured :class:`~repro.analysis.staticcheck.findings.Finding` records
  rendered as text (:mod:`~repro.analysis.staticcheck.report`) or as the
  stable ``--json`` schema
  (:meth:`~repro.analysis.staticcheck.walker.LintReport.to_json`).

``docs/STATIC_ANALYSIS.md`` documents every rule; its table is drift-checked
against :func:`available_rules` by ``tests/test_docs_sync.py``.
"""

from repro.analysis.staticcheck.findings import (
    Finding,
    SEVERITIES,
    SEVERITY_ERROR,
    SEVERITY_WARNING,
)
from repro.analysis.staticcheck.registry import (
    LintError,
    Rule,
    available_rules,
    get_rule,
    register_rule,
    resolve_rules,
    rule_catalog,
)
from repro.analysis.staticcheck.waivers import Waiver, collect_waivers
from repro.analysis.staticcheck.walker import (
    FileContext,
    LINT_SCHEMA_VERSION,
    LintReport,
    SYNTAX_ERROR_RULE,
    run_lint,
)
from repro.analysis.staticcheck import rules as _rules  # noqa: F401  (registers the rules)
from repro.analysis.staticcheck.report import (
    format_report,
    format_rule_table,
    format_summary,
)

__all__ = [
    "FileContext",
    "Finding",
    "LINT_SCHEMA_VERSION",
    "LintError",
    "LintReport",
    "Rule",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "SYNTAX_ERROR_RULE",
    "Waiver",
    "available_rules",
    "collect_waivers",
    "format_report",
    "format_rule_table",
    "format_summary",
    "get_rule",
    "register_rule",
    "resolve_rules",
    "rule_catalog",
    "run_lint",
]
