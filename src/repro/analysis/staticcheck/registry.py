"""The rule registry (the lint analogue of ``register_backend()``).

Rules are classes registered by id; :func:`register_rule` mirrors
:func:`repro.core.execution.register_backend` exactly — same decorator shape,
same duplicate-name guard, same "one-module change adds a rule" property.
``repro lint`` runs whatever the registry holds, the ``--rules`` flag selects
by id, and ``docs/STATIC_ANALYSIS.md``'s rule table is drift-checked against
:func:`available_rules` by ``tests/test_docs_sync.py``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Tuple, Type

from repro.core.errors import ReproError

from repro.analysis.staticcheck.findings import SEVERITY_ERROR, Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.staticcheck.walker import FileContext


class LintError(ReproError):
    """Raised on lint configuration errors (unknown rule id, bad paths, …)."""


class Rule:
    """One project invariant, checked against a parsed file.

    Subclasses set the class attributes and implement :meth:`check`; path
    scoping is declarative (``path_prefixes`` / ``path_excludes`` against the
    project-root-relative POSIX path) so the scope shows up verbatim in the
    rule catalogue and the docs table.

    Class attributes
    ----------------
    id:
        Registry id (kebab-case; what waivers and ``--rules`` name).
    summary:
        One-line description of the invariant (shown by ``--list-rules`` and
        drift-checked against the docs).
    path_prefixes:
        Rel-path prefixes the rule applies to (empty = every scanned file).
    path_excludes:
        Rel-path prefixes exempt from the rule (e.g. the seeded
        ``rand.py`` under the no-nondeterminism rule).
    severity:
        Severity stamped on the rule's findings.
    """

    id: str = "abstract"
    summary: str = ""
    path_prefixes: Tuple[str, ...] = ()
    path_excludes: Tuple[str, ...] = ()
    severity: str = SEVERITY_ERROR

    def applies_to(self, context: "FileContext") -> bool:
        """Whether this rule runs against ``context``'s file (path scoping)."""
        path = context.rel_path
        if any(path.startswith(prefix) for prefix in self.path_excludes):
            return False
        if not self.path_prefixes:
            return True
        return any(path.startswith(prefix) for prefix in self.path_prefixes)

    def check(self, context: "FileContext") -> Iterator[Finding]:
        """Yield every violation of this rule in ``context``'s file."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    def finding(self, context: "FileContext", node: object, message: str) -> Finding:
        """A :class:`Finding` of this rule at ``node`` (an AST node or line)."""
        if isinstance(node, int):
            line = node
        else:
            line = getattr(node, "lineno", 0)
        return Finding(
            path=context.rel_path,
            line=line,
            rule=self.id,
            message=message,
            severity=self.severity,
        )

    @property
    def scope(self) -> str:
        """Human-readable scope string (derived from the path attributes)."""
        if not self.path_prefixes:
            scope = "everything scanned"
        else:
            scope = ", ".join(f"`{prefix}`" for prefix in self.path_prefixes)
        if self.path_excludes:
            scope += " except " + ", ".join(f"`{p}`" for p in self.path_excludes)
        return scope


_RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule], *, replace_existing: bool = False) -> Type[Rule]:
    """Register a lint rule class (usable as a decorator).

    After registration the rule runs on every ``repro lint`` invocation and
    is selectable by id through ``--rules``; adding a rule is a one-module
    change, exactly like adding an execution backend through
    :func:`repro.core.execution.register_backend`.

    Raises
    ------
    LintError
        If a rule with the same id exists and ``replace_existing`` is False.
    """
    if not replace_existing and cls.id in _RULE_REGISTRY:
        raise LintError(f"a lint rule with id {cls.id!r} is already registered")
    _RULE_REGISTRY[cls.id] = cls
    return cls


def available_rules() -> Tuple[str, ...]:
    """Ids of every registered rule, in registration order."""
    return tuple(_RULE_REGISTRY)


def get_rule(rule_id: str) -> Type[Rule]:
    """The rule class registered under ``rule_id``.

    Raises
    ------
    LintError
        With the currently-available ids when ``rule_id`` is unknown.
    """
    try:
        return _RULE_REGISTRY[rule_id]
    except KeyError:
        raise LintError(
            f"unknown lint rule {rule_id!r}; registered rules: "
            f"{', '.join(available_rules())}"
        ) from None


def resolve_rules(rule_ids: Iterable[str] | None = None) -> List[Rule]:
    """Instances of the selected rules (``None`` = the whole registry)."""
    if rule_ids is None:
        return [cls() for cls in _RULE_REGISTRY.values()]
    return [get_rule(rule_id)() for rule_id in rule_ids]


def rule_catalog() -> List[Dict[str, str]]:
    """One row per registered rule: id, scope, severity, summary.

    The shape mirrors :func:`repro.core.execution.backend_catalog` so the CLI
    renders it with the same table formatter, and the docs table is checked
    against it.
    """
    rows = []
    for cls in _RULE_REGISTRY.values():
        rule = cls()
        rows.append(
            {
                "rule": rule.id,
                "scope": rule.scope,
                "severity": rule.severity,
                "summary": rule.summary,
            }
        )
    return rows


def dotted_name(node: ast.AST) -> str | None:
    """The dotted source form of a Name/Attribute chain (``None`` otherwise).

    ``ast.Attribute(value=Name("time"), attr="time")`` → ``"time.time"``.
    Chains hanging off calls or subscripts resolve their known tail
    (``x().y.z`` → ``?.y.z``) so suffix matching still works.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("?")
    else:
        return None
    return ".".join(reversed(parts))


__all__ = [
    "LintError",
    "Rule",
    "available_rules",
    "dotted_name",
    "get_rule",
    "register_rule",
    "resolve_rules",
    "rule_catalog",
]
