"""Structured lint findings (the unit of output of every rule).

A :class:`Finding` is deliberately a plain, hashable record — ``rule id,
path, line, message, severity`` — so the CLI can render it as text, the CI
job can serialise it to JSON, and the tests can compare sets of findings
without caring which rule produced them.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict

#: A finding that must fail the build.
SEVERITY_ERROR = "error"
#: A finding that is reported (and still fails ``repro lint``) but flags a
#: discipline problem rather than a correctness hazard.
SEVERITY_WARNING = "warning"

#: The closed set of severities, in decreasing order of gravity.
SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    path:
        Project-root-relative POSIX path of the offending file.
    line:
        1-based line number of the violation (0 when the finding concerns
        the file as a whole, e.g. a syntax error with no position).
    rule:
        Registry id of the rule that produced the finding.
    message:
        Human-readable description, including the remedy where one exists.
    severity:
        :data:`SEVERITY_ERROR` or :data:`SEVERITY_WARNING`.
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = SEVERITY_ERROR

    def format(self) -> str:
        """The one-line ``path:line: [rule] message`` rendering."""
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_json(self) -> Dict[str, object]:
        """A plain-dict copy with a stable key set (for ``--json`` output)."""
        return asdict(self)


__all__ = [
    "Finding",
    "SEVERITIES",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
]
