"""Interest-pattern block decomposition of an instance (structure mining).

The user–event interest matrix of an EBSN instance is a bipartite graph, and
real instances (and our generators) are full of users with *identical*
interest rows — communities that share one candidate set and one interest
pattern.  Every scoring kernel in the library computes per-user attendance
terms, so duplicate rows mean duplicate arithmetic: if ``|U|`` users collapse
to ``P`` distinct patterns, a block evaluation only needs ``P`` genuine
columns and a cheap expansion.

This module is the block-decomposition subsystem:

* :func:`mine_interest_structure` finds the exact user equivalence classes —
  users whose µ rows, σ rows and competing-interest rows are all identical —
  via the chunked lexsort partition refinement of :mod:`repro.core.patterns`
  (re-exported here).  Equivalent users receive identical per-user terms from
  every kernel under *every* schedule: identical µ rows imply identical
  scheduled sums forever, so the classes never need re-mining as the
  schedule grows.
* :func:`greedy_dense_blocks` optionally groups the classes further into
  (near-)maximal dense blocks — bicliques of user classes × events in the
  style of BBK's maximal-biclique enumeration (see PAPERS.md): classes with
  identical candidate sets form exact maximal bicliques, and a greedy absorb
  pass extends each event set with every class whose candidate set contains
  it.  The blocks are an analysis artefact (reported through
  :meth:`BlockedPlan.stats` and the block-decomposition benchmark); the
  scoring fast path needs only the equivalence classes.

The structure feeds two consumers: the engine's structural per-interval Φ
bound (:meth:`~repro.core.scoring.ScoringEngine.interval_score_bound`, one
genuine term per pattern), and the ``blocked`` scoring plan below
(:class:`BlockedPlan`, registered with
:func:`~repro.core.execution.register_plan` so it is selectable everywhere
as ``plan="blocked"``): one genuine kernel evaluation per distinct pattern,
expanded by multiplicity *before* the per-row reduction.  The expansion
reproduces the direct kernel's ``(block, |U|)`` contribution matrix element
for element, and the reduction runs over the same axis of an equally-shaped
C-contiguous array, so NumPy's pairwise summation adds the same values in
the same order — scores, schedules, utilities and counters stay
bit-identical to the ``direct`` reference across every backend × storage
combination.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core import execution
from repro.core.errors import SolverError
from repro.core.execution import ScoringPlan, _guarded_divide, resolve_chunk_size
from repro.core.instance import SESInstance
from repro.core.patterns import InterestStructure, mine_structure
from repro.core.scoring import ScoringEngine, build_event_rows, build_static_arrays


# --------------------------------------------------------------------------- #
# Equivalence-class mining (instance-level façade over repro.core.patterns)
# --------------------------------------------------------------------------- #
def mine_interest_structure(
    instance: SESInstance, *, chunk_size: Optional[int] = None
) -> InterestStructure:
    """Mine the exact user equivalence classes of one instance.

    Streams the interest matrix event block by event block (each block at
    most ``chunk_size`` events — ``None`` derives the engine's default from
    the memory budget), then refines by the σ and competing-interest rows.
    Works unchanged over every registered storage: the event-row source
    densifies sparse and mmap stores one block at a time.
    """
    comp, sigma, values, _ = build_static_arrays(instance)
    event_rows = build_event_rows(instance.interest.store, values)
    chunk = resolve_chunk_size(chunk_size, instance.num_users)
    return mine_structure(event_rows, sigma, comp, chunk)


# --------------------------------------------------------------------------- #
# BBK-style greedy dense blocks (optional, analysis artefact)
# --------------------------------------------------------------------------- #
class InterestBlock:
    """One dense block: user classes fully interested in a common event set."""

    __slots__ = ("classes", "events", "num_users")

    def __init__(
        self, classes: Tuple[int, ...], events: Tuple[int, ...], num_users: int
    ) -> None:
        self.classes = classes
        self.events = events
        self.num_users = num_users

    @property
    def area(self) -> int:
        """Covered (user, event) cells — all of them non-zero by construction."""
        return self.num_users * len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InterestBlock(classes={len(self.classes)}, "
            f"events={len(self.events)}, users={self.num_users})"
        )


def greedy_dense_blocks(
    instance: SESInstance,
    structure: Optional[InterestStructure] = None,
    *,
    min_events: int = 1,
) -> List[InterestBlock]:
    """Group pattern classes into (near-)maximal dense bicliques, greedily.

    Classes with identical candidate sets (the events their users are
    interested in) form *exact* maximal bicliques; a greedy absorb pass in
    BBK's spirit then extends each block's user side with every class whose
    candidate set contains the block's event set — the result is a biclique
    with a maximal user side for its event set.  Blocks are returned largest
    covered area first; classes with fewer than ``min_events`` candidate
    events are skipped.  Quadratic in the number of *distinct* candidate
    sets (not users), which the mining already collapsed.
    """
    if structure is None:
        structure = mine_interest_structure(instance)
    store = instance.interest.store
    signatures: List[frozenset] = []
    for representative in structure.representatives:
        row = store.row(int(representative))
        signatures.append(frozenset(np.flatnonzero(row > 0.0).tolist()))

    by_signature: Dict[frozenset, List[int]] = {}
    for class_index, signature in enumerate(signatures):
        if len(signature) < min_events:
            continue
        by_signature.setdefault(signature, []).append(class_index)

    blocks: List[InterestBlock] = []
    for signature in by_signature:
        members = [
            class_index
            for class_index, candidate in enumerate(signatures)
            if candidate >= signature
        ]
        covered = int(structure.counts[np.asarray(members, dtype=np.intp)].sum())
        blocks.append(
            InterestBlock(
                classes=tuple(members),
                events=tuple(sorted(signature)),
                num_users=covered,
            )
        )
    blocks.sort(key=lambda block: (-block.area, block.events))
    return blocks


# --------------------------------------------------------------------------- #
# The blocked scoring plan
# --------------------------------------------------------------------------- #
class BlockedPlan(ScoringPlan):
    """Blocked plan: one kernel column per distinct interest pattern, expanded by multiplicity.

    :meth:`prepare` mines the instance's equivalence classes once at engine
    bind time; :meth:`batch_block` then gathers the representative user
    columns, runs the reference arithmetic on the ``(block, P)`` pattern
    matrix and expands the per-pattern contributions back to ``(block, |U|)``
    before the per-row reduction.  Every element of the expanded matrix
    equals the direct kernel's element (equivalent users have identical
    static *and* scheduled per-user state), and the reduction runs over the
    same axis of an equally-shaped contiguous array, so the scores are
    bit-identical — the plan only changes how much genuine arithmetic the
    block costs.  On instances with no duplicate patterns the plan detects
    the degenerate decomposition and falls back to the direct kernel.

    Thread-safe by construction: the mined arrays are read-only after
    :meth:`prepare`, so the ``parallel`` backend can call
    :meth:`batch_block` concurrently; only the stats counters take a lock.
    """

    name = "blocked"

    def __init__(self) -> None:
        super().__init__()
        self._structure: Optional[InterestStructure] = None
        self._degenerate = False
        self._stats_lock = threading.Lock()
        self._blocks_evaluated = 0
        self._columns_saved = 0

    def prepare(self, engine: ScoringEngine) -> None:
        """Mine the equivalence classes from the bound engine's arrays."""
        event_rows = engine._event_rows
        if event_rows is None:
            event_rows = build_event_rows(engine._store, engine._values)
        self._structure = mine_structure(
            event_rows, engine._sigma, engine._comp, engine.chunk_size
        )
        self._degenerate = self._structure.num_classes >= self._structure.num_users

    @property
    def structure(self) -> InterestStructure:
        """The mined decomposition (available after the plan is bound)."""
        if self._structure is None:
            raise SolverError("the blocked plan has not been bound to an engine yet")
        return self._structure

    def mined_structure(self) -> Optional[InterestStructure]:
        """Share the decomposition with the engine's structural Φ bound."""
        return self._structure

    def batch_block(
        self, interval_index: int, mu_rows: np.ndarray, value_mu_rows: np.ndarray
    ) -> np.ndarray:
        engine = self.engine
        if self._degenerate:
            # No duplicate patterns: the expansion would be an identity
            # permutation, so skip the gather and run the reference kernel.
            return execution.score_block_kernel(
                mu_rows,
                value_mu_rows,
                engine._comp[:, interval_index],
                engine._sigma[:, interval_index],
                engine._scheduled_interest[interval_index],
                engine._scheduled_value_interest[interval_index],
                engine._interval_utility[interval_index],
            )
        structure = self._structure
        reps = structure.representatives
        # Reference arithmetic on the (block, P) pattern matrix — the same
        # per-element operation order as score_block_kernel, on gathered
        # columns whose values equal every member user's column.
        denominator = engine._comp[reps, interval_index] + (
            engine._scheduled_interest[interval_index][reps] + mu_rows[:, reps]
        )
        numerator = engine._sigma[reps, interval_index] * (
            engine._scheduled_value_interest[interval_index][reps]
            + value_mu_rows[:, reps]
        )
        contributions = _guarded_divide(numerator, denominator)
        # Expand by multiplicity *before* the reduction: the (block, |U|)
        # matrix equals the direct kernel's element for element.  take()
        # rather than contributions[:, labels]: advanced indexing on axis 1
        # returns an F-contiguous view-shaped copy, and NumPy's pairwise
        # summation uses a different reduction tree over a strided axis —
        # the C-contiguous gather keeps the axis-1 sum adding the same
        # values in the same order as the direct kernel.
        expanded = contributions.take(structure.labels, axis=1)
        scores = expanded.sum(axis=1) - engine._interval_utility[interval_index]
        with self._stats_lock:
            self._blocks_evaluated += 1
            self._columns_saved += mu_rows.shape[0] * (
                structure.num_users - structure.num_classes
            )
        return scores

    def stats(self) -> Dict[str, object]:
        """Structure counters plus cumulative evaluation savings."""
        if self._structure is None:
            return {}
        collected = self._structure.stats()
        with self._stats_lock:
            collected["blocks_evaluated"] = self._blocks_evaluated
            collected["columns_saved"] = self._columns_saved
        return collected


execution.register_plan(BlockedPlan)
# Registered by the library itself: protect it from unregister_plan like the
# other built-ins.
execution._BUILTIN_PLAN_NAMES.add(BlockedPlan.name)


__all__ = [
    "BlockedPlan",
    "InterestBlock",
    "InterestStructure",
    "greedy_dense_blocks",
    "mine_interest_structure",
    "mine_structure",
]
