"""Analytical models of the algorithms' computation counts (paper §3).

The paper accompanies each algorithm with a complexity analysis and two
propositions about when the horizontal policy pays off (Proposition 4) and
when it is at its worst (Propositions 5 and 7).  This subpackage turns those
closed-form expressions into code so they can be checked against the
instrumented counters of the actual implementations — an analytical/empirical
cross-validation of the reproduction.
"""

from repro.analysis.complexity import (
    ComputationForecast,
    forecast,
    hor_performs_fewer_computations,
    predicted_alg_score_computations,
    predicted_hor_score_computations,
    predicted_initial_computations,
    worst_case_k,
)

__all__ = [
    "ComputationForecast",
    "forecast",
    "hor_performs_fewer_computations",
    "predicted_alg_score_computations",
    "predicted_hor_score_computations",
    "predicted_initial_computations",
    "worst_case_k",
]
