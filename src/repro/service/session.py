"""Mutable scheduling sessions with incremental, bit-identical re-solves.

The paper's evaluation is one-shot: build an instance, run a scheduler,
report Ω(S).  A deployed event scheduler lives online instead — events are
announced and cancelled, interest estimates are refreshed, the operator pins
an assignment or frees a stage — and wants the *next* schedule without paying
a cold solve for every edit.  :class:`SchedulingSession` is that online view:
it wraps a live :class:`~repro.core.instance.SESInstance` plus warm scheduler
state, accepts :class:`Mutation` batches, and re-solves incrementally.

The design contract (and what ``tests/test_service_equivalence.py`` proves)
is **bit-identity**: a warm :meth:`SchedulingSession.resolve` returns exactly
the schedule, utilities and initial scores of a cold
:func:`~repro.algorithms.registry.run_scheduler` call on the mutated
instance, across every backend × storage × plan.  Two properties make that
possible:

* the initial |E| × |T| score grid depends only on the instance data and the
  locked assignments (every algorithm consumes it before its first free
  selection), so the session can cache it between resolves; and
* the bulk kernels' per-event reductions are independent of block
  composition, so re-scoring only the **stale** rows (mutated events) and
  columns (intervals whose locked state changed) patches the cached grid to
  exactly the bits a fresh full computation would produce.

Each mutation therefore translates into targeted staleness:

==============================  =============================================
mutation                        invalidates
==============================  =============================================
:class:`AddEvent`               the appended score row
:class:`RemoveEvent`            nothing (the row is deleted)
:class:`UpdateInterest`         the touched events' rows, plus the lock
                                interval's column for touched locked events
:class:`LockAssignment`         the target (and any previous) interval column
:class:`UnlockAssignment`       the freed interval column
:class:`SetIntervalCapacity`    nothing (capacity gates feasibility, not µ)
==============================  =============================================

Batches are **atomic**: every mutation is validated and applied against
scratch copies, and the session commits only if the whole batch succeeds —
a :class:`MutationError` (unknown id, lock on a full interval, contradictory
capacity) leaves the session untouched and queryable.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.algorithms.registry import get_scheduler
from repro.core.counters import ComputationCounter
from repro.core.entities import Event, TimeInterval
from repro.core.errors import InstanceValidationError, SolverError
from repro.core.execution import ExecutionConfig
from repro.core.instance import SESInstance
from repro.service.stats import SessionStats


class MutationError(SolverError):
    """A mutation batch was rejected; the session state is unchanged.

    Raised for unknown entity ids, locks that violate the interval capacity /
    location / resource constraints, removals of locked events, out-of-range
    interest values and capacities contradicting existing locks.  Because
    batches are applied to scratch state first, the error is a pure reject:
    the session keeps serving status, schedule and resolve requests exactly
    as before the batch.
    """


# --------------------------------------------------------------------------- #
# Mutations
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class AddEvent:
    """Announce a new candidate event with one interest value per user."""

    event: Event
    interest: Tuple[float, ...]


@dataclass(frozen=True)
class RemoveEvent:
    """Cancel a candidate event (rejected while the event is locked)."""

    event_id: str


@dataclass(frozen=True)
class UpdateInterest:
    """Overwrite one user's interest for the named events (µ values)."""

    user_id: str
    values: Mapping[str, float]


@dataclass(frozen=True)
class LockAssignment:
    """Pin an event to an interval (re-locking a locked event moves it)."""

    event_id: str
    interval_id: str


@dataclass(frozen=True)
class UnlockAssignment:
    """Release a previously locked event back to the algorithm."""

    event_id: str


@dataclass(frozen=True)
class SetIntervalCapacity:
    """Cap (or uncap, with ``None``) how many events an interval may host."""

    interval_id: str
    capacity: Optional[int]


Mutation = Union[
    AddEvent,
    RemoveEvent,
    UpdateInterest,
    LockAssignment,
    UnlockAssignment,
    SetIntervalCapacity,
]


def mutation_to_dict(mutation: Mutation) -> Dict[str, object]:
    """Serialise one mutation to the wire dict of the ``mutate`` operation."""
    if isinstance(mutation, AddEvent):
        event = mutation.event
        return {
            "op": "add-event",
            "event": {
                "id": event.id,
                "location": event.location,
                "required_resources": event.required_resources,
                "value": event.value,
                "cost": event.cost,
                "tags": list(event.tags),
            },
            "interest": [float(value) for value in mutation.interest],
        }
    if isinstance(mutation, RemoveEvent):
        return {"op": "remove-event", "event_id": mutation.event_id}
    if isinstance(mutation, UpdateInterest):
        return {
            "op": "update-interest",
            "user_id": mutation.user_id,
            "values": {key: float(value) for key, value in mutation.values.items()},
        }
    if isinstance(mutation, LockAssignment):
        return {"op": "lock", "event_id": mutation.event_id, "interval_id": mutation.interval_id}
    if isinstance(mutation, UnlockAssignment):
        return {"op": "unlock", "event_id": mutation.event_id}
    if isinstance(mutation, SetIntervalCapacity):
        return {
            "op": "set-capacity",
            "interval_id": mutation.interval_id,
            "capacity": mutation.capacity,
        }
    raise MutationError(f"unknown mutation object: {mutation!r}")


def mutation_from_dict(payload: Mapping[str, object]) -> Mutation:
    """Inverse of :func:`mutation_to_dict` (validating the ``op`` tag)."""
    if not isinstance(payload, Mapping) or "op" not in payload:
        raise MutationError(f"malformed mutation payload: {payload!r}")
    op = payload["op"]
    try:
        if op == "add-event":
            item = payload["event"]
            event = Event(
                id=str(item["id"]),
                location=str(item["location"]),
                required_resources=float(item.get("required_resources", 0.0)),
                value=float(item.get("value", 1.0)),
                cost=float(item.get("cost", 0.0)),
                tags=tuple(item.get("tags", ())),
            )
            return AddEvent(
                event=event,
                interest=tuple(float(value) for value in payload["interest"]),
            )
        if op == "remove-event":
            return RemoveEvent(event_id=str(payload["event_id"]))
        if op == "update-interest":
            return UpdateInterest(
                user_id=str(payload["user_id"]),
                values={str(key): float(value) for key, value in payload["values"].items()},
            )
        if op == "lock":
            return LockAssignment(
                event_id=str(payload["event_id"]),
                interval_id=str(payload["interval_id"]),
            )
        if op == "unlock":
            return UnlockAssignment(event_id=str(payload["event_id"]))
        if op == "set-capacity":
            capacity = payload["capacity"]
            return SetIntervalCapacity(
                interval_id=str(payload["interval_id"]),
                capacity=None if capacity is None else int(capacity),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise MutationError(f"malformed {op!r} mutation: {error}") from error
    raise MutationError(f"unknown mutation op {op!r}")


# --------------------------------------------------------------------------- #
# Scratch state of one atomic batch
# --------------------------------------------------------------------------- #
@dataclass
class _Scratch:
    """Working copies one batch mutates; committed only if the batch succeeds.

    Interest triples accumulate in ``pending_interest`` and flush through a
    **single** bulk :meth:`~repro.core.interest.InterestMatrix.with_entries`
    call (at the end of the batch, or before a structural add/remove shifts
    the column indices) — so a batch of per-user updates costs one store-level
    update, never a dense round-trip per mutation.  ``row_ops`` replays the
    structural edits against the cached score grid at commit time.
    """

    events: List[Event]
    event_ids: Dict[str, int]
    intervals: List[TimeInterval]
    interval_ids: Dict[str, int]
    locks: Dict[str, str]
    interest: object  # InterestMatrix; functional updates replace it
    stale_events: set
    stale_intervals: set
    pending_interest: List[Tuple[int, int, float]] = field(default_factory=list)
    row_ops: List[Tuple[str, int]] = field(default_factory=list)
    instance_dirty: bool = False

    def flush_interest(self) -> None:
        """Apply the accumulated interest triples in one bulk store update."""
        if self.pending_interest:
            try:
                self.interest = self.interest.with_entries(self.pending_interest)
            except InstanceValidationError as error:
                raise MutationError(str(error)) from error
            self.pending_interest = []


class SchedulingSession:
    """A live SES instance accepting mutations and incremental re-solves.

    Parameters
    ----------
    instance:
        The initial instance; the session copies its entity lists and adopts
        its (immutable-by-convention) interest stores, so later mutations
        never touch the caller's object.
    algorithm:
        Default scheduler name for :meth:`resolve` (any registry name).
    seed:
        Default seed forwarded to the randomised schedulers.
    execution:
        The :class:`~repro.core.execution.ExecutionConfig` every resolve runs
        under (``None`` selects the library defaults).  Bit-identity across
        backends, storages and plans is inherited from the one-shot path.

    All public methods are safe to call from concurrent server threads: state
    is guarded by one re-entrant lock, batches are atomic, and a rejected
    batch leaves the session fully queryable.
    """

    def __init__(
        self,
        instance: SESInstance,
        *,
        algorithm: str = "INC",
        seed: Optional[int] = None,
        execution: Optional[ExecutionConfig] = None,
    ) -> None:
        get_scheduler(algorithm)  # fail fast on unknown names
        self._lock = threading.RLock()
        self._algorithm = algorithm
        self._seed = seed
        self._execution = execution
        self._events: List[Event] = list(instance.events)
        self._intervals: List[TimeInterval] = list(instance.intervals)
        self._competing = list(instance.competing_events)
        self._users = list(instance.users)
        self._interest = instance.interest
        self._competing_interest = instance.competing_interest
        self._activity = np.array(instance.activity, copy=True)
        self._organizer = instance.organizer
        self._name = instance.name
        self._metadata = {
            key: value
            for key, value in instance.metadata.items()
            if key != "unschedulable_events"
        }
        self._event_ids = {event.id: idx for idx, event in enumerate(self._events)}
        self._interval_ids = {
            interval.id: idx for idx, interval in enumerate(self._intervals)
        }
        self._user_ids = {user.id: idx for idx, user in enumerate(self._users)}
        self._locks: Dict[str, str] = {}
        self._instance: Optional[SESInstance] = instance
        self._baseline: Optional[np.ndarray] = None
        self._stale_events: set = set()
        self._stale_intervals: set = set()
        self._stats = SessionStats()
        self._last_result = None
        self._last_schedule: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def algorithm(self) -> str:
        """Default scheduler name of this session's resolves."""
        return self._algorithm

    @property
    def stats(self) -> SessionStats:
        """The session's saved-work ledger (live object; snapshot to copy)."""
        return self._stats

    def locks(self) -> Dict[str, str]:
        """Current ``{event_id: interval_id}`` locked assignments."""
        with self._lock:
            return dict(self._locks)

    def instance(self) -> SESInstance:
        """The current (mutated) instance, rebuilt lazily after mutations."""
        with self._lock:
            return self._build_instance()

    def baseline_grid(self) -> Optional[np.ndarray]:
        """Copy of the cached initial score grid (``None`` before a resolve)."""
        with self._lock:
            if self._baseline is None:
                return None
            return np.array(self._baseline, copy=True)

    def last_schedule(self) -> Optional[Dict[str, str]]:
        """The latest resolve's ``{event_id: interval_id}`` schedule."""
        with self._lock:
            if self._last_schedule is None:
                return None
            return dict(self._last_schedule)

    def status(self) -> Dict[str, object]:
        """A queryable summary (the ``session-status`` reply body)."""
        with self._lock:
            return {
                "algorithm": self._algorithm,
                "num_events": len(self._events),
                "num_intervals": len(self._intervals),
                "num_users": len(self._users),
                "locks": dict(self._locks),
                "stale_events": len(self._stale_events),
                "stale_intervals": len(self._stale_intervals),
                "has_baseline": self._baseline is not None,
                "last_utility": (
                    None if self._last_result is None else self._last_result.utility
                ),
                "stats": self._stats.snapshot(),
            }

    # ------------------------------------------------------------------ #
    # Mutations
    # ------------------------------------------------------------------ #
    def apply(self, mutations: Sequence[Mutation]) -> Dict[str, int]:
        """Apply one atomic batch of mutations.

        Every mutation is validated against scratch copies first; the session
        commits only a fully valid batch and otherwise raises
        :class:`MutationError` with the state untouched.  Returns a small
        summary (mutations applied, staleness added) for the wire reply.
        """
        batch = list(mutations)
        with self._lock:
            scratch = _Scratch(
                events=list(self._events),
                event_ids=dict(self._event_ids),
                intervals=list(self._intervals),
                interval_ids=dict(self._interval_ids),
                locks=dict(self._locks),
                interest=self._interest,
                stale_events=set(self._stale_events),
                stale_intervals=set(self._stale_intervals),
            )
            for mutation in batch:
                self._apply_one(scratch, mutation)
            scratch.flush_interest()
            return self._commit(scratch, len(batch))

    def _apply_one(self, scratch: _Scratch, mutation: Mutation) -> None:
        """Validate and apply one mutation against the scratch state."""
        if isinstance(mutation, AddEvent):
            self._apply_add_event(scratch, mutation)
        elif isinstance(mutation, RemoveEvent):
            self._apply_remove_event(scratch, mutation)
        elif isinstance(mutation, UpdateInterest):
            self._apply_update_interest(scratch, mutation)
        elif isinstance(mutation, LockAssignment):
            self._apply_lock(scratch, mutation)
        elif isinstance(mutation, UnlockAssignment):
            self._apply_unlock(scratch, mutation)
        elif isinstance(mutation, SetIntervalCapacity):
            self._apply_set_capacity(scratch, mutation)
        else:
            raise MutationError(f"unknown mutation object: {mutation!r}")

    def _apply_add_event(self, scratch: _Scratch, mutation: AddEvent) -> None:
        event = mutation.event
        if event.id in scratch.event_ids:
            raise MutationError(f"event id {event.id!r} already exists")
        # Structural change: flush pending interest triples first so their
        # column indices refer to the pre-append layout they were built for.
        scratch.flush_interest()
        column = np.asarray(mutation.interest, dtype=np.float64)
        try:
            scratch.interest = scratch.interest.with_appended_item(column)
        except InstanceValidationError as error:
            raise MutationError(str(error)) from error
        scratch.event_ids[event.id] = len(scratch.events)
        scratch.events.append(event)
        scratch.row_ops.append(("append", 0))
        scratch.stale_events.add(event.id)
        scratch.instance_dirty = True

    def _apply_remove_event(self, scratch: _Scratch, mutation: RemoveEvent) -> None:
        index = scratch.event_ids.get(mutation.event_id)
        if index is None:
            raise MutationError(f"unknown event id: {mutation.event_id!r}")
        if mutation.event_id in scratch.locks:
            raise MutationError(
                f"event {mutation.event_id!r} is locked to interval "
                f"{scratch.locks[mutation.event_id]!r}; unlock it before removing"
            )
        scratch.flush_interest()
        try:
            scratch.interest = scratch.interest.without_item(index)
        except InstanceValidationError as error:
            raise MutationError(str(error)) from error
        del scratch.events[index]
        scratch.event_ids = {event.id: idx for idx, event in enumerate(scratch.events)}
        scratch.row_ops.append(("remove", index))
        scratch.stale_events.discard(mutation.event_id)
        scratch.instance_dirty = True

    def _apply_update_interest(self, scratch: _Scratch, mutation: UpdateInterest) -> None:
        user_index = self._user_ids.get(mutation.user_id)
        if user_index is None:
            raise MutationError(f"unknown user id: {mutation.user_id!r}")
        if not mutation.values:
            return
        for event_id, value in mutation.values.items():
            event_index = scratch.event_ids.get(event_id)
            if event_index is None:
                raise MutationError(f"unknown event id: {event_id!r}")
            value = float(value)
            if not 0.0 <= value <= 1.0:
                raise MutationError(
                    f"interest µ({mutation.user_id!r}, {event_id!r}) = {value} "
                    "outside [0, 1]"
                )
            scratch.pending_interest.append((user_index, event_index, value))
            scratch.stale_events.add(event_id)
            # A locked event's µ column feeds its interval's scheduled sums,
            # which every score in that column depends on.
            locked_interval = scratch.locks.get(event_id)
            if locked_interval is not None:
                scratch.stale_intervals.add(locked_interval)
        scratch.instance_dirty = True

    def _apply_lock(self, scratch: _Scratch, mutation: LockAssignment) -> None:
        event_index = scratch.event_ids.get(mutation.event_id)
        if event_index is None:
            raise MutationError(f"unknown event id: {mutation.event_id!r}")
        if mutation.interval_id not in scratch.interval_ids:
            raise MutationError(f"unknown interval id: {mutation.interval_id!r}")
        previous = scratch.locks.get(mutation.event_id)
        if previous == mutation.interval_id:
            return  # already locked there; nothing to invalidate
        interval = scratch.intervals[scratch.interval_ids[mutation.interval_id]]
        siblings = [
            event_id
            for event_id, interval_id in scratch.locks.items()
            if interval_id == mutation.interval_id and event_id != mutation.event_id
        ]
        if interval.capacity is not None and len(siblings) >= interval.capacity:
            raise MutationError(
                f"cannot lock {mutation.event_id!r} to {mutation.interval_id!r}: "
                f"interval is full (capacity {interval.capacity})"
            )
        location = scratch.events[event_index].location
        for sibling in siblings:
            if scratch.events[scratch.event_ids[sibling]].location == location:
                raise MutationError(
                    f"cannot lock {mutation.event_id!r} to {mutation.interval_id!r}: "
                    f"locked event {sibling!r} already occupies location {location!r}"
                )
        required = sum(
            scratch.events[scratch.event_ids[event_id]].required_resources
            for event_id in scratch.locks
            if event_id != mutation.event_id
        ) + scratch.events[event_index].required_resources
        if required > self._organizer.available_resources:
            raise MutationError(
                f"cannot lock {mutation.event_id!r}: locked assignments would need "
                f"{required} resources, exceeding θ = {self._organizer.available_resources}"
            )
        scratch.locks[mutation.event_id] = mutation.interval_id
        scratch.stale_intervals.add(mutation.interval_id)
        if previous is not None:
            scratch.stale_intervals.add(previous)

    def _apply_unlock(self, scratch: _Scratch, mutation: UnlockAssignment) -> None:
        previous = scratch.locks.pop(mutation.event_id, None)
        if previous is None:
            raise MutationError(f"event {mutation.event_id!r} is not locked")
        scratch.stale_intervals.add(previous)

    def _apply_set_capacity(self, scratch: _Scratch, mutation: SetIntervalCapacity) -> None:
        index = scratch.interval_ids.get(mutation.interval_id)
        if index is None:
            raise MutationError(f"unknown interval id: {mutation.interval_id!r}")
        locked_here = sum(
            1 for interval_id in scratch.locks.values() if interval_id == mutation.interval_id
        )
        if mutation.capacity is not None and locked_here > mutation.capacity:
            raise MutationError(
                f"cannot set capacity {mutation.capacity} on {mutation.interval_id!r}: "
                f"{locked_here} events are already locked there"
            )
        try:
            scratch.intervals[index] = dataclasses.replace(
                scratch.intervals[index], capacity=mutation.capacity
            )
        except ValueError as error:
            raise MutationError(str(error)) from error
        scratch.instance_dirty = True

    def _commit(self, scratch: _Scratch, batch_size: int) -> Dict[str, int]:
        """Promote a fully validated scratch state to the session state."""
        with self._lock:
            new_rows = len(scratch.stale_events - self._stale_events)
            new_columns = len(scratch.stale_intervals - self._stale_intervals)
            self._events = scratch.events
            self._event_ids = scratch.event_ids
            self._intervals = scratch.intervals
            self._interval_ids = scratch.interval_ids
            self._locks = scratch.locks
            self._interest = scratch.interest
            self._stale_events = scratch.stale_events
            self._stale_intervals = scratch.stale_intervals
            if self._baseline is not None:
                for kind, index in scratch.row_ops:
                    if kind == "remove":
                        self._baseline = np.delete(self._baseline, index, axis=0)
                    else:
                        self._baseline = np.vstack(
                            [self._baseline, np.zeros((1, self._baseline.shape[1]))]
                        )
            if scratch.instance_dirty:
                self._instance = None
            self._stats.record_batch(batch_size, new_rows, new_columns)
            return {
                "applied": batch_size,
                "stale_events": new_rows,
                "stale_intervals": new_columns,
            }

    # ------------------------------------------------------------------ #
    # Resolving
    # ------------------------------------------------------------------ #
    def _build_instance(self) -> SESInstance:
        with self._lock:
            if self._instance is None:
                self._instance = SESInstance(
                    events=list(self._events),
                    intervals=list(self._intervals),
                    competing_events=list(self._competing),
                    users=list(self._users),
                    interest=self._interest,
                    competing_interest=self._competing_interest,
                    activity=self._activity,
                    organizer=self._organizer,
                    name=self._name,
                    metadata=dict(self._metadata),
                )
            return self._instance

    def resolve(self, k: int, *, algorithm: Optional[str] = None, seed: Optional[int] = None):
        """Solve the current instance, reusing the cached grid where valid.

        Returns the plain :class:`~repro.algorithms.base.SchedulerResult` of
        the underlying scheduler, with ``result.service`` carrying this
        resolve's warm/recomputed/saved split plus the session totals.  The
        schedule, utilities and initial scores are bit-identical to a cold
        one-shot run of the same algorithm on the mutated instance with the
        same locked assignments.
        """
        with self._lock:
            name = algorithm if algorithm is not None else self._algorithm
            scheduler_cls = get_scheduler(name)
            instance = self._build_instance()
            locked_pairs = tuple(
                sorted(
                    (instance.event_index(event_id), instance.interval_index(interval_id))
                    for event_id, interval_id in self._locks.items()
                )
            )
            provider = _WarmGridProvider(
                baseline=self._baseline,
                stale_rows=sorted(self._event_ids[event_id] for event_id in self._stale_events),
                stale_columns=sorted(
                    self._interval_ids[interval_id] for interval_id in self._stale_intervals
                ),
                locked=dict(locked_pairs),
            )
            scheduler = scheduler_cls(
                instance,
                counter=ComputationCounter(),
                seed=seed if seed is not None else self._seed,
                execution=self._execution,
                locked=locked_pairs,
                warm_grid=provider,
            )
            result = scheduler.schedule(int(k))
            if provider.captured is not None:
                # The provider saw the post-lock engine state: its captured
                # grid is the fresh baseline and the staleness is repaid.
                self._baseline = provider.captured
                self._stale_events = set()
                self._stale_intervals = set()
            self._stats.record_resolve(
                warm=provider.used_warm,
                recomputed=provider.recomputed,
                saved=provider.saved,
            )
            result.service = {
                "warm": provider.used_warm,
                "scores_recomputed": provider.recomputed,
                "scores_saved": provider.saved,
                "session": self._stats.snapshot(),
            }
            self._last_result = result
            self._last_schedule = {
                instance.events[event_index].id: instance.intervals[interval_index].id
                for event_index, interval_index in result.schedule.as_dict().items()
            }
            return result


class _WarmGridProvider:
    """Serves one resolve's initial score grid from the session cache.

    Consulted by :class:`~repro.algorithms.base.BaseScheduler` during initial
    generation only.  The provider first verifies that the engine's applied
    assignments are exactly the session's locks (any other state — e.g. a HOR
    round after selections — falls back to fresh computation, returning
    ``None``).  On a cold session it captures the full grid at exactly the
    cold path's cost; on a warm one it copies the baseline and re-scores only
    the stale rows (one subset ``score_matrix`` call) and stale columns (one
    ``interval_scores`` call each).  Both patch calls run the same per-event
    kernel reductions as the full-grid call, so the patched grid is
    bit-identical to a cold computation — the property the equivalence suite
    asserts cell by cell.
    """

    def __init__(
        self,
        *,
        baseline: Optional[np.ndarray],
        stale_rows: Sequence[int],
        stale_columns: Sequence[int],
        locked: Dict[int, int],
    ) -> None:
        self._baseline = baseline
        self._stale_rows = list(stale_rows)
        self._stale_columns = list(stale_columns)
        self._locked = dict(locked)
        self.captured: Optional[np.ndarray] = None
        self.used_warm = False
        self.recomputed = 0
        self.saved = 0

    def grid(self, engine) -> Optional[np.ndarray]:
        """The |E| × |T| initial grid for the engine's current state, or ``None``."""
        if engine.applied_assignments() != self._locked:
            return None
        if self.captured is not None:
            return np.array(self.captured, copy=True)
        if self._baseline is None:
            grid = engine.score_matrix(initial=True)
            self.recomputed += int(grid.size)
            self.captured = np.array(grid, copy=True)
            return grid
        grid = np.array(self._baseline, copy=True)
        num_events, num_intervals = grid.shape
        if self._stale_rows:
            grid[self._stale_rows, :] = engine.score_matrix(self._stale_rows, initial=True)
        for interval_index in self._stale_columns:
            grid[:, interval_index] = engine.interval_scores(
                interval_index, None, initial=True
            )
        recomputed = len(self._stale_rows) * num_intervals + len(
            self._stale_columns
        ) * num_events
        self.recomputed += recomputed
        self.saved += max(0, int(grid.size) - recomputed)
        self.used_warm = True
        self.captured = np.array(grid, copy=True)
        return grid


__all__ = [
    "AddEvent",
    "LockAssignment",
    "Mutation",
    "MutationError",
    "RemoveEvent",
    "SchedulingSession",
    "SetIntervalCapacity",
    "UnlockAssignment",
    "UpdateInterest",
    "mutation_from_dict",
    "mutation_to_dict",
]
