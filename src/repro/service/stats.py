"""Saved-work accounting of one online scheduling session.

The service's headline claim — an incremental re-solve recomputes only the
stale slice of the initial score grid — is only auditable if the session
counts what it recomputed and what it reused.  :class:`SessionStats` is that
ledger: every mutation batch records how much of the grid it invalidated, and
every re-solve records how many initial score computations ran versus how
many the warm grid supplied for free.  The snapshot is surfaced through
``session-status`` replies and through
``SchedulerResult.summary()["service"]``, mirroring how the cluster worker
surfaces its served-work counters through ``repro cluster health``.

Like :class:`~repro.core.counters.ComputationCounter`, the fields are bumped
only through the ``record_*`` helpers (the counter-discipline lint rule
enforces this for every module outside this one), so a misattributed bump is
a lint failure instead of a silently wrong benchmark column.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict


@dataclass
class SessionStats:
    """Counters of one :class:`~repro.service.session.SchedulingSession`.

    Attributes
    ----------
    mutations_applied:
        Individual mutations committed (a rejected batch contributes zero).
    mutation_batches:
        Atomic batches committed.
    stale_rows_marked:
        Event rows of the score grid newly invalidated by mutation batches.
    stale_columns_marked:
        Interval columns of the score grid newly invalidated by mutation
        batches (lock/unlock mutations, and interest updates touching a
        locked event).
    resolves_total:
        Calls to :meth:`~repro.service.session.SchedulingSession.resolve`.
    warm_resolves:
        Re-solves that patched a cached grid instead of recomputing it whole.
    scores_recomputed:
        Initial score computations actually performed across all resolves
        (full grids on cold captures, stale rows/columns on warm patches).
    scores_saved:
        Initial score computations a cold solve would have performed that the
        warm grid supplied from cache.
    """

    mutations_applied: int = 0
    mutation_batches: int = 0
    stale_rows_marked: int = 0
    stale_columns_marked: int = 0
    resolves_total: int = 0
    warm_resolves: int = 0
    scores_recomputed: int = 0
    scores_saved: int = 0

    def record_batch(self, mutations: int, rows: int, columns: int) -> None:
        """Record one committed mutation batch and the staleness it added."""
        self.mutations_applied += int(mutations)
        self.mutation_batches += 1
        self.stale_rows_marked += int(rows)
        self.stale_columns_marked += int(columns)

    def record_resolve(self, *, warm: bool, recomputed: int, saved: int) -> None:
        """Record one re-solve and its recomputed-versus-saved score split."""
        self.resolves_total += 1
        if warm:
            self.warm_resolves += 1
        self.scores_recomputed += int(recomputed)
        self.scores_saved += int(saved)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy (the ``service`` cell of result summaries)."""
        return asdict(self)


__all__ = ["SessionStats"]
