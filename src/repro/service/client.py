"""Client of the online scheduling service (``repro serve``).

A thin, connection-per-client wrapper over the cluster wire layer: every
method sends one ``(op, *payload)`` request and raises the server's
:data:`~repro.core.distributed.protocol.STATUS_ERROR` replies as
:class:`~repro.core.errors.SolverError` — so a rejected mutation batch
surfaces as an exception client-side while the session server-side stays
exactly as it was.  Mutations may be passed as the dataclasses of
:mod:`repro.service.session` (serialised via
:func:`~repro.service.session.mutation_to_dict`) or as ready-made wire
dicts.
"""

from __future__ import annotations

from multiprocessing.connection import Client
from typing import Dict, List, Optional, Sequence, Union

from repro.core.distributed.protocol import (
    OP_GET_SCHEDULE,
    OP_LOAD_INSTANCE,
    OP_MUTATE,
    OP_PING,
    OP_RESOLVE,
    OP_SESSION_STATUS,
    OP_SHUTDOWN,
    STATUS_OK,
    authkey_bytes,
    parse_worker_address,
)
from repro.core.errors import SolverError
from repro.core.instance import SESInstance
from repro.service.session import Mutation, mutation_to_dict


class ServiceClient:
    """One authenticated connection to a :class:`~repro.service.server.ServiceServer`.

    Parameters
    ----------
    address:
        The service's ``"host:port"`` address.
    cluster_key:
        Shared secret of the connection handshake; must match the server's
        (``None`` selects the library default).  A mismatch fails the HMAC
        handshake at connect time.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, address: str, *, cluster_key: Optional[str] = None) -> None:
        host, port = parse_worker_address(address)
        self._connection = Client((host, port), authkey=authkey_bytes(cluster_key))

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Close the connection (the server keeps every session alive)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def _request(self, *parts):
        if self._connection is None:
            raise SolverError("service client is closed")
        self._connection.send(tuple(parts))
        status, payload = self._connection.recv()
        if status != STATUS_OK:
            raise SolverError(f"scheduling service error: {payload}")
        return payload

    # ------------------------------------------------------------------ #
    # Operations
    # ------------------------------------------------------------------ #
    def ping(self) -> Dict[str, object]:
        """Protocol version, pid, uptime and request counters of the server."""
        return self._request(OP_PING)

    def load_instance(
        self,
        instance: Union[SESInstance, Dict[str, object]],
        *,
        algorithm: str = "INC",
        seed: Optional[int] = None,
    ) -> str:
        """Create a session from an instance (object or ``to_dict`` payload).

        Returns the new session id used by every other operation.
        """
        payload = instance.to_dict() if isinstance(instance, SESInstance) else instance
        options = {"algorithm": algorithm, "seed": seed}
        reply = self._request(OP_LOAD_INSTANCE, payload, options)
        return str(reply["session"])

    def mutate(
        self,
        session_id: str,
        mutations: Sequence[Union[Mutation, Dict[str, object]]],
    ) -> Dict[str, int]:
        """Apply one atomic mutation batch to a session.

        Raises :class:`~repro.core.errors.SolverError` if the server rejects
        the batch; the session is then guaranteed unchanged.
        """
        batch: List[Dict[str, object]] = [
            item if isinstance(item, dict) else mutation_to_dict(item)
            for item in mutations
        ]
        return self._request(OP_MUTATE, session_id, batch)

    def resolve(
        self, session_id: str, k: int, *, algorithm: Optional[str] = None
    ) -> Dict[str, object]:
        """Re-solve a session; returns schedule, utilities and counters."""
        return self._request(OP_RESOLVE, session_id, int(k), {"algorithm": algorithm})

    def get_schedule(self, session_id: str) -> Optional[Dict[str, str]]:
        """The session's latest schedule (``None`` before the first resolve)."""
        return self._request(OP_GET_SCHEDULE, session_id)

    def session_status(self, session_id: str) -> Dict[str, object]:
        """Sizes, locks, pending staleness and saved-work stats of a session."""
        return self._request(OP_SESSION_STATUS, session_id)

    def shutdown_server(self) -> None:
        """Ask the server to stop serving (ends every session)."""
        self._request(OP_SHUTDOWN)


__all__ = ["ServiceClient"]
