"""Online scheduling service: mutable sessions with incremental re-solves.

The package turns the one-shot solvers into a long-running service
(``repro serve``):

* :class:`~repro.service.session.SchedulingSession` — a live instance plus
  warm scheduler state, accepting atomic mutation batches and re-solving
  incrementally, bit-identical to a cold solve of the mutated instance;
* the mutation vocabulary (:class:`~repro.service.session.AddEvent`,
  :class:`~repro.service.session.RemoveEvent`,
  :class:`~repro.service.session.UpdateInterest`,
  :class:`~repro.service.session.LockAssignment`,
  :class:`~repro.service.session.UnlockAssignment`,
  :class:`~repro.service.session.SetIntervalCapacity`);
* :class:`~repro.service.server.ServiceServer` /
  :class:`~repro.service.client.ServiceClient` — the wire endpoints, reusing
  the cluster protocol's framing and HMAC handshake; and
* :class:`~repro.service.stats.SessionStats` — the saved-work ledger behind
  ``session-status`` and ``SchedulerResult.summary()["service"]``.
"""

from repro.service.client import ServiceClient
from repro.service.server import (
    ServiceHandle,
    ServiceServer,
    serve,
    start_local_service,
)
from repro.service.session import (
    AddEvent,
    LockAssignment,
    Mutation,
    MutationError,
    RemoveEvent,
    SchedulingSession,
    SetIntervalCapacity,
    UnlockAssignment,
    UpdateInterest,
    mutation_from_dict,
    mutation_to_dict,
)
from repro.service.stats import SessionStats

__all__ = [
    "AddEvent",
    "LockAssignment",
    "Mutation",
    "MutationError",
    "RemoveEvent",
    "SchedulingSession",
    "ServiceClient",
    "ServiceHandle",
    "ServiceServer",
    "SessionStats",
    "SetIntervalCapacity",
    "UnlockAssignment",
    "UpdateInterest",
    "mutation_from_dict",
    "mutation_to_dict",
    "serve",
    "start_local_service",
]
