"""The online scheduling service server (``repro serve``).

One process holds a set of named :class:`~repro.service.session.SchedulingSession`
objects and serves them over the cluster wire layer
(:mod:`repro.core.distributed.protocol`): the same stdlib
``multiprocessing.connection`` framing, pickling and HMAC handshake the
cluster workers use, with the service's own operations —
:data:`~repro.core.distributed.protocol.OP_LOAD_INSTANCE` creates a session
from a serialised instance, :data:`~repro.core.distributed.protocol.OP_MUTATE`
applies an atomic mutation batch,
:data:`~repro.core.distributed.protocol.OP_RESOLVE` re-solves incrementally,
and :data:`~repro.core.distributed.protocol.OP_GET_SCHEDULE` /
:data:`~repro.core.distributed.protocol.OP_SESSION_STATUS` query without
solving.

The failure contract mirrors the session's: a malformed or contradictory
batch is answered as a :data:`~repro.core.distributed.protocol.STATUS_ERROR`
reply (the client raises it as a
:class:`~repro.core.errors.SolverError`) with the session untouched, and a
client that disconnects mid-conversation only ends its own connection thread
— sessions live in the server, so the next connection finds them intact.
Like the cluster worker, binding a non-loopback host with the default
(public) cluster key is refused.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from multiprocessing.connection import Connection, Listener
from typing import Dict, Optional

from repro.core.distributed.protocol import (
    DEFAULT_WORKER_HOST,
    OP_GET_SCHEDULE,
    OP_LOAD_INSTANCE,
    OP_MUTATE,
    OP_PING,
    OP_RESOLVE,
    OP_SESSION_STATUS,
    OP_SHUTDOWN,
    PROTOCOL_VERSION,
    STATUS_ERROR,
    STATUS_OK,
    authkey_bytes,
    format_worker_address,
    parse_worker_address,
)
from repro.core.errors import SolverError
from repro.core.execution import ExecutionConfig
from repro.core.instance import SESInstance
from repro.service.session import SchedulingSession, mutation_from_dict


def _is_loopback(host: str) -> bool:
    """Whether a bind host stays on this machine (loopback / localhost)."""
    return host == "localhost" or host == "::1" or host.startswith("127.")


class ServiceServer:
    """A TCP listener over a dictionary of live scheduling sessions.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port; the actual address
        is available as :attr:`address` once constructed.
    cluster_key:
        Shared secret of the connection handshake (``None`` selects
        :data:`~repro.core.distributed.protocol.DEFAULT_CLUSTER_KEY`).
        Binding a **non-loopback** host with the default key is refused for
        the same reason the cluster worker refuses it: the key is public and
        an authenticated connection deserialises pickles.
    execution:
        The :class:`~repro.core.execution.ExecutionConfig` every session's
        resolves run under (``None`` selects the library defaults).
    """

    def __init__(
        self,
        host: str = DEFAULT_WORKER_HOST,
        port: int = 0,
        *,
        cluster_key: Optional[str] = None,
        execution: Optional[ExecutionConfig] = None,
    ) -> None:
        if cluster_key is None and not _is_loopback(host):
            raise SolverError(
                f"refusing to bind the scheduling service to non-loopback {host!r} "
                "with the default (public) cluster key: authenticated peers can "
                "send arbitrary pickles — pass an explicit secret via cluster_key "
                "(CLI: --cluster-key) shared with your clients"
            )
        self._execution = execution
        self._stop_event = threading.Event()
        self._started = time.monotonic()
        self._lock = threading.Lock()
        self._sessions: Dict[str, SchedulingSession] = {}
        self._session_counter = 0
        self._requests_served = 0
        try:
            self._listener = Listener((host, int(port)), authkey=authkey_bytes(cluster_key))
        except OSError as error:
            raise SolverError(
                f"cannot bind scheduling service to {host}:{port}: {error}"
            ) from None
        bound_host, bound_port = self._listener.address  # type: ignore[misc]
        self._address = format_worker_address(bound_host, bound_port)

    @property
    def address(self) -> str:
        """The actual ``"host:port"`` the service is listening on."""
        return self._address

    def num_sessions(self) -> int:
        """Number of live sessions."""
        with self._lock:
            return len(self._sessions)

    def serve_forever(self) -> None:
        """Accept connections until a shutdown request (or :meth:`stop`)."""
        while not self._stop_event.is_set():
            try:
                connection = self._listener.accept()
            except (OSError, EOFError):
                # Listener closed by stop()/shutdown, or a client failed the
                # authentication handshake / dropped mid-accept — keep serving
                # unless we were asked to stop.
                if self._stop_event.is_set():
                    break
                continue
            except multiprocessing.AuthenticationError:
                continue
            thread = threading.Thread(
                target=self._serve_connection, args=(connection,), daemon=True
            )
            thread.start()
        self.stop()

    def stop(self) -> None:
        """Stop accepting and close the listener (safe to call repeatedly)."""
        first_stop = not self._stop_event.is_set()
        self._stop_event.set()
        if first_stop:
            # Closing a listening socket does not interrupt a concurrent
            # blocking accept() on Linux — wake it with a throwaway
            # connection so serve_forever observes the stop flag.
            host, port = parse_worker_address(self._address)
            if host in ("0.0.0.0", "::"):  # wildcard binds are not connectable
                host = "127.0.0.1"
            try:
                with socket.create_connection((host, port), timeout=1.0):
                    pass
            except OSError:
                pass
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    def _serve_connection(self, connection: Connection) -> None:
        """Serve one client until it disconnects (one thread per connection)."""
        try:
            while not self._stop_event.is_set():
                try:
                    request = connection.recv()
                except (EOFError, OSError):
                    # Client went away (possibly mid-conversation).  Sessions
                    # outlive connections: only this thread ends.
                    break
                try:
                    response, shutdown = self._dispatch(request)
                except Exception as error:  # staticcheck: allow(broad-except) -- serialised into the STATUS_ERROR reply below: the client raises it as SolverError, and letting it kill this connection thread would hide it instead
                    response, shutdown = (
                        (STATUS_ERROR, f"{type(error).__name__}: {error}"),
                        False,
                    )
                try:
                    connection.send(response)
                except (OSError, BrokenPipeError):
                    break
                if shutdown:
                    self.stop()
                    break
        finally:
            connection.close()

    def _session(self, session_id) -> SchedulingSession:
        with self._lock:
            session = self._sessions.get(session_id)
        if session is None:
            raise SolverError(f"unknown session id: {session_id!r}")
        return session

    def _count_request(self) -> None:
        with self._lock:
            self._requests_served += 1

    def _dispatch(self, request):
        """Handle one request tuple; returns ``(response, shutdown)``."""
        if not isinstance(request, tuple) or not request:
            return (STATUS_ERROR, f"malformed request: {request!r}"), False
        self._count_request()
        op = request[0]
        if op == OP_PING:
            with self._lock:
                sessions, served = len(self._sessions), self._requests_served
            payload = {
                "version": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "uptime_sec": time.monotonic() - self._started,
                "sessions": sessions,
                "requests_served": served,
            }
            return (STATUS_OK, payload), False
        if op == OP_LOAD_INSTANCE:
            payload = request[1]
            options = request[2] if len(request) > 2 else {}
            instance = SESInstance.from_dict(payload)
            session = SchedulingSession(
                instance,
                algorithm=str(options.get("algorithm", "INC")),
                seed=options.get("seed"),
                execution=self._execution,
            )
            with self._lock:
                session_id = f"s{self._session_counter}"
                self._session_counter += 1
                self._sessions[session_id] = session
            reply = {
                "session": session_id,
                "num_events": instance.num_events,
                "num_intervals": instance.num_intervals,
                "num_users": instance.num_users,
            }
            return (STATUS_OK, reply), False
        if op == OP_MUTATE:
            session_id, batch = request[1:]
            session = self._session(session_id)
            mutations = [mutation_from_dict(item) for item in batch]
            return (STATUS_OK, session.apply(mutations)), False
        if op == OP_RESOLVE:
            session_id, k = request[1:3]
            options = request[3] if len(request) > 3 else {}
            session = self._session(session_id)
            result = session.resolve(int(k), algorithm=options.get("algorithm"))
            reply = {
                "schedule": session.last_schedule(),
                "algorithm": result.algorithm,
                "k": result.k,
                "scheduled": result.num_scheduled,
                "utility": result.utility,
                "net_utility": result.net_utility,
                "elapsed_seconds": result.elapsed_seconds,
                "counters": dict(result.counters),
                "service": dict(result.service),
            }
            return (STATUS_OK, reply), False
        if op == OP_GET_SCHEDULE:
            (session_id,) = request[1:]
            return (STATUS_OK, self._session(session_id).last_schedule()), False
        if op == OP_SESSION_STATUS:
            (session_id,) = request[1:]
            status = self._session(session_id).status()
            status["session"] = session_id
            return (STATUS_OK, status), False
        if op == OP_SHUTDOWN:
            return (STATUS_OK, True), True
        return (STATUS_ERROR, f"unknown operation {op!r}"), False


def serve(
    host: str = DEFAULT_WORKER_HOST,
    port: int = 0,
    *,
    cluster_key: Optional[str] = None,
    execution: Optional[ExecutionConfig] = None,
    announce=None,
) -> str:
    """Run a scheduling service in this process until it is shut down.

    ``announce`` (when given) is called with the bound ``"host:port"`` before
    serving — the CLI prints it so scripts can scrape the ephemeral port.
    Returns the address after the server stops.
    """
    server = ServiceServer(host, port, cluster_key=cluster_key, execution=execution)
    if announce is not None:
        announce(server.address)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        server.stop()
    return server.address


class ServiceHandle:
    """A service server running on a background thread of this process.

    Sessions hold live NumPy state, so (unlike the cluster workers, which are
    compute processes) the tests and the load benchmark run the service
    in-process: same wire protocol, no spawn cost.
    """

    def __init__(self, server: ServiceServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def address(self) -> str:
        """The ``"host:port"`` the service is listening on."""
        return self.server.address

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the server and join its accept thread."""
        self.server.stop()
        self.thread.join(timeout)


def start_local_service(
    host: str = DEFAULT_WORKER_HOST,
    port: int = 0,
    *,
    cluster_key: Optional[str] = None,
    execution: Optional[ExecutionConfig] = None,
) -> ServiceHandle:
    """Start a service server on a daemon thread and return its handle."""
    server = ServiceServer(host, port, cluster_key=cluster_key, execution=execution)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return ServiceHandle(server, thread)


__all__ = [
    "ServiceHandle",
    "ServiceServer",
    "serve",
    "start_local_service",
]
