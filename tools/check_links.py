#!/usr/bin/env python
"""Markdown link checker for the CI docs leg (stdlib only).

Scans the given markdown files/directories for inline links and images
(``[text](target)`` / ``![alt](target)``) and verifies that

* every **relative file link** points at an existing file or directory
  (resolved against the markdown file's location);
* every **anchor** (``#fragment`` — own-page or on a linked markdown file)
  matches a heading in the target file, using GitHub's slugging rules
  (lowercase, spaces to dashes, punctuation dropped);
* no link is empty.

External ``http(s)``/``mailto`` targets are *not* fetched — CI runs offline —
only recorded.  Exit status is the number of broken links (0 = green).

Usage::

    python tools/check_links.py README.md docs
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline markdown link or image: [text](target) — target without spaces,
#: code spans excluded by the tokenizer below.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]*)(?:\s+\"[^\"]*\")?\)")

#: ATX heading line.
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")

_EXTERNAL = ("http://", "https://", "mailto:")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug of a heading (close enough for ASCII docs)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # unwrap code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # unwrap links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _strip_code(text: str) -> str:
    """Remove fenced blocks and inline code spans (links inside are literal)."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def heading_slugs(path: Path) -> List[str]:
    slugs = []
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = _HEADING.match(line)
        if match:
            slugs.append(github_slug(match.group(1)))
    return slugs


def iter_markdown_files(arguments: Iterable[str]) -> List[Path]:
    files: List[Path] = []
    for argument in arguments:
        path = Path(argument)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
        else:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
            sys.exit(2)
    return files


def check_file(path: Path) -> Tuple[int, int]:
    """Check one markdown file; returns (links checked, links broken)."""
    checked = broken = 0
    text = _strip_code(path.read_text(encoding="utf-8"))
    for match in _LINK.finditer(text):
        target = match.group(1)
        checked += 1
        if target.startswith(_EXTERNAL):
            continue  # not fetched: CI runs offline
        if not target:
            print(f"{path}: empty link target")
            broken += 1
            continue
        file_part, _, fragment = target.partition("#")
        target_path = (path.parent / file_part).resolve() if file_part else path
        if not target_path.exists():
            print(f"{path}: broken link -> {target}")
            broken += 1
            continue
        if fragment and target_path.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(target_path):
                print(f"{path}: broken anchor -> {target}")
                broken += 1
    return checked, broken


def main(argv: List[str]) -> int:
    files = iter_markdown_files(argv or ["README.md", "docs"])
    total_checked = total_broken = 0
    for path in files:
        checked, broken = check_file(path)
        total_checked += checked
        total_broken += broken
    print(
        f"checked {total_checked} links in {len(files)} markdown files: "
        f"{total_broken} broken"
    )
    return total_broken


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
