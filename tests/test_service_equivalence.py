"""Mutation-equivalence property suite for the online scheduling service.

The service's design contract (`src/repro/service/session.py`) is
**bit-identity**: after any sequence of mutations, a warm
:meth:`~repro.service.session.SchedulingSession.resolve` must return exactly
the schedule, utilities and initial score grid of a cold
:func:`~repro.algorithms.registry.run_scheduler` call on the mutated
instance with the same locked assignments.  This suite proves it the
property-testing way:

* randomized, seeded mutation sequences — add/remove events, interest
  updates (values drawn from a ``repro.ebsn``-derived affinity pool, the
  same model real deployments would refresh µ from), locks/unlocks and
  interval-capacity changes — are replayed through one live session;
* after every few mutations the session re-solves with a rotating
  algorithm, and the result is cross-checked cell-by-cell against a cold
  solve plus a fresh :class:`~repro.core.scoring.ScoringEngine` grid.

The suite honours the suite-wide equivalence knobs: ``REPRO_TEST_BACKEND``
selects the scoring backend the session (and the cold reference) run under,
while ``REPRO_TEST_STORAGE`` / ``REPRO_TEST_PLAN`` are applied by
``tests/conftest.py`` to every helper-built instance / engine — so CI can
run the same sequences once per backend × storage × plan.
"""

from __future__ import annotations

import functools
import os
from typing import Optional

import numpy as np
import pytest

from repro.algorithms.registry import run_scheduler
from repro.core.entities import Event
from repro.core.execution import ExecutionConfig
from repro.core.scoring import ScoringEngine
from repro.ebsn.generator import EBSNConfig, generate_network, sample_event_topics
from repro.ebsn.interest_model import derive_interest_matrix
from repro.service import (
    AddEvent,
    LockAssignment,
    MutationError,
    RemoveEvent,
    SchedulingSession,
    SetIntervalCapacity,
    UnlockAssignment,
    UpdateInterest,
)
from tests.conftest import make_random_instance

#: Scoring backend of both the session and the cold reference (CI pins it
#: via ``REPRO_TEST_BACKEND``; unset runs the library default).  The pooled
#: backends honour ``REPRO_TEST_WORKERS`` like the other equivalence suites.
BACKEND = os.environ.get("REPRO_TEST_BACKEND", "")
WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "0")) or None

EXECUTION: Optional[ExecutionConfig] = (
    ExecutionConfig(backend=BACKEND or None, workers=WORKERS)
    if BACKEND or WORKERS
    else None
)

#: Algorithms the replay rotates through (every grid-consuming scheduler).
ALGORITHMS = ("INC", "ALG", "HOR", "HOR-I", "TOP")


@functools.lru_cache(maxsize=4)
def interest_pool(num_users: int) -> np.ndarray:
    """A ``num_users × 32`` pool of EBSN-derived affinities in ``[0, 1]``.

    Columns seed :class:`AddEvent` interest vectors; individual cells seed
    :class:`UpdateInterest` values — so the mutation traffic carries the
    paper's interest model, not uniform noise.
    """
    network = generate_network(
        EBSNConfig(
            num_members=num_users,
            num_groups=8,
            num_past_events=30,
            num_weekly_slots=14,
            seed=9,
        )
    )
    rng = np.random.default_rng(9)
    topics = sample_event_topics(rng, 32)
    return derive_interest_matrix(network, topics, rng=rng)


def cold_solve(session: SchedulingSession, k: int, algorithm: str, seed: int):
    """A cold one-shot solve of the session's current instance and locks."""
    instance = session.instance()
    locked = sorted(
        (instance.event_index(event_id), instance.interval_index(interval_id))
        for event_id, interval_id in session.locks().items()
    )
    return run_scheduler(
        algorithm, instance, k, seed=seed, execution=EXECUTION, locked=locked
    )


def cold_initial_grid(session: SchedulingSession) -> np.ndarray:
    """The initial |E| × |T| grid a fresh engine computes after the locks."""
    instance = session.instance()
    engine = ScoringEngine(instance, execution=EXECUTION)
    try:
        for event_id, interval_id in sorted(session.locks().items()):
            engine.apply(
                instance.event_index(event_id), instance.interval_index(interval_id)
            )
        return engine.score_matrix(initial=True, count=False)
    finally:
        engine.close()


def assert_resolve_matches_cold(session, k, algorithm, seed):
    """One warm resolve must be bit-identical to one cold solve."""
    warm = session.resolve(k, algorithm=algorithm)
    cold = cold_solve(session, k, algorithm, seed)
    assert warm.schedule.as_dict() == cold.schedule.as_dict()
    assert warm.utility == cold.utility
    assert warm.net_utility == cold.net_utility
    grid = session.baseline_grid()
    if grid is not None:
        assert np.array_equal(grid, cold_initial_grid(session))
    return warm


def random_mutation(rng, session, pool, fresh_ids):
    """Draw one plausible mutation against the session's current state."""
    instance = session.instance()
    event_ids = [event.id for event in instance.events]
    interval_ids = [interval.id for interval in instance.intervals]
    user_ids = [user.id for user in instance.users]
    locks = session.locks()
    kind = rng.choice(
        ["add", "remove", "interest", "lock", "unlock", "capacity"],
        p=[0.15, 0.10, 0.35, 0.20, 0.10, 0.10],
    )
    if kind == "add":
        new_id = f"x{next(fresh_ids)}"
        location = instance.events[int(rng.integers(len(event_ids)))].location
        column = pool[:, int(rng.integers(pool.shape[1]))]
        return AddEvent(
            event=Event(
                id=new_id,
                location=location,
                required_resources=float(rng.uniform(0.5, 2.0)),
            ),
            interest=tuple(float(value) for value in column),
        )
    if kind == "remove":
        return RemoveEvent(event_id=str(rng.choice(event_ids)))
    if kind == "interest":
        user_id = str(rng.choice(user_ids))
        chosen = rng.choice(event_ids, size=min(3, len(event_ids)), replace=False)
        user_index = instance.user_index(user_id)
        values = {
            str(event_id): float(pool[user_index, int(rng.integers(pool.shape[1]))])
            for event_id in chosen
        }
        return UpdateInterest(user_id=user_id, values=values)
    if kind == "lock":
        return LockAssignment(
            event_id=str(rng.choice(event_ids)),
            interval_id=str(rng.choice(interval_ids)),
        )
    if kind == "unlock":
        if locks:
            return UnlockAssignment(event_id=str(rng.choice(sorted(locks))))
        return UnlockAssignment(event_id=str(rng.choice(event_ids)))
    capacity = rng.choice([None, 1, 2, 3])
    return SetIntervalCapacity(
        interval_id=str(rng.choice(interval_ids)),
        capacity=None if capacity is None else int(capacity),
    )


class TestRandomizedReplay:
    """Seeded mutation sequences: warm resolves ≡ cold solves throughout."""

    @pytest.mark.parametrize("seed", [101, 202, 303])
    def test_replay_matches_cold(self, seed):
        instance = make_random_instance(
            seed=seed, num_users=40, num_events=10, num_intervals=4, num_competing=6
        )
        session = SchedulingSession(
            instance, algorithm="INC", seed=seed, execution=EXECUTION
        )
        pool = interest_pool(40)
        rng = np.random.default_rng(seed)
        fresh_ids = iter(range(1000))
        applied = rejected = resolves = 0
        # A cold first resolve anchors the baseline grid the warm path patches.
        assert_resolve_matches_cold(session, 6, "INC", seed)
        for step in range(14):
            mutation = random_mutation(rng, session, pool, fresh_ids)
            try:
                session.apply([mutation])
                applied += 1
            except MutationError:
                # Randomly drawn locks/removals may legitimately violate the
                # constraints; a reject must leave the session consistent,
                # which the next resolve's cold cross-check proves.
                rejected += 1
            if step % 2 == 1:
                algorithm = ALGORITHMS[resolves % len(ALGORITHMS)]
                resolves += 1
                assert_resolve_matches_cold(session, 6, algorithm, seed)
        assert applied >= 5  # the trace must carry real mutation traffic
        snapshot = session.stats.snapshot()
        assert snapshot["mutation_batches"] == applied
        assert snapshot["resolves_total"] == resolves + 1

    def test_batched_mutations_match_cold(self):
        """Multi-mutation atomic batches reach the same state as cold."""
        instance = make_random_instance(seed=5, num_users=30, num_events=8, num_intervals=4)
        session = SchedulingSession(instance, seed=5, execution=EXECUTION)
        pool = interest_pool(30)
        session.resolve(5)
        events = [event.id for event in instance.events]
        users = [user.id for user in instance.users]
        session.apply(
            [
                UpdateInterest(user_id=users[0], values={events[0]: float(pool[0, 0])}),
                UpdateInterest(user_id=users[1], values={events[2]: float(pool[1, 1])}),
                LockAssignment(event_id=events[3], interval_id="t1"),
                SetIntervalCapacity(interval_id="t0", capacity=2),
            ]
        )
        for algorithm in ALGORITHMS:
            assert_resolve_matches_cold(session, 5, algorithm, 5)


class TestStructuralMutations:
    """Add/remove events keep the cached grid aligned with the instance."""

    def test_add_then_resolve_matches_cold(self):
        instance = make_random_instance(seed=21, num_users=40, num_events=9, num_intervals=4)
        session = SchedulingSession(instance, seed=21, execution=EXECUTION)
        pool = interest_pool(40)
        session.resolve(5)
        session.apply(
            [
                AddEvent(
                    event=Event(id="x0", location="loc1", required_resources=1.0),
                    interest=tuple(float(v) for v in pool[:, 3]),
                )
            ]
        )
        warm = assert_resolve_matches_cold(session, 5, "INC", 21)
        assert warm.service["warm"] is True

    def test_add_then_remove_restores_cold_schedule(self):
        """Adding and removing an event must land back on the original result."""
        instance = make_random_instance(seed=22, num_users=40, num_events=9, num_intervals=4)
        session = SchedulingSession(instance, seed=22, execution=EXECUTION)
        pool = interest_pool(40)
        original = session.resolve(5)
        session.apply(
            [
                AddEvent(
                    event=Event(id="x0", location="loc0", required_resources=1.0),
                    interest=tuple(float(v) for v in pool[:, 5]),
                )
            ]
        )
        session.resolve(5)
        session.apply([RemoveEvent(event_id="x0")])
        roundtrip = assert_resolve_matches_cold(session, 5, "INC", 22)
        assert roundtrip.schedule.as_dict() == original.schedule.as_dict()
        assert roundtrip.utility == original.utility


class TestNonGridAlgorithms:
    """RAND / EXACT resolve through the session with identical results."""

    def test_rand_and_exact_match_cold(self):
        instance = make_random_instance(
            seed=7, num_users=20, num_events=5, num_intervals=2, num_competing=4
        )
        session = SchedulingSession(instance, seed=11, execution=EXECUTION)
        events = [event.id for event in instance.events]
        session.apply([LockAssignment(event_id=events[0], interval_id="t0")])
        for algorithm in ("RAND", "EXACT"):
            warm = session.resolve(2, algorithm=algorithm)
            cold = cold_solve(session, 2, algorithm, 11)
            assert warm.schedule.as_dict() == cold.schedule.as_dict()
            assert warm.utility == cold.utility


class TestAtomicityAndSavedWork:
    def test_rejected_batch_leaves_session_unchanged(self):
        instance = make_random_instance(seed=31, num_users=30, num_events=8, num_intervals=4)
        session = SchedulingSession(instance, seed=31, execution=EXECUTION)
        session.resolve(5)
        before_status = session.status()
        before_schedule = session.last_schedule()
        users = [user.id for user in instance.users]
        events = [event.id for event in instance.events]
        with pytest.raises(MutationError):
            session.apply(
                [
                    # Valid head, invalid tail: the whole batch must roll back.
                    UpdateInterest(user_id=users[0], values={events[0]: 0.5}),
                    RemoveEvent(event_id="no-such-event"),
                ]
            )
        assert session.status() == before_status
        assert session.last_schedule() == before_schedule
        assert_resolve_matches_cold(session, 5, "INC", 31)

    def test_warm_resolve_saves_work(self):
        instance = make_random_instance(seed=41, num_users=50, num_events=12, num_intervals=5)
        session = SchedulingSession(instance, seed=41, execution=EXECUTION)
        first = session.resolve(6)
        assert first.service["warm"] is False
        assert first.service["scores_saved"] == 0
        users = [user.id for user in instance.users]
        events = [event.id for event in instance.events]
        session.apply([UpdateInterest(user_id=users[0], values={events[0]: 0.5})])
        second = assert_resolve_matches_cold(session, 6, "INC", 41)
        assert second.service["warm"] is True
        # One stale row out of twelve: most of the grid must be reused.
        assert second.service["scores_saved"] > second.service["scores_recomputed"]
        snapshot = session.stats.snapshot()
        assert snapshot["resolves_total"] == 2
        assert snapshot["warm_resolves"] == 1
        assert snapshot["scores_saved"] == second.service["scores_saved"]
        assert second.summary()["service"]["warm"] is True
