"""Tests for the ablation schedulers and the §3 complexity models."""

import pytest

from repro.algorithms.ablations import AlgOrganizedScheduler, IncUpdatesOnlyScheduler
from repro.algorithms.alg import AlgScheduler
from repro.algorithms.hor import HorScheduler
from repro.algorithms.inc import IncScheduler
from repro.analysis.complexity import (
    forecast,
    hor_performs_fewer_computations,
    predicted_alg_score_computations,
    predicted_hor_rounds,
    predicted_hor_score_computations,
    predicted_initial_computations,
    worst_case_k,
)
from repro.core.errors import ExperimentError
from tests.conftest import make_random_instance


def unconstrained_instance(num_events=18, num_intervals=5, seed=41):
    """Distinct locations and unlimited resources: the paper's counting setting."""
    return make_random_instance(
        seed=seed,
        num_users=40,
        num_events=num_events,
        num_intervals=num_intervals,
        num_locations=num_events,
        available_resources=1e9,
    )


class TestAblationEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [3, 8, 11])
    def test_both_ablations_match_alg(self, seed, k):
        instance = make_random_instance(seed=seed, num_events=16, num_intervals=5)
        alg = AlgScheduler(instance).schedule(k)
        updates_only = IncUpdatesOnlyScheduler(instance).schedule(k)
        organized = AlgOrganizedScheduler(instance).schedule(k)
        assert updates_only.schedule == alg.schedule
        assert organized.schedule == alg.schedule

    def test_ablations_match_alg_under_ties(self):
        instance = make_random_instance(seed=2, interest_scale=0.0)
        alg = AlgScheduler(instance).schedule(6)
        assert IncUpdatesOnlyScheduler(instance).schedule(6).schedule == alg.schedule
        assert AlgOrganizedScheduler(instance).schedule(6).schedule == alg.schedule


class TestAblationCounters:
    """Each scheme saves exactly the resource it is designed to save."""

    def test_incremental_updates_save_score_computations(self):
        instance = unconstrained_instance()
        alg = AlgScheduler(instance).schedule(12)
        updates_only = IncUpdatesOnlyScheduler(instance).schedule(12)
        # Disable the structural interval bound so the comparison isolates
        # the paper's stale-score update scheme (INC-U has no structural
        # bound either); with it on, full INC prunes strictly more.
        inc = IncScheduler(instance, use_interval_bounds=False).schedule(12)
        assert updates_only.score_computations <= alg.score_computations
        # The update scheme alone achieves (almost) the full saving of INC.
        assert updates_only.score_computations <= inc.score_computations * 1.1

    def test_organisation_saves_examinations_not_computations(self):
        instance = unconstrained_instance()
        alg = AlgScheduler(instance).schedule(12)
        organized = AlgOrganizedScheduler(instance).schedule(12)
        assert organized.score_computations == alg.score_computations
        assert organized.assignments_examined < alg.assignments_examined

    def test_updates_only_examines_as_much_as_alg(self):
        instance = unconstrained_instance()
        alg = AlgScheduler(instance).schedule(10)
        updates_only = IncUpdatesOnlyScheduler(instance).schedule(10)
        # No interval organisation: the full table is still scanned every step.
        assert updates_only.assignments_examined >= 0.8 * alg.assignments_examined

    def test_full_inc_combines_both_savings(self):
        instance = unconstrained_instance()
        alg = AlgScheduler(instance).schedule(12)
        inc = IncScheduler(instance).schedule(12)
        assert inc.score_computations <= alg.score_computations
        assert inc.assignments_examined < alg.assignments_examined


class TestComplexityModels:
    def test_initial_computations(self):
        assert predicted_initial_computations(300, 150) == 45_000
        with pytest.raises(ExperimentError):
            predicted_initial_computations(0, 5)

    def test_alg_prediction_matches_measurement(self):
        instance = unconstrained_instance(num_events=18, num_intervals=5)
        for k in (3, 5, 10):
            measured = AlgScheduler(instance).schedule(k).score_computations
            assert measured == predicted_alg_score_computations(18, 5, k)

    def test_hor_prediction_matches_measurement(self):
        instance = unconstrained_instance(num_events=18, num_intervals=5)
        for k in (3, 5, 11, 16):
            measured = HorScheduler(instance).schedule(k).score_computations
            assert measured == predicted_hor_score_computations(18, 5, k)

    def test_hor_rounds(self):
        assert predicted_hor_rounds(10, 10) == 1
        assert predicted_hor_rounds(10, 11) == 2
        assert predicted_hor_rounds(10, 20) == 2
        assert predicted_hor_rounds(10, 21) == 3

    def test_proposition4_condition(self):
        # k ≤ |T| always favours HOR.
        assert hor_performs_fewer_computations(300, 150, 100)
        # The paper's example: |T| = 10, k = 20 needs |E| ≥ 310 for ALG to win.
        assert hor_performs_fewer_computations(301, 10, 20)
        assert not hor_performs_fewer_computations(400, 10, 20)

    def test_proposition4_agrees_with_measurements(self):
        configs = [(18, 5, 4), (18, 5, 12), (18, 2, 16)]
        for num_events, num_intervals, k in configs:
            instance = unconstrained_instance(num_events=num_events, num_intervals=num_intervals)
            alg = AlgScheduler(instance).schedule(k).score_computations
            hor = HorScheduler(instance).schedule(k).score_computations
            assert (hor <= alg) == hor_performs_fewer_computations(num_events, num_intervals, k) or (
                hor == alg
            )

    def test_worst_case_k(self):
        assert worst_case_k(10) == 11
        assert worst_case_k(10, minimum_k=25) == 31
        assert worst_case_k(99, minimum_k=100) == 100
        with pytest.raises(ExperimentError):
            worst_case_k(0)

    def test_forecast_bundle(self):
        bundle = forecast(36, 18, 24)
        assert bundle.initial == 648
        assert bundle.alg_total == predicted_alg_score_computations(36, 18, 24)
        assert bundle.hor_total == predicted_hor_score_computations(36, 18, 24)
        assert bundle.hor_rounds == 2
        row = bundle.as_row()
        assert row["hor_wins"] == bundle.hor_wins

    def test_registry_exposes_ablation_methods(self):
        from repro.algorithms.registry import available_schedulers

        names = available_schedulers()
        assert "INC-U" in names
        assert "ALG-O" in names
