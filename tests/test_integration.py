"""End-to-end integration tests spanning datasets, algorithms and the harness."""

import pytest

from repro.algorithms.registry import PAPER_METHODS, run_scheduler
from repro.core.constraints import is_schedule_feasible
from repro.core.validation import assert_valid_solution
from repro.datasets.builders import build_dataset
from repro.datasets.loaders import load_instance, save_instance
from repro.experiments.harness import run_algorithms
from repro.experiments.sweeps import summarize_records


DATASET_OVERRIDES = dict(num_users=120, num_events=24, num_intervals=9, seed=5)


@pytest.mark.parametrize("dataset", ["Meetup", "Concerts", "Unf", "Zip"])
class TestAllDatasetsAllAlgorithms:
    def test_every_algorithm_solves_every_dataset(self, dataset):
        instance = build_dataset(dataset, **DATASET_OVERRIDES)
        for name in PAPER_METHODS:
            result = run_scheduler(name, instance, 8, seed=0)
            assert_valid_solution(instance, result.schedule, k=8, claimed_utility=result.utility)
            assert result.num_scheduled == 8

    def test_equivalence_propositions_on_real_like_data(self, dataset):
        instance = build_dataset(dataset, **DATASET_OVERRIDES)
        for k in (5, 12):
            alg = run_scheduler("ALG", instance, k)
            inc = run_scheduler("INC", instance, k)
            hor = run_scheduler("HOR", instance, k)
            hor_i = run_scheduler("HOR-I", instance, k)
            assert alg.schedule == inc.schedule
            assert hor.schedule == hor_i.schedule
            assert inc.score_computations <= alg.score_computations
            assert hor_i.score_computations <= hor.score_computations

    def test_paper_ranking_of_baselines(self, dataset):
        """Greedy methods beat TOP and RAND on every dataset (the paper's headline shape)."""
        instance = build_dataset(dataset, **DATASET_OVERRIDES)
        records = {r.algorithm: r for r in run_algorithms(instance, 12, seed=1)}
        assert records["ALG"].utility >= records["TOP"].utility - 1e-9
        assert records["ALG"].utility >= records["RAND"].utility - 1e-9
        assert records["HOR"].utility >= 0.9 * records["ALG"].utility


class TestRoundTripThenSolve:
    def test_saved_instance_gives_identical_schedules(self, tmp_path):
        instance = build_dataset("Zip", **DATASET_OVERRIDES)
        path = save_instance(instance, tmp_path / "zip.npz")
        reloaded = load_instance(path)
        for name in ("ALG", "HOR-I"):
            original = run_scheduler(name, instance, 10)
            restored = run_scheduler(name, reloaded, 10)
            assert original.schedule == restored.schedule
            assert original.utility == pytest.approx(restored.utility, rel=1e-12)


class TestSummaryClaims:
    def test_section_428_claims_at_small_scale(self):
        """The §4.2.8 aggregate claims hold qualitatively on the scaled datasets."""
        records = []
        for dataset in ("Meetup", "Zip"):
            instance = build_dataset(dataset, **DATASET_OVERRIDES)
            for k in (6, 12, 18):
                records.extend(
                    run_algorithms(
                        instance,
                        k,
                        algorithms=("ALG", "INC", "HOR", "HOR-I"),
                        experiment_id="claims",
                        params={"k": k},
                    )
                )
        stats = summarize_records(records)
        assert stats.num_points == 6
        assert stats.inc_always_equal_to_alg
        assert stats.hor_i_always_equal_to_hor
        # HOR's utility is essentially ALG's utility.
        assert stats.hor_mean_relative_gap < 0.05
        # The contributed methods never do more work than ALG.
        for ratio in stats.mean_computation_ratio.values():
            assert ratio <= 1.0 + 1e-9


class TestFeasibilityUnderStress:
    @pytest.mark.parametrize("theta", [5.0, 10.0, 1000.0])
    @pytest.mark.parametrize("locations", [2, 6])
    def test_constraints_respected_across_regimes(self, theta, locations):
        instance = build_dataset(
            "Unf",
            num_users=60,
            num_events=20,
            num_intervals=5,
            num_locations=locations,
            available_resources=theta,
            seed=9,
        )
        for name in ("ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"):
            result = run_scheduler(name, instance, 15, seed=2)
            assert is_schedule_feasible(instance, result.schedule)
