"""Docs-drift guard: README and docs/ must match the live code.

The docs subsystem promises the same reproducibility discipline as the
equivalence suites: what the documentation *lists* is checked against what
the code *registers*.  Concretely:

* the backend tables in ``README.md`` and ``docs/ARCHITECTURE.md`` must name
  **exactly** the backends in the live ``register_backend()`` registry — no
  missing backend, no phantom row;
* the instance-storage table in ``docs/ARCHITECTURE.md`` must name exactly
  the stores in the live ``register_store()`` registry, in registration
  order;
* the scoring-plan tables in ``README.md`` and ``docs/ARCHITECTURE.md`` must
  name exactly the plans in the live ``register_plan()`` registry, in
  registration order;
* every CLI sub-command built by :func:`repro.cli.build_parser` must appear
  in the README's command reference (and vice versa), and the shared
  execution flags named there must all exist on the parser (and vice versa);
* the wire-protocol op table in ``docs/ARCHITECTURE.md`` must list exactly
  the ``OP_*`` constants of ``repro.core.distributed.protocol``, and the
  documented batch-sizing formula must quote the live constants;
* the rule table in ``docs/STATIC_ANALYSIS.md`` must name exactly the rules
  in the live ``repro.analysis.staticcheck`` registry, in registration order;
* every test-suite path cited in ``docs/PAPER_MAPPING.md`` must exist.

If one of these tests fails you either added code without documenting it or
documented something that does not exist — fix the side that is wrong.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser
from repro.core.execution import available_backends

REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
ARCHITECTURE = REPO_ROOT / "docs" / "ARCHITECTURE.md"
PAPER_MAPPING = REPO_ROOT / "docs" / "PAPER_MAPPING.md"
STATIC_ANALYSIS = REPO_ROOT / "docs" / "STATIC_ANALYSIS.md"

#: First-column code span of a markdown table row: ``| `name` … | …``.
_TABLE_NAME = re.compile(r"^\|\s*`([^`]+)`")


def _section(text: str, heading: str) -> str:
    """The markdown section following ``heading``, up to the next heading."""
    start = text.index(heading) + len(heading)
    match = re.search(r"^#{1,6} ", text[start:], flags=re.MULTILINE)
    return text[start : start + match.start()] if match else text[start:]


def _table_names(section: str) -> list:
    """First-column backticked names of every table row in a section."""
    names = []
    for line in section.splitlines():
        match = _TABLE_NAME.match(line.strip())
        if match:
            names.append(match.group(1))
    return names


def _cli_subcommands() -> list:
    parser = build_parser()
    action = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return list(action.choices)


class TestBackendTables:
    def test_readme_backend_table_matches_registry(self):
        section = _section(README.read_text(encoding="utf-8"), "## Execution backends")
        names = _table_names(section)
        assert names, "README's execution-backends section lost its table"
        assert sorted(names) == sorted(available_backends()), (
            "README backend table drifted from the register_backend() registry"
        )

    def test_architecture_decision_table_matches_registry(self):
        section = _section(
            ARCHITECTURE.read_text(encoding="utf-8"), "## Backend decision table"
        )
        names = _table_names(section)
        assert names, "docs/ARCHITECTURE.md lost its backend decision table"
        assert sorted(names) == sorted(available_backends()), (
            "docs/ARCHITECTURE.md decision table drifted from the registry"
        )

    def test_tables_preserve_registration_order(self):
        """The docs list backends in the registry's (registration) order."""
        expected = list(available_backends())
        for path, heading in (
            (README, "## Execution backends"),
            (ARCHITECTURE, "## Backend decision table"),
        ):
            names = _table_names(_section(path.read_text(encoding="utf-8"), heading))
            assert names == expected, f"{path.name} lists backends out of order"


class TestStorageTable:
    def test_architecture_storage_table_matches_registry(self):
        """docs/ARCHITECTURE.md lists exactly the registered interest stores."""
        from repro.core.storage import available_stores

        section = _section(
            ARCHITECTURE.read_text(encoding="utf-8"), "## Instance storage"
        )
        names = _table_names(section)
        assert names, "docs/ARCHITECTURE.md lost its instance-storage table"
        assert names == list(available_stores()), (
            "docs/ARCHITECTURE.md storage table drifted from the "
            f"register_store() registry: documented={names}, "
            f"actual={list(available_stores())}"
        )


class TestPlanTables:
    def test_plan_tables_match_registry(self):
        """README and ARCHITECTURE list exactly the registered scoring plans,
        in registration order."""
        from repro.core.execution import available_plans

        expected = list(available_plans())
        for path, heading in (
            (README, "### Scoring plans: exploiting interest structure"),
            (ARCHITECTURE, "## Scoring plans: interest-pattern block decomposition"),
        ):
            names = _table_names(_section(path.read_text(encoding="utf-8"), heading))
            assert names, f"{path.name} lost its scoring-plan table"
            assert names == expected, (
                f"{path.name} plan table drifted from the register_plan() "
                f"registry: documented={names}, actual={expected}"
            )


def _backend_flags() -> list:
    """The long option strings attached by ``_add_backend_arguments``."""
    parser = build_parser()
    action = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    solve = action.choices["solve"]
    flags = []
    for option in solve._actions:
        for string in option.option_strings:
            if string.startswith("--") and string not in ("--help",):
                flags.append(string)
    return flags


class TestCliReference:
    def test_every_subcommand_is_documented(self):
        section = _section(README.read_text(encoding="utf-8"), "## CLI command reference")
        documented = _table_names(section)
        assert sorted(documented) == sorted(_cli_subcommands()), (
            "README's CLI command reference drifted from build_parser(): "
            f"documented={sorted(documented)}, actual={sorted(_cli_subcommands())}"
        )

    def test_every_execution_flag_is_documented(self):
        """The shared execution flags named below the command table are real
        parser options, and every ``_add_backend_arguments`` flag is named."""
        section = _section(README.read_text(encoding="utf-8"), "## CLI command reference")
        documented = set(re.findall(r"`(--[\w-]+)`", section))
        execution_flags = {
            "--backend", "--plan", "--storage", "--chunk-size", "--workers",
            "--cluster", "--cluster-key", "--task-batch",
        }
        parser_flags = set(_backend_flags())
        missing_from_parser = execution_flags - parser_flags
        assert not missing_from_parser, (
            f"README documents execution flags the parser lost: {sorted(missing_from_parser)}"
        )
        missing_from_readme = execution_flags - documented
        assert not missing_from_readme, (
            f"README's command reference omits execution flags: {sorted(missing_from_readme)}"
        )


class TestWireProtocolTable:
    def test_architecture_op_table_matches_protocol_module(self):
        """The op table documents exactly the OP_* constants of protocol.py."""
        from repro.core.distributed import protocol

        section = _section(
            ARCHITECTURE.read_text(encoding="utf-8"),
            "## Data flow: the wire protocol (`cluster`)",
        )
        documented = _table_names(section)
        assert documented, "docs/ARCHITECTURE.md lost its wire-protocol op table"
        ops = sorted(
            value
            for name, value in vars(protocol).items()
            if name.startswith("OP_")
        )
        assert sorted(documented) == ops, (
            "docs/ARCHITECTURE.md op table drifted from protocol.py's OP_* "
            f"constants: documented={sorted(documented)}, actual={ops}"
        )

    def test_architecture_documents_the_batch_sizing_rule(self):
        """The documented formula names the live constants' values."""
        from repro.core.distributed.protocol import MAX_TASK_BATCH, TASK_OVERSUBSCRIBE

        section = _section(
            ARCHITECTURE.read_text(encoding="utf-8"),
            "## Data flow: the wire protocol (`cluster`)",
        )
        assert f"lanes × {TASK_OVERSUBSCRIBE}" in section, (
            "ARCHITECTURE.md batch-sizing formula drifted from TASK_OVERSUBSCRIBE"
        )
        assert str(MAX_TASK_BATCH) in section, (
            "ARCHITECTURE.md batch-sizing clamp drifted from MAX_TASK_BATCH"
        )


class TestStaticAnalysisDoc:
    def test_rule_table_matches_registry(self):
        """docs/STATIC_ANALYSIS.md lists exactly the registered lint rules."""
        from repro.analysis.staticcheck import available_rules

        section = _section(STATIC_ANALYSIS.read_text(encoding="utf-8"), "## Rules")
        documented = _table_names(section)
        assert documented, "docs/STATIC_ANALYSIS.md lost its rule table"
        assert documented == list(available_rules()), (
            "docs/STATIC_ANALYSIS.md rule table drifted from the staticcheck "
            f"registry: documented={documented}, actual={list(available_rules())}"
        )

    def test_waiver_example_matches_the_live_syntax(self):
        """The documented waiver example actually parses as a waiver."""
        from repro.analysis.staticcheck import collect_waivers

        text = STATIC_ANALYSIS.read_text(encoding="utf-8")
        example = next(
            line for line in text.splitlines() if "# staticcheck: allow(" in line
        )
        (waiver,) = collect_waivers(example + "\n")
        assert waiver.rules == ("broad-except",)
        assert waiver.justification


class TestPaperMapping:
    @pytest.mark.parametrize("kind", ["tests", "benchmarks", "examples"])
    def test_cited_paths_exist(self, kind):
        text = (
            PAPER_MAPPING.read_text(encoding="utf-8")
            + README.read_text(encoding="utf-8")
            + ARCHITECTURE.read_text(encoding="utf-8")
            + STATIC_ANALYSIS.read_text(encoding="utf-8")
        )
        cited = set(re.findall(rf"`({kind}/[\w./]+\.py)`", text))
        assert cited or kind == "examples", f"no {kind} paths cited at all?"
        missing = sorted(path for path in cited if not (REPO_ROOT / path).exists())
        assert not missing, f"docs cite nonexistent files: {missing}"

    def test_mapping_covers_every_scheduler(self):
        """Each registered scheduler name appears in the mapping tables."""
        from repro.algorithms.registry import available_schedulers

        text = PAPER_MAPPING.read_text(encoding="utf-8")
        missing = [name for name in available_schedulers() if name not in text]
        assert not missing, f"docs/PAPER_MAPPING.md does not mention: {missing}"
