"""Storage equivalence: dense, sparse and mmap must be bit-identical.

The storage layer re-represents the interest matrices without changing a
single value, and every execution backend runs the same
``score_block_kernel`` over the same event-axis chunks — so scores,
utilities, schedules and counters must be **bit-identical** across
storages, across backends, and across the cluster wire.  These tests pin
that down:

* engine-level ``score_matrix`` / ``interval_scores`` equality under every
  storage (including against a mutated schedule state);
* scheduler-level equality (schedule, utility, counters) across
  storage × backend combinations, with the storage recorded on the result;
* cluster legs against real spawned workers, one per storage — the mmap leg
  ships only the backing-file path (protocol v3's ``"file"`` payload);
* the no-filesystem-visibility fallback: a worker that cannot map the
  shipped path answers ``ERROR_FILE_UNAVAILABLE`` and the client re-ships
  the instance bytes under the same fingerprint, bit-identically;
* the protocol v3 primitives themselves: chunked fingerprints (chunk size
  must not change the digest), file fingerprints, and
  ``build_instance_record`` over every payload kind.

Run the whole suite under ``REPRO_TEST_STORAGE=sparse`` / ``mmap`` to push
every helper-built instance in every *other* test file through the same
checks (the CI matrix does).
"""

from __future__ import annotations

import hashlib
import threading

import numpy as np
import pytest

from repro.algorithms.registry import run_scheduler
from repro.core.distributed import start_local_worker
from repro.core.distributed import protocol
from repro.core.distributed.protocol import (
    ColumnTask,
    PROTOCOL_VERSION,
    file_fingerprint,
    instance_fingerprint,
)
from repro.core.distributed.worker import (
    FileUnavailableError,
    WorkerServer,
    build_instance_record,
    score_column,
)
from repro.core.errors import SolverError
from repro.core.execution import ExecutionConfig
from repro.core.instance_io import spill_instance
from repro.core.scoring import ScoringEngine, build_event_rows, build_static_arrays
from repro.core.storage import DenseEventRows, MmapStore, StoreEventRows, as_sparse
from tests.conftest import make_random_instance

STORAGES = ("dense", "sparse", "mmap")
SCHEDULERS = ["ALG", "INC", "HOR", "TOP"]


def storage_variants(tmp_path, **kwargs):
    """The same logical instance under every built-in storage."""
    dense = make_random_instance(**kwargs).with_storage("dense")
    return {
        "dense": dense,
        "sparse": dense.with_storage("sparse"),
        "mmap": dense.with_storage("mmap", directory=tmp_path / "mmap"),
    }


# --------------------------------------------------------------------------- #
# Engine-level bit-identity
# --------------------------------------------------------------------------- #
class TestEngineEquivalence:
    @pytest.mark.parametrize("chunk_size", [1, 5, None])
    def test_score_matrix_bit_identical(self, tmp_path, chunk_size):
        variants = storage_variants(
            tmp_path, seed=300, num_users=40, num_events=18, num_intervals=5
        )
        engines = {
            name: ScoringEngine(
                instance, execution=ExecutionConfig(chunk_size=chunk_size)
            )
            for name, instance in variants.items()
        }
        reference = engines["dense"].score_matrix(count=False)
        for name in ("sparse", "mmap"):
            assert np.array_equal(engines[name].score_matrix(count=False), reference)
        # ... and against a non-empty schedule state.
        for engine in engines.values():
            engine.apply(3, 1)
            engine.apply(9, 2)
        reference = engines["dense"].score_matrix(count=False)
        for name in ("sparse", "mmap"):
            assert np.array_equal(engines[name].score_matrix(count=False), reference)

    def test_interval_scores_and_subsets_bit_identical(self, tmp_path):
        variants = storage_variants(
            tmp_path, seed=301, num_users=30, num_events=14, num_intervals=4
        )
        engines = {
            name: ScoringEngine(instance, execution=ExecutionConfig(chunk_size=3))
            for name, instance in variants.items()
        }
        subset = [11, 2, 7, 2, 0]
        for interval_index in range(4):
            full = engines["dense"].interval_scores(interval_index, count=False)
            picked = engines["dense"].interval_scores(
                interval_index, subset, count=False
            )
            for name in ("sparse", "mmap"):
                assert np.array_equal(
                    engines[name].interval_scores(interval_index, count=False), full
                )
                assert np.array_equal(
                    engines[name].interval_scores(interval_index, subset, count=False),
                    picked,
                )

    def test_counters_are_storage_invariant(self, tmp_path):
        variants = storage_variants(
            tmp_path, seed=302, num_users=20, num_events=10, num_intervals=3
        )
        snapshots = {}
        for name, instance in variants.items():
            engine = ScoringEngine(instance, execution=ExecutionConfig(chunk_size=4))
            engine.score_matrix(initial=True)
            engine.interval_scores(1, [0, 3, 5], initial=False)
            snapshots[name] = engine.counter.snapshot()
        assert snapshots["sparse"] == snapshots["dense"]
        assert snapshots["mmap"] == snapshots["dense"]


# --------------------------------------------------------------------------- #
# Scheduler-level equality across storage x backend
# --------------------------------------------------------------------------- #
class TestSchedulerEquivalence:
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_batch_schedulers_storage_invariant(self, tmp_path, scheduler):
        variants = storage_variants(
            tmp_path, seed=310, num_users=50, num_events=16, num_intervals=5
        )
        results = {
            name: run_scheduler(scheduler, instance, 6)
            for name, instance in variants.items()
        }
        for name in ("sparse", "mmap"):
            assert (
                results[name].schedule.as_dict() == results["dense"].schedule.as_dict()
            )
            assert results[name].utility == results["dense"].utility
            assert results[name].counters == results["dense"].counters
            assert results[name].storage == name
            assert results[name].summary()["storage"] == name

    @pytest.mark.parametrize(
        "backend_config",
        [
            {"backend": "parallel", "workers": 2},
            {"backend": "process", "workers": 2},
        ],
        ids=["parallel", "process"],
    )
    def test_worker_backends_storage_invariant(self, tmp_path, backend_config):
        variants = storage_variants(
            tmp_path, seed=311, num_users=40, num_events=12, num_intervals=4
        )
        reference = run_scheduler("ALG", variants["dense"], 5)
        for name in STORAGES:
            result = run_scheduler(
                "ALG", variants[name], 5, execution=ExecutionConfig(**backend_config)
            )
            assert result.schedule.as_dict() == reference.schedule.as_dict()
            assert result.utility == reference.utility
            assert result.storage == name
            assert result.backend == backend_config["backend"]


# --------------------------------------------------------------------------- #
# Cluster legs: one spawned worker per storage, plus the file fallback
# --------------------------------------------------------------------------- #
class TestClusterEquivalence:
    @pytest.mark.parametrize("storage", STORAGES)
    def test_cluster_bit_identical_per_storage(self, tmp_path, storage):
        instance = storage_variants(
            tmp_path, seed=320, num_users=30, num_events=15, num_intervals=4
        )[storage]
        reference = run_scheduler("ALG", instance, 5)
        worker = start_local_worker()
        try:
            result = run_scheduler(
                "ALG",
                instance,
                5,
                execution=ExecutionConfig(
                    backend="cluster", chunk_size=4, workers_addr=(worker.address,)
                ),
            )
        finally:
            worker.stop()
        assert result.schedule.as_dict() == reference.schedule.as_dict()
        assert result.utility == reference.utility
        assert result.storage == storage

    def _threaded_worker(self):
        """A worker served in *this* process, so monkeypatches reach it."""
        server = WorkerServer()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, thread

    def _run_on(self, server, instance):
        engine = ScoringEngine(
            instance,
            execution=ExecutionConfig(
                backend="cluster", chunk_size=4, workers_addr=(server.address,)
            ),
        )
        try:
            return engine.score_matrix(count=False)
        finally:
            engine.close()

    def test_file_ship_maps_the_backing_file(self, tmp_path, monkeypatch):
        """A worker with filesystem visibility rebuilds from the path alone."""
        import repro.core.instance_io as instance_io

        instance = make_random_instance(
            seed=321, num_users=25, num_events=12, num_intervals=3
        ).with_storage("mmap", directory=tmp_path / "ship")
        reference = ScoringEngine(
            instance, execution=ExecutionConfig(backend="batch", chunk_size=4)
        ).score_matrix(count=False)

        calls = []
        real_load_npz = instance_io.load_npz

        def tracking_load_npz(path, *, mmap=False):
            calls.append((str(path), mmap))
            return real_load_npz(path, mmap=mmap)

        monkeypatch.setattr(instance_io, "load_npz", tracking_load_npz)
        server, _ = self._threaded_worker()
        try:
            scores = self._run_on(server, instance)
        finally:
            server.stop()
        assert np.array_equal(scores, reference)
        assert calls == [(instance.backing_file, True)]

    def test_no_visibility_worker_falls_back_to_byte_ship(self, tmp_path, monkeypatch):
        """A worker that cannot map the path gets the bytes instead — and the
        columns are bit-identical either way."""
        import repro.core.instance_io as instance_io

        instance = make_random_instance(
            seed=322, num_users=25, num_events=12, num_intervals=3
        ).with_storage("mmap", directory=tmp_path / "noship")
        reference = ScoringEngine(
            instance, execution=ExecutionConfig(backend="batch", chunk_size=4)
        ).score_matrix(count=False)

        attempts = []

        def unavailable_load_npz(path, *, mmap=False):
            attempts.append(str(path))
            raise OSError("no such filesystem on this worker")

        monkeypatch.setattr(instance_io, "load_npz", unavailable_load_npz)
        server, _ = self._threaded_worker()
        try:
            scores = self._run_on(server, instance)
            assert len(server.cache) == 1  # the byte ship became resident
        finally:
            server.stop()
        assert attempts == [instance.backing_file]  # the path was tried first
        assert np.array_equal(scores, reference)


# --------------------------------------------------------------------------- #
# Protocol v3 primitives
# --------------------------------------------------------------------------- #
class TestProtocolV3:
    def test_protocol_version(self):
        assert PROTOCOL_VERSION == 3

    def test_instance_fingerprint_is_chunking_invariant(self, monkeypatch):
        rng = np.random.default_rng(40)
        arrays = {
            "mu_rows": rng.random((7, 31)),
            "comp": rng.random((31, 3)),
        }
        reference = instance_fingerprint(arrays)
        # The digest must not depend on the chunk size (only peak memory does).
        for chunk_bytes in (1, 64, 10**9):
            monkeypatch.setattr(protocol, "FINGERPRINT_CHUNK_BYTES", chunk_bytes)
            assert instance_fingerprint(arrays) == reference
        # ... and matches a single-pass sha1 over name/shape/dtype/bytes.
        digest = hashlib.sha1()
        for name in sorted(arrays):
            array = np.ascontiguousarray(arrays[name])
            digest.update(name.encode("utf-8"))
            digest.update(str(array.shape).encode("utf-8"))
            digest.update(array.dtype.str.encode("utf-8"))
            digest.update(array.tobytes())
        assert reference == digest.hexdigest()

    def test_instance_fingerprint_is_content_sensitive(self):
        arrays = {"mu_rows": np.arange(12.0).reshape(3, 4)}
        tweaked = {"mu_rows": np.arange(12.0).reshape(3, 4)}
        tweaked["mu_rows"][2, 3] += 1e-9
        assert instance_fingerprint(arrays) != instance_fingerprint(tweaked)

    def test_file_fingerprint(self, tmp_path, monkeypatch):
        path = tmp_path / "payload.bin"
        path.write_bytes(b"x" * 1000)
        fingerprint = file_fingerprint(str(path))
        assert fingerprint == "file:" + hashlib.sha1(b"x" * 1000).hexdigest()
        monkeypatch.setattr(protocol, "FINGERPRINT_CHUNK_BYTES", 7)
        assert file_fingerprint(str(path)) == fingerprint
        path.write_bytes(b"x" * 999 + b"y")
        assert file_fingerprint(str(path)) != fingerprint

    def _record_arrays(self, instance):
        comp, sigma, values, _ = build_static_arrays(instance)
        rows = build_event_rows(instance.interest.store, values)
        return comp, sigma, values, rows

    def test_build_instance_record_arrays_kind(self, tmp_path):
        instance = make_random_instance(seed=330, num_users=15, num_events=8).with_storage(
            "dense"
        )
        comp, sigma, values, rows = self._record_arrays(instance)
        assert isinstance(rows, DenseEventRows)
        mu_rows, value_mu_rows = rows.arrays
        record = build_instance_record(
            {
                "kind": "arrays",
                "arrays": {
                    "mu_rows": mu_rows,
                    "value_mu_rows": value_mu_rows,
                    "comp": comp,
                    "sigma": sigma,
                },
            }
        )
        assert isinstance(record["rows"], DenseEventRows)
        got_mu, got_value = record["rows"].block(0, rows.num_rows)
        assert np.array_equal(got_mu, mu_rows)
        assert np.array_equal(got_value, value_mu_rows)

    def test_build_instance_record_csr_kind_matches_dense(self, tmp_path):
        instance = make_random_instance(seed=331, num_users=15, num_events=8).with_storage(
            "sparse"
        )
        comp, sigma, values, rows = self._record_arrays(instance)
        assert isinstance(rows, StoreEventRows)
        indptr, indices, data = as_sparse(instance.interest.store).csr_arrays
        record = build_instance_record(
            {
                "kind": "csr",
                "arrays": {
                    "csr_shape": np.asarray(instance.interest.shape, dtype=np.int64),
                    "csr_indptr": indptr,
                    "csr_indices": indices,
                    "csr_data": data,
                    "values": values,
                    "comp": comp,
                    "sigma": sigma,
                },
            }
        )
        for start, stop in ((0, 8), (2, 5)):
            expect_mu, expect_value = rows.block(start, stop)
            got_mu, got_value = record["rows"].block(start, stop)
            assert np.array_equal(got_mu, expect_mu)
            assert np.array_equal(got_value, expect_value)

    def test_build_instance_record_file_kind_scores_bit_identically(self, tmp_path):
        instance = make_random_instance(
            seed=332, num_users=20, num_events=10, num_intervals=3
        )
        spilled = spill_instance(instance, tmp_path / "record")
        record = build_instance_record({"kind": "file", "path": spilled.backing_file})
        assert isinstance(record["rows"]._store, MmapStore)
        comp, sigma, values, rows = self._record_arrays(spilled)
        assert np.array_equal(record["comp"], comp)
        assert np.array_equal(record["sigma"], sigma)
        task = ColumnTask(
            interval_index=1,
            token=0,
            selector=None,
            scheduled=np.zeros(spilled.num_users),
            scheduled_value=np.zeros(spilled.num_users),
            utility=0.0,
            step=3,
        )
        column = score_column(record, task, record["rows"])
        reference = score_column(
            {"rows": rows, "comp": comp, "sigma": sigma}, task, rows
        )
        assert np.array_equal(column, reference)

    def test_build_instance_record_file_kind_unmappable_path(self, tmp_path):
        with pytest.raises(FileUnavailableError, match="cannot map"):
            build_instance_record(
                {"kind": "file", "path": str(tmp_path / "missing.npz")}
            )

    @pytest.mark.parametrize(
        "payload",
        ["not-a-dict", {"no": "kind"}, {"kind": "carrier-pigeon"}],
        ids=["non-dict", "kindless", "unknown-kind"],
    )
    def test_build_instance_record_rejects_malformed_payloads(self, payload):
        with pytest.raises(SolverError):
            build_instance_record(payload)
