"""Tests for the experiment harness, figure registry and summary sweep."""

import pytest

from repro.core.errors import ExperimentError
from repro.experiments.figures import (
    EXPERIMENTS,
    SCALES,
    available_experiments,
    fig5,
    fig10a,
    fig10b,
    get_experiment,
    get_scale,
    run_experiment,
)
from repro.experiments.harness import run_algorithms, run_experiment_point
from repro.experiments.report import format_figure_result, format_records, format_table
from repro.experiments.sweeps import summarize_records, summary_sweep
from tests.conftest import make_random_instance


class TestHarness:
    def test_run_algorithms_produces_one_record_per_method(self, small_instance):
        records = run_algorithms(small_instance, 4, algorithms=("ALG", "TOP", "RAND"))
        assert [record.algorithm for record in records] == ["ALG", "TOP", "RAND"]
        assert all(record.dataset == small_instance.name for record in records)
        assert all(record.k == 4 for record in records)

    def test_run_algorithms_requires_names(self, small_instance):
        with pytest.raises(ExperimentError, match="at least one"):
            run_algorithms(small_instance, 3, algorithms=())

    def test_run_experiment_point_builds_dataset(self):
        records = run_experiment_point(
            "Unf",
            k=4,
            experiment_id="unit",
            dataset_overrides={"num_users": 30, "num_events": 10, "num_intervals": 4, "seed": 1},
            algorithms=("HOR",),
            params={"note": "x"},
        )
        assert len(records) == 1
        assert records[0].params["note"] == "x"
        assert records[0].params["k"] == 4

    def test_validation_failure_raises(self, small_instance, monkeypatch):
        """A scheduler returning an invalid solution must abort the experiment loudly."""
        from repro.experiments import harness as harness_module

        def fake_validate(instance, schedule, *, k, claimed_utility=None):
            return ["synthetic problem"]

        monkeypatch.setattr(harness_module, "validate_solution", fake_validate)
        with pytest.raises(ExperimentError, match="invalid schedule"):
            run_algorithms(small_instance, 3, algorithms=("TOP",))

    def test_validation_can_be_disabled(self, small_instance, monkeypatch):
        from repro.experiments import harness as harness_module

        def fake_validate(instance, schedule, *, k, claimed_utility=None):
            return ["synthetic problem"]

        monkeypatch.setattr(harness_module, "validate_solution", fake_validate)
        records = run_algorithms(small_instance, 3, algorithms=("TOP",), validate=False)
        assert len(records) == 1


class TestScales:
    def test_known_scales(self):
        assert {"tiny", "small", "default"} <= set(SCALES)
        for scale in SCALES.values():
            assert scale.default_events == 3 * scale.default_k
            assert scale.default_intervals == (3 * scale.default_k) // 2

    def test_get_scale_accepts_objects_and_names(self):
        assert get_scale("tiny").name == "tiny"
        assert get_scale(SCALES["small"]) is SCALES["small"]
        with pytest.raises(ExperimentError, match="unknown scale"):
            get_scale("galactic")


class TestRegistry:
    def test_all_paper_figures_registered(self):
        for figure_id in ("fig5", "fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b"):
            assert figure_id in EXPERIMENTS
        assert "ext_competing" in EXPERIMENTS
        assert "ext_resources" in EXPERIMENTS

    def test_available_and_get(self):
        assert available_experiments() == sorted(EXPERIMENTS)
        assert get_experiment("fig5").runner is fig5
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get_experiment("fig99")


class TestFigureRuns:
    """Each figure function runs end-to-end at the tiny scale."""

    def test_fig5_structure(self):
        figure = fig5(scale="tiny", datasets=("Unf",), algorithms=("ALG", "INC", "HOR", "TOP"))
        assert figure.figure_id == "fig5"
        ks = figure.x_values()
        assert ks == [4.0, 6.0, 10.0]
        series = figure.series(metric="utility", dataset="Unf")
        assert set(series) == {"ALG", "INC", "HOR", "TOP"}
        assert len(series["ALG"]) == 3
        # Utility grows with k for the greedy methods.
        utilities = [value for _, value in series["ALG"]]
        assert utilities == sorted(utilities)

    def test_fig10a_uses_worst_case_intervals(self):
        figure = fig10a(scale="tiny", datasets=("Unf",), algorithms=("HOR", "HOR-I"))
        scale = get_scale("tiny")
        assert all(record.params["num_intervals"] == scale.default_k - 1 for record in figure.records)

    def test_fig10b_only_alg_and_inc(self):
        figure = fig10b(scale="tiny")
        assert set(figure.algorithms()) == {"ALG", "INC"}
        assert figure.notes["sweep_labels"]
        # INC examines fewer assignments than ALG at every sweep point.
        by_point = {}
        for record in figure.records:
            by_point.setdefault(record.params["label"], {})[record.algorithm] = record
        for label, pair in by_point.items():
            assert pair["INC"].assignments_examined < pair["ALG"].assignments_examined, label

    @pytest.mark.parametrize("experiment_id", ["fig6", "fig7", "fig9", "ext_resources"])
    def test_other_figures_run_at_tiny_scale(self, experiment_id):
        figure = run_experiment(
            experiment_id, scale="tiny", datasets=("Unf",), algorithms=("HOR", "TOP")
        )
        assert figure.records
        assert figure.figure_id == experiment_id
        for record in figure.records:
            assert record.utility >= 0.0
            assert record.time_sec >= 0.0


class TestSummarySweep:
    def test_summary_statistics(self):
        stats = summary_sweep(scale="tiny", datasets=("Unf", "Zip"))
        assert stats.num_points == 6
        assert stats.inc_always_equal_to_alg
        assert stats.hor_i_always_equal_to_hor
        assert 0.0 <= stats.hor_equal_utility_fraction <= 1.0
        assert stats.hor_max_relative_gap < 0.2
        assert set(stats.mean_computation_ratio) == {"INC", "HOR", "HOR-I"}
        for ratio in stats.mean_computation_ratio.values():
            assert ratio <= 1.0 + 1e-9
        rows = stats.as_rows()
        assert any("INC utility" in str(row["statistic"]) for row in rows)

    def test_summarize_records_empty(self):
        stats = summarize_records([])
        assert stats.num_points == 0
        assert stats.hor_equal_utility_fraction == 0.0


class TestReport:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert len(lines) == 4

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_records(self, small_instance):
        records = run_algorithms(small_instance, 3, algorithms=("TOP",))
        text = format_records(records)
        assert "TOP" in text
        assert "utility" in text

    def test_format_figure_result(self):
        figure = fig5(scale="tiny", datasets=("Unf",), algorithms=("HOR", "TOP"))
        text = format_figure_result(figure)
        assert "fig5" in text
        assert "utility" in text
        assert "HOR" in text
