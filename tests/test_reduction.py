"""Tests for the Theorem 1 reduction (repro.hardness.reduction).

The key check: evaluating the canonical schedule of a 3DM-3 matching with the
*actual scoring engine* reproduces the closed-form utility used in the proof
sketch — ``|M| · 3(0.25 + δ) + (m − n)``.
"""

import pytest

from repro.algorithms.alg import AlgScheduler
from repro.core.constraints import is_schedule_feasible
from repro.core.scoring import utility_of_schedule
from repro.hardness.reduction import (
    reduce_to_ses,
    schedule_from_matching,
    utility_of_matching_schedule,
)
from repro.hardness.three_dm import (
    HardnessError,
    ThreeDMInstance,
    exact_maximum_matching,
    greedy_matching,
    random_3dm3_instance,
)


@pytest.fixture
def small_3dm():
    return random_3dm3_instance(3, num_triples=6, seed=7)


class TestConstruction:
    def test_sizes(self, small_3dm):
        artifacts = reduce_to_ses(small_3dm, delta=0.05)
        instance = artifacts.instance
        n, m = small_3dm.n, small_3dm.num_triples
        assert instance.num_events == 3 * n + (m - n)
        assert instance.num_intervals == m
        assert instance.num_competing_events == m          # one per interval
        assert instance.num_users == 3 * n + (m - n)
        assert instance.available_resources == 3.0
        assert artifacts.k == 3 * n + (m - n)

    def test_one_competing_event_per_interval(self, small_3dm):
        instance = reduce_to_ses(small_3dm).instance
        for interval in range(instance.num_intervals):
            assert len(instance.competing_events_at(interval)) == 1

    def test_interest_structure(self, small_3dm):
        artifacts = reduce_to_ses(small_3dm, delta=0.05)
        interest = artifacts.instance.interest.values
        # Every user likes exactly one candidate event.
        assert ((interest > 0).sum(axis=1) == 1).all()
        # E1 events are liked with 0.25, fillers with 0.75.
        for (dimension, element), event_index in artifacts.element_event_index.items():
            user_index = dimension * small_3dm.n + element
            assert interest[user_index, event_index] == pytest.approx(0.25)
        for filler_position, event_index in enumerate(artifacts.filler_event_indices):
            user_index = 3 * small_3dm.n + filler_position
            assert interest[user_index, event_index] == pytest.approx(0.75)

    def test_competing_interest_values(self, small_3dm):
        delta = 0.05
        artifacts = reduce_to_ses(small_3dm, delta=delta)
        competing = artifacts.instance.competing_interest.values
        adjusted = 0.25 * (0.75 - delta) / (0.25 + delta)
        for (dimension, element), _ in artifacts.element_event_index.items():
            user_index = dimension * small_3dm.n + element
            for triple_index, triple in enumerate(small_3dm.triples):
                expected = adjusted if triple[dimension] == element else 0.75
                assert competing[user_index, triple_index] == pytest.approx(expected)
        # Filler users are indifferent to every competing event.
        for filler_position in range(len(artifacts.filler_event_indices)):
            user_index = 3 * small_3dm.n + filler_position
            assert (competing[user_index] == 0).all()

    def test_delta_bounds_enforced(self, small_3dm):
        with pytest.raises(HardnessError, match="delta"):
            reduce_to_ses(small_3dm, delta=0.2)
        with pytest.raises(HardnessError, match="delta"):
            reduce_to_ses(small_3dm, delta=0.0)


class TestUtilityCorrespondence:
    @pytest.mark.parametrize("delta", [0.01, 0.05, 0.08])
    def test_matched_triple_contributes_3_quarter_plus_delta(self, delta):
        source = ThreeDMInstance(n=1, triples=((0, 0, 0),))
        artifacts = reduce_to_ses(source, delta=delta)
        schedule = schedule_from_matching(artifacts, [0])
        utility = utility_of_schedule(artifacts.instance, schedule)
        assert utility == pytest.approx(3 * (0.25 + delta), rel=1e-9)

    def test_engine_matches_closed_form(self, small_3dm):
        artifacts = reduce_to_ses(small_3dm, delta=0.05)
        for matching in (greedy_matching(small_3dm), exact_maximum_matching(small_3dm), []):
            schedule = schedule_from_matching(artifacts, matching)
            assert is_schedule_feasible(artifacts.instance, schedule)
            measured = utility_of_schedule(artifacts.instance, schedule)
            closed_form = utility_of_matching_schedule(artifacts, matching)
            assert measured == pytest.approx(closed_form, rel=1e-9)

    def test_larger_matchings_give_larger_utility(self, small_3dm):
        artifacts = reduce_to_ses(small_3dm, delta=0.05)
        exact = exact_maximum_matching(small_3dm)
        assert utility_of_matching_schedule(artifacts, exact) >= utility_of_matching_schedule(
            artifacts, exact[:1]
        )

    def test_perfect_matching_reaches_proof_value(self):
        source = random_3dm3_instance(3, num_triples=6, seed=11, ensure_perfect=True)
        artifacts = reduce_to_ses(source, delta=0.05)
        perfect = exact_maximum_matching(source)
        assert len(perfect) == source.n
        utility = utility_of_matching_schedule(artifacts, perfect)
        n, m = source.n, source.num_triples
        assert utility == pytest.approx(3 * n * (0.25 + 0.05) + (m - n), rel=1e-9)

    def test_invalid_matching_rejected(self, small_3dm):
        artifacts = reduce_to_ses(small_3dm)
        # Six triples cannot form a matching when each dimension only has three elements.
        bad = [0, 1, 2, 3, 4, 5]
        with pytest.raises(HardnessError, match="matching"):
            schedule_from_matching(artifacts, bad)
        with pytest.raises(HardnessError, match="matching"):
            utility_of_matching_schedule(artifacts, bad)


class TestSolversOnReducedInstance:
    def test_greedy_respects_reduction_constraints(self, small_3dm):
        artifacts = reduce_to_ses(small_3dm, delta=0.05)
        result = AlgScheduler(artifacts.instance).schedule(artifacts.k)
        assert is_schedule_feasible(artifacts.instance, result.schedule)
        # θ = 3 with ξ = 1 / ξ = 3: an interval hosts at most three element events.
        for interval in result.schedule.used_intervals():
            assert result.schedule.num_events_at(interval) <= 3

    def test_greedy_utility_bounded_by_matching_value(self, small_3dm):
        """No schedule can beat the canonical schedule of a maximum matching by much.

        (The proof's point is the correspondence; here we just sanity-check that
        the greedy SES utility lands in the plausible range.)
        """
        artifacts = reduce_to_ses(small_3dm, delta=0.05)
        best_matching = exact_maximum_matching(small_3dm)
        upper = utility_of_matching_schedule(artifacts, best_matching)
        greedy = AlgScheduler(artifacts.instance).schedule(artifacts.k)
        assert greedy.utility <= upper + len(artifacts.filler_event_indices) + 3 * 0.35
