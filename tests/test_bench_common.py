"""Unit tests for the latency-percentile helpers of ``benchmarks/_common.py``.

The load benchmark (``benchmarks/bench_serve_load.py``) reports p50/p99
re-solve latency through :func:`benchmarks._common.percentile` /
:func:`benchmarks._common.latency_summary`; these tests pin the
linear-interpolation definition against hand-computed values (and NumPy's
reference implementation) so a regression cannot silently shift the
persisted percentiles.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks._common import latency_summary, percentile


class TestPercentile:
    def test_single_sample_is_every_percentile(self):
        assert percentile([7.5], 0) == 7.5
        assert percentile([7.5], 50) == 7.5
        assert percentile([7.5], 100) == 7.5

    def test_median_of_odd_count(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_median_of_even_count_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_linear_interpolation(self):
        # Position (2 - 1) · 0.25 = 0.25 between 0 and 10.
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_p0_and_p100_are_min_and_max(self):
        samples = [5.0, 1.0, 9.0, 3.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 9.0

    def test_input_order_is_irrelevant(self):
        assert percentile([9.0, 1.0, 5.0], 50) == percentile([1.0, 5.0, 9.0], 50)

    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(12)
        samples = list(rng.random(101))
        for rank in (0, 10, 50, 90, 99, 100):
            assert percentile(samples, rank) == pytest.approx(
                float(np.percentile(samples, rank)), abs=1e-12
            )

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one sample"):
            percentile([], 50)

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], 101)
        with pytest.raises(ValueError, match=r"\[0, 100\]"):
            percentile([1.0], -0.1)


class TestLatencySummary:
    def test_summary_keys_and_values(self):
        samples = [0.4, 0.1, 0.2, 0.3]
        summary = latency_summary(samples)
        assert set(summary) == {"count", "mean", "p50", "p99", "max"}
        assert summary["count"] == 4.0
        assert summary["mean"] == pytest.approx(0.25)
        assert summary["p50"] == percentile(samples, 50)
        assert summary["p99"] == percentile(samples, 99)
        assert summary["max"] == 0.4

    def test_p99_tracks_the_tail(self):
        # 99 fast samples and one slow outlier: p50 stays low, p99 climbs.
        samples = [0.01] * 99 + [1.0]
        summary = latency_summary(samples)
        assert summary["p50"] == 0.01
        assert summary["p99"] > 0.01
        assert summary["p99"] <= 1.0

    def test_empty_samples_rejected(self):
        with pytest.raises(ValueError, match="at least one sample"):
            latency_summary([])
