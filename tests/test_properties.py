"""Property-based tests (hypothesis) for the core invariants of the library.

The key properties mirrored from the paper:

* Proposition 1 — assignment scores never increase when more events join an
  interval (stale scores are upper bounds).
* Proposition 3 — INC and ALG return identical schedules.
* Proposition 6 — HOR-I and HOR return identical schedules.
* Every scheduler always returns a feasible schedule of at most k events.
* The schedule utility equals the sum of the per-event expected attendances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms.alg import AlgScheduler
from repro.algorithms.hor import HorScheduler
from repro.algorithms.hor_i import HorIScheduler
from repro.algorithms.inc import IncScheduler
from repro.algorithms.rand import RandScheduler
from repro.algorithms.top import TopScheduler
from repro.core.constraints import is_schedule_feasible
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from repro.core.schedule import Schedule
from repro.core.scoring import ScoringEngine, utility_of_schedule

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def ses_instances(draw) -> SESInstance:
    """Random small SES instances with occasionally-binding constraints."""
    num_users = draw(st.integers(min_value=1, max_value=12))
    num_events = draw(st.integers(min_value=1, max_value=8))
    num_intervals = draw(st.integers(min_value=1, max_value=4))
    num_competing = draw(st.integers(min_value=0, max_value=5))
    num_locations = draw(st.integers(min_value=1, max_value=4))
    theta = draw(st.sampled_from([2.0, 5.0, 100.0]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    interest = rng.random((num_users, num_events))
    activity = rng.random((num_users, num_intervals))
    competing = rng.random((num_users, num_competing))
    competing_intervals = rng.integers(0, num_intervals, num_competing)
    locations = [f"loc{rng.integers(0, num_locations)}" for _ in range(num_events)]
    required = rng.uniform(0.0, 3.0, num_events)
    return SESInstance.from_arrays(
        interest=interest,
        activity=activity,
        competing_interest=competing if num_competing else None,
        competing_interval_indices=list(competing_intervals) if num_competing else None,
        locations=locations,
        required_resources=list(required),
        available_resources=theta,
        name="hypothesis",
    )


@st.composite
def interest_matrices(draw) -> InterestMatrix:
    rows = draw(st.integers(min_value=0, max_value=6))
    cols = draw(st.integers(min_value=0, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    return InterestMatrix(rng.random((rows, cols)))


class TestScoreProperties:
    @SETTINGS
    @given(instance=ses_instances(), data=st.data())
    def test_scores_non_negative_and_monotone(self, instance, data):
        """Scores are ≥ 0 and never increase as events are added to the interval."""
        engine = ScoringEngine(instance)
        interval = data.draw(st.integers(min_value=0, max_value=instance.num_intervals - 1))
        events = list(range(instance.num_events))
        target = data.draw(st.sampled_from(events))
        previous = engine.assignment_score(target, interval)
        assert previous >= -1e-12
        for event in events:
            if event == target:
                continue
            engine.apply(event, interval)
            current = engine.assignment_score(target, interval)
            assert current >= -1e-12
            assert current <= previous + 1e-9
            previous = current

    @SETTINGS
    @given(instance=ses_instances())
    def test_total_utility_equals_sum_of_attendances(self, instance):
        engine = ScoringEngine(instance)
        schedule = Schedule()
        rng = np.random.default_rng(0)
        for event in range(instance.num_events):
            interval = int(rng.integers(0, instance.num_intervals))
            schedule.add(event, interval)
        utility = engine.evaluate_schedule(schedule)
        attendance = engine.per_event_attendance(schedule)
        assert utility == pytest.approx(sum(attendance.values()), rel=1e-9, abs=1e-9)

    @SETTINGS
    @given(instance=ses_instances())
    def test_attendance_probability_is_a_probability(self, instance):
        engine = ScoringEngine(instance)
        for event in range(min(3, instance.num_events)):
            engine.apply(event, event % instance.num_intervals)
        for event in range(min(3, instance.num_events)):
            probabilities = engine.attendance_probabilities(event)
            assert np.all(probabilities >= -1e-12)
            assert np.all(probabilities <= 1.0 + 1e-9)


class TestAlgorithmProperties:
    @SETTINGS
    @given(instance=ses_instances(), k=st.integers(min_value=1, max_value=10))
    def test_inc_equals_alg(self, instance, k):
        alg = AlgScheduler(instance).schedule(k)
        inc = IncScheduler(instance).schedule(k)
        assert inc.schedule == alg.schedule

    @SETTINGS
    @given(instance=ses_instances(), k=st.integers(min_value=1, max_value=10))
    def test_hor_i_equals_hor(self, instance, k):
        hor = HorScheduler(instance).schedule(k)
        hor_i = HorIScheduler(instance).schedule(k)
        assert hor_i.schedule == hor.schedule

    @SETTINGS
    @given(instance=ses_instances(), k=st.integers(min_value=1, max_value=10))
    def test_all_schedulers_feasible_and_bounded(self, instance, k):
        for scheduler_cls in (AlgScheduler, IncScheduler, HorScheduler, HorIScheduler, TopScheduler):
            result = scheduler_cls(instance).schedule(k)
            assert result.num_scheduled <= min(k, instance.num_events)
            assert is_schedule_feasible(instance, result.schedule)
            assert result.utility == pytest.approx(
                utility_of_schedule(instance, result.schedule), rel=1e-9, abs=1e-9
            )
        rand = RandScheduler(instance, seed=0).schedule(k)
        assert is_schedule_feasible(instance, rand.schedule)

    @SETTINGS
    @given(instance=ses_instances(), k=st.integers(min_value=1, max_value=10))
    def test_incremental_schemes_never_cost_more(self, instance, k):
        alg = AlgScheduler(instance).schedule(k)
        inc = IncScheduler(instance).schedule(k)
        hor = HorScheduler(instance).schedule(k)
        hor_i = HorIScheduler(instance).schedule(k)
        assert inc.score_computations <= alg.score_computations
        assert hor_i.score_computations <= hor.score_computations

    @SETTINGS
    @given(instance=ses_instances())
    def test_greedy_first_pick_is_globally_best(self, instance):
        from repro.core.constraints import is_assignment_feasible

        engine = ScoringEngine(instance)
        empty = Schedule()
        feasible_scores = [
            engine.assignment_score(event, interval, count=False)
            for event in range(instance.num_events)
            for interval in range(instance.num_intervals)
            if is_assignment_feasible(instance, empty, event, interval)
        ]
        result = AlgScheduler(instance).schedule(1)
        if result.num_scheduled:
            assert result.utility == pytest.approx(max(feasible_scores), rel=1e-9, abs=1e-9)
        else:
            assert not feasible_scores


class TestSerializationProperties:
    @SETTINGS
    @given(matrix=interest_matrices())
    def test_interest_round_trip(self, matrix):
        assert InterestMatrix.from_serialized(matrix.to_dict()) == matrix

    @SETTINGS
    @given(instance=ses_instances())
    def test_instance_round_trip_preserves_utility(self, instance):
        restored = SESInstance.from_dict(instance.to_dict())
        schedule = Schedule()
        for event in range(min(3, instance.num_events)):
            schedule.add(event, event % instance.num_intervals)
        assert utility_of_schedule(restored, schedule) == pytest.approx(
            utility_of_schedule(instance, schedule), rel=1e-12, abs=1e-12
        )


class TestFloatingPointTieRegressions:
    """Exact-tie instances where FP noise used to break the Φ-bound pruning.

    With one empty interval and no competing events, every event's initial
    score is *exactly* Σσ (the Luce ratio collapses to σ per user), and all
    later scores are mathematically zero — but computed as differences of
    |U|-term sums they land a few ulp apart.  Stale scores then stop being
    true upper bounds, and INC/HOR-I's pruning could skip the entry ALG/HOR
    pick by tie-break (found by hypothesis; fixed by the engine's
    score_noise_tolerance guard in the incremental walks).
    """

    @staticmethod
    def _degenerate_instance() -> SESInstance:
        rng = np.random.default_rng(505)
        interest = rng.random((4, 7))
        activity = rng.random((4, 1))
        locations = [f"loc{rng.integers(0, 3)}" for _ in range(7)]
        required = rng.uniform(0.0, 3.0, 7)
        return SESInstance.from_arrays(
            interest=interest,
            activity=activity,
            locations=locations,
            required_resources=required,
            available_resources=5.0,
            name="fp-tie-counterexample",
        )

    def test_inc_equals_alg_on_all_tie_instance(self):
        instance = self._degenerate_instance()
        alg = AlgScheduler(instance).schedule(3)
        inc = IncScheduler(instance).schedule(3)
        assert inc.schedule == alg.schedule
        assert inc.utility == alg.utility

    def test_hor_i_equals_hor_on_all_tie_instance(self):
        instance = self._degenerate_instance()
        hor = HorScheduler(instance).schedule(3)
        hor_i = HorIScheduler(instance).schedule(3)
        assert hor_i.schedule == hor.schedule
        assert hor_i.utility == hor.utility
