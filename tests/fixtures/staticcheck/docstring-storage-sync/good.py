# lintpath: src/repro/core/fixture_good.py
"""Helpers documented against the ``mmap`` storage (registered and live)."""


def spill(matrix):
    """Stream the matrix through the 'sparse' store, falling back to
    storage="dense" when the instance is small; prose mentioning event-major
    storage without quoting a name is also fine."""
    return matrix
