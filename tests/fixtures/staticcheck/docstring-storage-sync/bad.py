# lintpath: src/repro/core/fixture_bad.py
"""Helpers documented against the ``columnar`` storage, which does not exist."""


def spill(matrix):
    """Stream the matrix through the 'paged' store, falling back to
    storage="ramdisk" when no directory is given."""
    return matrix
