# lintpath: src/repro/core/distributed/fixture_good.py
"""Good: every post-``__init__`` mutation of guarded state holds the lock."""

import threading


class Dispatcher:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = []   # __init__ is exempt: no other thread exists yet
        self.aborted = False
        self.served = 0     # never mutated under the lock -> unguarded

    def enqueue(self, batch):
        with self._lock:
            self.pending.append(batch)
            self.aborted = False

    def abort(self):
        with self._lock:
            self.aborted = True

    def drain(self):
        self.pending: list  # bare annotation: declares, mutates nothing
        with self._lock:
            drained = list(self.pending)
            self.pending.clear()
        self.served += 1  # unguarded attribute: fine outside the lock
        return drained
