# lintpath: src/repro/core/distributed/fixture_bad.py
"""Bad: attributes guarded by the lock in one method, mutated bare in another."""

import threading


class Dispatcher:
    def __init__(self):
        self._lock = threading.Lock()
        self.pending = []
        self.aborted = False

    def enqueue(self, batch):
        with self._lock:
            self.pending.append(batch)
            self.aborted = False

    def abort(self):
        self.aborted = True  # raced: assigned under the lock in enqueue()

    def drain(self):
        drained = list(self.pending)
        self.pending.clear()  # raced: mutated under the lock in enqueue()
        return drained
