# lintpath: tools/fixture_good.py
"""Good: narrow types, re-raising handlers, and a justified waiver."""


def load(path):
    try:
        return open(path).read()
    except (OSError, UnicodeDecodeError):
        return None


def publish(block):
    try:
        return block.publish()
    except Exception:
        block.unlink()  # cleanup, then surface the original error
        raise


def retry(action, attempts):
    for attempt in range(attempts):
        try:
            return action()
        except Exception:
            if attempt == attempts - 1:
                raise  # conditional re-raise still surfaces the error
    return None


def reactor_tick(handlers):
    for handler in handlers:
        try:
            handler()
        except Exception as error:  # staticcheck: allow(broad-except) -- logged to the reactor journal below; one bad handler must not stop the loop
            handlers.journal(error)
