# lintpath: tools/fixture_bad.py
"""Bad: silent swallows — bare, Exception, and BaseException-in-tuple."""


def load(path):
    try:
        return open(path).read()
    except Exception:
        return None


def probe(worker):
    try:
        worker.ping()
    except:  # noqa: E722
        pass


def shield(callback):
    try:
        callback()
    except (KeyboardInterrupt, BaseException):
        return False
