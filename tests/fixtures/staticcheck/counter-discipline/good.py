# lintpath: src/repro/algorithms/fixture_good.py
"""Good: counters advance through the canonical helpers only."""


def generate_entries(counter, entries, num_users):
    counter.count_scores(len(entries), initial=True, num_users=num_users)
    counter.count_examined()
    counter.num_users = num_users  # configuration, not a total: assignable
    return entries


class Walker:
    def declare(self):
        self.score_computations: int  # bare annotation: declares, mutates nothing

    def select(self, assignment):
        self._counter.count_selection()
        self._counter.bump("walks")
        return assignment
