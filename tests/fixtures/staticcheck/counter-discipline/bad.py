# lintpath: src/repro/algorithms/fixture_bad.py
"""Bad: counter totals advanced raw, bypassing the canonical helpers."""


def generate_entries(counter, entries, num_users):
    counter.score_computations += len(entries)  # bypasses user weighting
    counter.user_computations += len(entries) * num_users
    counter.assignments_examined = counter.assignments_examined + 1
    return entries


class Walker:
    def select(self, assignment):
        self._counter.selections += 1  # bypasses count_selection
        self._counter.extra["walks"] = 1  # bypasses bump
        return assignment
