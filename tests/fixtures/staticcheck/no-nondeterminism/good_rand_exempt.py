# lintpath: src/repro/algorithms/rand.py
"""Good: the seeded RAND baseline is the sanctioned randomness site."""

import random


def pick(seed, candidates):
    rng = random.Random(seed)
    return rng.choice(candidates)
