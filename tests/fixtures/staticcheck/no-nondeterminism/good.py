# lintpath: src/repro/core/fixture_good.py
"""Good: elapsed-time metrics and sorted set materialisation are all legal."""

import time


def timed_schedule(solver, instance):
    start = time.perf_counter()  # elapsed-time metric, not a result input
    schedule = solver(instance)
    elapsed = time.monotonic()  # also fine
    return schedule, time.perf_counter() - start, elapsed


def ordered_ids(events):
    return sorted(set(event.id for event in events))  # sorted before use
