# lintpath: src/repro/core/fixture_bad.py
"""Bad: every determinism hazard the rule bans, in one deterministic-layer file."""

import random  # banned module import
import time
import datetime
import numpy as np


def stamp_schedule(schedule):
    schedule.created = time.time()  # banned wall-clock read
    schedule.day = datetime.datetime.now()  # banned wall-clock read
    return schedule


def jitter(scores):
    return scores + np.random.rand(scores.shape[0])  # banned global RNG


def order_hazards(events):
    seen = {event.id for event in events}
    ordered = list(set(events))  # banned: set order escapes into a list
    for event_id in seen | {0}:
        pass
    for event_id in set(events):  # banned: iteration over a set
        ordered.append(event_id)
    return [event for event in frozenset(events)]  # banned in comprehension
