# lintpath: benchmarks/fixture_good.py
"""Good: None/tuple defaults with the object created per call."""


def record(row, sink=None):
    sink = [] if sink is None else sink
    sink.append(row)
    return sink


def tally(row, *, counts=None, order=()):
    counts = {} if counts is None else counts
    counts[row] = counts.get(row, 0) + 1
    return counts, tuple(order)
