# lintpath: benchmarks/fixture_bad.py
"""Bad: mutable default argument values, literal and constructed."""


def record(row, sink=[]):
    sink.append(row)
    return sink


def tally(row, *, counts={}, seen=set()):
    counts[row] = counts.get(row, 0) + 1
    seen.add(row)
    return counts


def build(make=dict()):
    return make
