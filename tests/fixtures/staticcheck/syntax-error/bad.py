# lintpath: src/repro/core/fixture_bad.py
"""Bad: the file does not parse at all."""


def broken(:
    return None
