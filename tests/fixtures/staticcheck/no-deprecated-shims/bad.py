# lintpath: src/repro/experiments/fixture_bad.py
"""Bad: internal call sites still using the pre-ExecutionConfig loose kwargs."""


def solve_all(instance, scheduler_cls, HorScheduler, run_algorithms, ScoringEngine):
    engine = ScoringEngine(instance, backend="batch", chunk_size=64)
    scheduler = scheduler_cls(instance, workers=4)
    horizontal = HorScheduler(instance, backend="process")
    return run_algorithms(instance, 3, workers=2), engine, scheduler, horizontal
