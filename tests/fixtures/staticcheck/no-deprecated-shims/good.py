# lintpath: src/repro/experiments/fixture_good.py
"""Good: one ExecutionConfig everywhere; the config constructor itself is legal."""


def solve_all(instance, scheduler_cls, run_algorithms, ScoringEngine, ExecutionConfig):
    execution = ExecutionConfig(backend="batch", chunk_size=64, workers=2)
    engine = ScoringEngine(instance, execution=execution)
    scheduler = scheduler_cls(instance, execution=execution)
    return run_algorithms(instance, 3, execution=execution), engine, scheduler
