# lintpath: src/repro/core/fixture_bad.py
"""Bad: an unguarded third-party import and an upward layer import."""

import requests  # third-party outside the stdlib+NumPy policy

from repro.experiments.harness import run_algorithms  # core -> experiments is upward


def fetch_and_solve(url, instance):
    payload = requests.get(url)
    return run_algorithms(instance, 3)
