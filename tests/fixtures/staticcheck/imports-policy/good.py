# lintpath: src/repro/experiments/fixture_good.py
"""Good: stdlib + NumPy + downward repro imports + a guarded optional extra."""

import json
import math

import numpy as np

from repro.core.counters import ComputationCounter
from repro.algorithms.registry import get_scheduler


def co_membership(instance):
    try:
        import networkx as nx
    except ImportError:
        raise RuntimeError("networkx is required for the co-membership graph")
    return nx.Graph()
