# lintpath: tools/fixture_bad.py
"""Bad: a justification-less waiver and a waiver naming an unknown rule."""


def load(path):
    try:
        return open(path).read()
    except Exception:  # staticcheck: allow(broad-except)
        return None


def probe(worker):
    try:
        return worker.ping()
    except OSError:  # staticcheck: allow(no-such-rule) -- the rule id is a typo
        return None
