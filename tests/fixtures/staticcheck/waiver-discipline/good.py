# lintpath: tools/fixture_good.py
"""Good: a waiver naming a registered rule, with a justification."""


def load(path):
    try:
        return open(path).read()
    except Exception:  # staticcheck: allow(broad-except) -- best-effort preload; a missing or unreadable file is reported by the caller's existence check
        return None
