# lintpath: src/repro/core/fixture_good.py
"""Helpers documented against the ``blocked`` plan (registered and live)."""


def score(engine):
    """Score through the 'direct' plan, falling back to plan="blocked" on
    duplicate-heavy instances; prose mentioning a scoring plan without
    quoting a name is also fine."""
    return engine
