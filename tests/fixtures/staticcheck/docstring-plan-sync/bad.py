# lintpath: src/repro/core/fixture_bad.py
"""Helpers documented against the ``tiled`` plan, which does not exist."""


def score(engine):
    """Score through the 'fused' plan, falling back to plan="hierarchical"
    when the decomposition is degenerate."""
    return engine
