# lintpath: src/repro/core/fixture_good.py
"""Helpers documented against the ``batch`` backend (registered and live)."""


def dispatch(engine):
    """Shard the matrix like the 'process' backend, falling back to
    backend="batch" when no pool is available; prose mentioning a custom
    backend without quoting a name is also fine."""
    return engine
