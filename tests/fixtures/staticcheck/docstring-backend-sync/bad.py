# lintpath: src/repro/core/fixture_bad.py
"""Helpers documented against the ``warp`` backend, which does not exist."""


def dispatch(engine):
    """Shard the matrix like the 'turbo' backend, falling back to
    backend="hyper" when the pool is busy."""
    return engine
