"""Tests of the §2.1 extensions: weighted users, event values and organisation costs.

The paper notes that "by performing trivial modifications to the algorithms,
additional factors ... can be easily handled", naming profit-oriented SES,
event durations and user weights.  The library supports user weights and
per-event value/cost directly through the entity fields; these tests check
that the extensions flow through the scoring engine and every scheduler.
"""

import numpy as np
import pytest

from repro.algorithms.registry import run_scheduler
from repro.core.instance import SESInstance
from repro.core.scoring import utility_of_schedule
from tests.conftest import make_random_instance


def weighted_pair(seed: int = 31):
    base = make_random_instance(seed=seed, num_users=40, num_events=10, num_intervals=4)
    weights = list(np.linspace(0.5, 3.0, base.num_users))
    weighted = make_random_instance(
        seed=seed, num_users=40, num_events=10, num_intervals=4, user_weights=weights
    )
    return base, weighted


class TestWeightedUsers:
    def test_weights_change_selection(self):
        """Strongly weighting a subset of users steers the schedule toward their tastes."""
        rng = np.random.default_rng(5)
        num_users, num_events, num_intervals = 30, 6, 3
        interest = rng.random((num_users, num_events)) * 0.2
        # The first five users adore event 0; everyone else prefers event 1.
        interest[:5, 0] = 1.0
        interest[5:, 1] = 0.9
        activity = np.full((num_users, num_intervals), 0.9)
        # One competing event per interval so the Luce denominators actually bite.
        competing = np.full((num_users, num_intervals), 0.5)
        competing_intervals = list(range(num_intervals))
        plain = SESInstance.from_arrays(
            interest=interest,
            activity=activity,
            competing_interest=competing,
            competing_interval_indices=competing_intervals,
        )
        boosted = SESInstance.from_arrays(
            interest=interest,
            activity=activity,
            competing_interest=competing,
            competing_interval_indices=competing_intervals,
            user_weights=[50.0] * 5 + [1.0] * (num_users - 5),
        )
        plain_first = run_scheduler("ALG", plain, 1).schedule.assignments()[0].event_index
        boosted_first = run_scheduler("ALG", boosted, 1).schedule.assignments()[0].event_index
        assert plain_first == 1
        assert boosted_first == 0

    def test_all_schedulers_accept_weights(self):
        _, weighted = weighted_pair()
        for name in ("ALG", "INC", "HOR", "HOR-I", "TOP", "RAND"):
            result = run_scheduler(name, weighted, 4, seed=0)
            assert result.utility >= 0.0

    def test_equivalences_hold_under_weights(self):
        _, weighted = weighted_pair()
        alg = run_scheduler("ALG", weighted, 6)
        inc = run_scheduler("INC", weighted, 6)
        hor = run_scheduler("HOR", weighted, 6)
        hor_i = run_scheduler("HOR-I", weighted, 6)
        assert alg.schedule == inc.schedule
        assert hor.schedule == hor_i.schedule


class TestProfitOrientedEvents:
    def test_value_multiplier_steers_selection(self):
        rng = np.random.default_rng(9)
        interest = rng.random((20, 4)) * 0.5
        activity = np.full((20, 2), 0.8)
        plain = SESInstance.from_arrays(interest=interest, activity=activity)
        # Make event 3 worth five times the attendance of the others.
        valued = SESInstance.from_arrays(
            interest=interest, activity=activity, event_values=[1.0, 1.0, 1.0, 5.0]
        )
        plain_first = run_scheduler("ALG", plain, 1).schedule.assignments()[0].event_index
        valued_first = run_scheduler("ALG", valued, 1).schedule.assignments()[0].event_index
        assert valued_first == 3
        assert plain_first == 0  # without values every event ties; the tie-break picks event 0

    def test_net_utility_subtracts_costs(self):
        instance = make_random_instance(seed=33, event_costs=[0.75] * 12)
        result = run_scheduler("HOR", instance, 4)
        assert result.net_utility == pytest.approx(result.utility - 4 * 0.75, rel=1e-9)
        assert result.net_utility == pytest.approx(
            utility_of_schedule(instance, result.schedule, include_costs=True), rel=1e-9
        )

    def test_costs_do_not_change_paper_objective(self):
        """Costs only affect net utility; the schedule itself still maximises Ω."""
        base = make_random_instance(seed=34)
        costed = make_random_instance(seed=34, event_costs=[2.0] * 12)
        assert run_scheduler("ALG", base, 5).schedule == run_scheduler("ALG", costed, 5).schedule

    def test_equivalences_hold_with_values_and_costs(self):
        instance = make_random_instance(
            seed=35, event_values=list(np.linspace(0.5, 2.0, 12)), event_costs=[0.1] * 12
        )
        alg = run_scheduler("ALG", instance, 6)
        inc = run_scheduler("INC", instance, 6)
        hor = run_scheduler("HOR", instance, 6)
        hor_i = run_scheduler("HOR-I", instance, 6)
        assert alg.schedule == inc.schedule
        assert hor.schedule == hor_i.schedule
