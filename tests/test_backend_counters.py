"""Counter invariance between the scalar and batch scoring backends.

The paper's evaluation metrics — score computations (``|U|`` user computations
each), generated/updated assignments, assignments examined — are counted
per (event, interval) pair regardless of how the scores are physically
computed.  These tests assert that every counter ``ComputationCounter``
snapshot is *exactly* identical between backends for ALG, INC, HOR and HOR-I
(plus the TOP baseline and the two ablations that ride on the same bulk API),
so the Fig. 10 reproductions are backend-independent.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import run_scheduler
from repro.core.counters import ComputationCounter
from repro.core.execution import ExecutionConfig
from repro.core.scoring import SCORING_BACKENDS, ScoringEngine

from tests.conftest import make_random_instance

COUNTER_ALGORITHMS = ["ALG", "INC", "HOR", "HOR-I", "TOP", "INC-U", "ALG-O"]

INSTANCE_CONFIGS = [
    {"seed": 50},
    {"seed": 51, "num_users": 30, "num_events": 16, "num_intervals": 4, "num_competing": 2},
    {"seed": 52, "num_users": 90, "num_events": 10, "num_intervals": 7, "num_competing": 12},
    # k > |T| forces HOR/HOR-I into multiple rounds (the update phases).
    {"seed": 53, "num_users": 40, "num_events": 18, "num_intervals": 3, "num_competing": 5},
]


@pytest.mark.parametrize("algorithm", COUNTER_ALGORITHMS)
@pytest.mark.parametrize("config", INSTANCE_CONFIGS, ids=lambda c: f"seed{c['seed']}")
def test_counters_identical_across_backends(algorithm, config):
    instance = make_random_instance(**config)
    k = min(instance.num_events, 2 * instance.num_intervals)  # multi-round for HOR
    snapshots = {}
    for backend in SCORING_BACKENDS:
        result = run_scheduler(algorithm, instance, k, execution=ExecutionConfig(backend=backend, workers=2))
        snapshots[backend] = result.counters
    for backend in SCORING_BACKENDS[1:]:
        assert snapshots["scalar"] == snapshots[backend], backend
    # The counters must actually have recorded work, or the comparison is vacuous.
    assert snapshots["batch"]["score_computations"] > 0
    assert snapshots["batch"]["user_computations"] == (
        snapshots["batch"]["score_computations"] * instance.num_users
    )
    assert snapshots["batch"]["assignments_generated"] > 0


@pytest.mark.parametrize("backend", SCORING_BACKENDS)
def test_bulk_counting_matches_per_pair_counting(backend):
    """count_scores(n) must equal n count_score() calls, byte for byte."""
    instance = make_random_instance(seed=54, num_users=20, num_events=8, num_intervals=3)
    bulk = ComputationCounter(num_users=instance.num_users)
    per_pair = ComputationCounter(num_users=instance.num_users)

    engine = ScoringEngine(instance, counter=bulk, execution=ExecutionConfig(backend=backend))
    engine.interval_scores(0, initial=True)
    engine.interval_scores(1, initial=False)

    for _ in range(instance.num_events):
        per_pair.count_score(initial=True)
    for _ in range(instance.num_events):
        per_pair.count_score(initial=False)

    assert bulk.snapshot() == per_pair.snapshot()


def test_initial_vs_update_split_is_backend_invariant():
    instance = make_random_instance(seed=55, num_users=25, num_events=12, num_intervals=4)
    splits = {}
    for backend in SCORING_BACKENDS:
        result = run_scheduler("INC", instance, 6, execution=ExecutionConfig(backend=backend, workers=2))
        splits[backend] = (
            result.counters["initial_computations"],
            result.counters["update_computations"],
        )
    for backend in SCORING_BACKENDS[1:]:
        assert splits["scalar"] == splits[backend], backend
    initial, _ = splits["batch"]
    assert initial == instance.num_events * instance.num_intervals
