"""Tests of ``repro.analysis.staticcheck`` — the project-invariant linter.

Every rule is exercised through paired good/bad fixture snippets under
``tests/fixtures/staticcheck/<rule-id>/``: each fixture's first line is a
``# lintpath: <relative path>`` header naming where the snippet virtually
lives, so the path-scoped rules see realistic project layouts without the
fixtures polluting the real tree.  The meta-test at the bottom holds the
repository itself to its own standard: ``repro lint src tools benchmarks``
must be clean, with at most 10 justified waivers.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.staticcheck import (
    Finding,
    LINT_SCHEMA_VERSION,
    LintError,
    Rule,
    SYNTAX_ERROR_RULE,
    available_rules,
    collect_waivers,
    format_report,
    format_rule_table,
    register_rule,
    rule_catalog,
    run_lint,
)
from repro.analysis.staticcheck import registry as staticcheck_registry
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures" / "staticcheck"

EXPECTED_RULES = (
    "no-nondeterminism",
    "imports-policy",
    "broad-except",
    "lock-discipline",
    "no-deprecated-shims",
    "counter-discipline",
    "no-mutable-default",
    "docstring-backend-sync",
    "docstring-storage-sync",
    "docstring-plan-sync",
    "waiver-discipline",
)


def _lintpath(fixture: Path) -> str:
    header = fixture.read_text(encoding="utf-8").splitlines()[0]
    assert header.startswith("# lintpath: "), f"{fixture} lacks a lintpath header"
    return header.removeprefix("# lintpath: ").strip()


def materialise(tmp_path: Path, fixture: Path, lintpath: str | None = None) -> Path:
    """Copy a fixture into a synthetic project tree at its declared lintpath."""
    target = tmp_path / (lintpath or _lintpath(fixture))
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(fixture.read_text(encoding="utf-8"), encoding="utf-8")
    return target


def lint_fixture(tmp_path: Path, fixture: Path, lintpath: str | None = None):
    materialise(tmp_path, fixture, lintpath)
    return run_lint([tmp_path], root=tmp_path)


def _fixture_cases(kind: str):
    cases = []
    for rule_dir in sorted(FIXTURES.iterdir()):
        for fixture in sorted(rule_dir.glob(f"{kind}*.py")):
            cases.append(pytest.param(rule_dir.name, fixture, id=f"{rule_dir.name}-{fixture.stem}"))
    return cases


class TestFixtures:
    """Each rule fires on its bad snippets and stays quiet on the good ones."""

    @pytest.mark.parametrize("rule_id, fixture", _fixture_cases("bad"))
    def test_bad_fixture_is_flagged_with_the_right_rule(
        self, tmp_path, rule_id, fixture
    ):
        report = lint_fixture(tmp_path, fixture)
        fired = {finding.rule for finding in report.findings}
        assert fired == {rule_id}, (
            f"{fixture} expected only {rule_id!r} findings, got: "
            + "\n".join(finding.format() for finding in report.findings)
        )

    @pytest.mark.parametrize("rule_id, fixture", _fixture_cases("good"))
    def test_good_fixture_is_clean(self, tmp_path, rule_id, fixture):
        report = lint_fixture(tmp_path, fixture)
        assert report.clean, (
            f"{fixture} expected clean, got: "
            + "\n".join(finding.format() for finding in report.findings)
        )

    def test_every_registered_rule_has_fixture_coverage(self):
        covered = {path.name for path in FIXTURES.iterdir() if path.is_dir()}
        missing = set(EXPECTED_RULES) - covered
        assert not missing, f"rules without fixtures: {sorted(missing)}"

    def test_bad_fixture_counts(self, tmp_path):
        """Spot-check multiplicity: the shim fixture has exactly 4 call sites."""
        report = lint_fixture(tmp_path, FIXTURES / "no-deprecated-shims" / "bad.py")
        assert len(report.findings) == 4

    def test_out_of_scope_placement_is_ignored(self, tmp_path):
        """The same hazard outside the rule's path scope is not flagged."""
        fixture = FIXTURES / "no-nondeterminism" / "bad.py"
        report = lint_fixture(tmp_path, fixture, lintpath="tools/fixture_bad.py")
        assert "no-nondeterminism" not in {f.rule for f in report.findings}

    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        report = lint_fixture(tmp_path, FIXTURES / "syntax-error" / "bad.py")
        assert {f.rule for f in report.findings} == {SYNTAX_ERROR_RULE}

    def test_non_utf8_file_is_reported_not_raised(self, tmp_path):
        (tmp_path / "latin1.py").write_bytes(b"# caf\xe9\nx = 1\n")
        report = run_lint([tmp_path], root=tmp_path)
        (finding,) = report.findings
        assert finding.rule == SYNTAX_ERROR_RULE
        assert "not valid UTF-8" in finding.message


class TestWaivers:
    def test_waiver_requires_tokenized_comment_not_string(self):
        source = 'MESSAGE = "# staticcheck: allow(broad-except) -- in a string"\n'
        assert collect_waivers(source) == []

    def test_waiver_parses_rules_and_justification(self):
        source = "x = 1  # staticcheck: allow(broad-except, no-mutable-default) -- because tested\n"
        (waiver,) = collect_waivers(source)
        assert waiver.line == 1
        assert set(waiver.rules) == {"broad-except", "no-mutable-default"}
        assert waiver.justification == "because tested"

    def test_waiver_suppresses_only_its_line_and_rule(self, tmp_path):
        target = tmp_path / "tools" / "module.py"
        target.parent.mkdir(parents=True)
        target.write_text(
            "try:\n"
            "    pass\n"
            "except Exception:  # staticcheck: allow(broad-except) -- covered elsewhere\n"
            "    pass\n"
            "try:\n"
            "    pass\n"
            "except Exception:\n"
            "    pass\n",
            encoding="utf-8",
        )
        report = run_lint([tmp_path], root=tmp_path)
        assert [f.rule for f in report.findings] == ["broad-except"]
        assert report.findings[0].line == 7
        assert report.waived_findings == 1
        assert report.waivers == 1


class TestRegistry:
    def test_expected_rules_are_registered_in_order(self):
        assert tuple(available_rules()) == EXPECTED_RULES

    def test_duplicate_registration_raises(self):
        class Duplicate(Rule):
            id = "broad-except"

        with pytest.raises(LintError, match="already registered"):
            register_rule(Duplicate)

    def test_custom_rule_registers_and_runs(self, tmp_path):
        class NoTodoRule(Rule):
            id = "fixture-no-todo"
            summary = "fixture rule: no TODO names"

            def check(self, context):
                import ast

                for node in ast.walk(context.tree):
                    if isinstance(node, ast.Name) and node.id == "TODO":
                        yield self.finding(context, node, "TODO found")

        register_rule(NoTodoRule)
        try:
            target = tmp_path / "module.py"
            target.write_text("TODO = 1\n", encoding="utf-8")
            report = run_lint([tmp_path], root=tmp_path, rule_ids=["fixture-no-todo"])
            assert [f.rule for f in report.findings] == ["fixture-no-todo"]
        finally:
            staticcheck_registry._RULE_REGISTRY.pop("fixture-no-todo")

    def test_unknown_rule_id_raises_with_the_catalogue(self, tmp_path):
        with pytest.raises(LintError, match="unknown lint rule"):
            run_lint([tmp_path], root=tmp_path, rule_ids=["nope"])

    def test_catalog_rows_have_the_documented_shape(self):
        rows = rule_catalog()
        assert [row["rule"] for row in rows] == list(EXPECTED_RULES)
        for row in rows:
            assert set(row) == {"rule", "scope", "severity", "summary"}
            assert row["summary"], f"rule {row['rule']} lacks a summary"
        assert "lint rule" not in format_rule_table(rows)  # renders without error


class TestReportSchema:
    """The ``--json`` schema is stable: future PRs trend it in BENCH_*.json."""

    def test_schema_keys_and_zero_filled_rules(self, tmp_path):
        (tmp_path / "empty.py").write_text("x = 1\n", encoding="utf-8")
        payload = run_lint([tmp_path], root=tmp_path).to_json()
        assert set(payload) == {
            "schema_version",
            "clean",
            "files_scanned",
            "waivers",
            "waived_findings",
            "rules",
            "findings",
        }
        assert payload["schema_version"] == LINT_SCHEMA_VERSION
        assert payload["clean"] is True
        assert payload["files_scanned"] == 1
        assert set(payload["rules"]) == set(EXPECTED_RULES) | {SYNTAX_ERROR_RULE}
        assert all(count == 0 for count in payload["rules"].values())

    def test_findings_serialise_with_stable_keys(self, tmp_path):
        report = lint_fixture(tmp_path, FIXTURES / "broad-except" / "bad.py")
        payload = report.to_json()
        assert payload["clean"] is False
        for finding in payload["findings"]:
            assert set(finding) == {"path", "line", "rule", "message", "severity"}
        assert payload["rules"]["broad-except"] == len(payload["findings"])

    def test_findings_sort_deterministically(self):
        findings = [
            Finding(path="b.py", line=1, rule="z", message="m"),
            Finding(path="a.py", line=9, rule="a", message="m"),
            Finding(path="a.py", line=2, rule="b", message="m"),
        ]
        assert [f.path for f in sorted(findings)] == ["a.py", "a.py", "b.py"]
        assert sorted(findings)[0].line == 2

    def test_missing_path_is_an_error_not_a_clean_run(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            run_lint([tmp_path / "no-such-dir"], root=tmp_path)

    def test_unmarked_tree_roots_at_cwd_not_the_scanned_dir(
        self, tmp_path, monkeypatch
    ):
        """Without a setup.py/.git marker, ``repro lint src`` from the tree's
        top still scopes rules against ``src/...`` rel-paths — rooting at the
        scanned directory itself would strip the prefix and silence every
        path-scoped rule."""
        materialise(tmp_path, FIXTURES / "no-nondeterminism" / "bad.py")
        monkeypatch.chdir(tmp_path)
        report = run_lint([Path("src")])
        assert "no-nondeterminism" in {f.rule for f in report.findings}


class TestCli:
    def _tree_with(self, tmp_path, fixture):
        (tmp_path / "setup.py").write_text("", encoding="utf-8")
        materialise(tmp_path, fixture)
        return tmp_path

    def test_lint_exits_nonzero_with_the_rule_in_json(self, tmp_path, capsys, monkeypatch):
        tree = self._tree_with(tmp_path, FIXTURES / "counter-discipline" / "bad.py")
        monkeypatch.chdir(tree)
        exit_code = main(["lint", "src", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert exit_code == 1
        assert payload["rules"]["counter-discipline"] > 0
        assert payload["findings"][0]["rule"] == "counter-discipline"

    def test_lint_text_output_names_path_line_rule(self, tmp_path, capsys, monkeypatch):
        tree = self._tree_with(tmp_path, FIXTURES / "no-mutable-default" / "bad.py")
        monkeypatch.chdir(tree)
        exit_code = main(["lint", "benchmarks"])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "benchmarks/fixture_bad.py:" in out
        assert "[no-mutable-default]" in out
        assert "repro lint:" in out.splitlines()[-1]

    def test_lint_clean_tree_exits_zero(self, tmp_path, capsys, monkeypatch):
        tree = self._tree_with(tmp_path, FIXTURES / "no-mutable-default" / "good.py")
        monkeypatch.chdir(tree)
        assert main(["lint", "benchmarks"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULES:
            assert rule_id in out

    def test_lint_rules_filter_and_unknown_rule(self, tmp_path, capsys, monkeypatch):
        tree = self._tree_with(tmp_path, FIXTURES / "broad-except" / "bad.py")
        monkeypatch.chdir(tree)
        assert main(["lint", "tools", "--rules", "no-mutable-default"]) == 0
        capsys.readouterr()
        assert main(["lint", "tools", "--rules", "no-such-rule"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err


class TestRepoIsClean:
    """The meta-test: the repository passes its own static analysis."""

    def test_repo_lints_clean(self):
        report = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "tools", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
        )
        assert report.clean, "repo lint regressed:\n" + format_report(report)
        assert report.files_scanned > 50

    def test_repo_waiver_budget(self):
        """Waivers are an escape hatch, not a lifestyle: at most 10, all justified."""
        report = run_lint(
            [REPO_ROOT / "src", REPO_ROOT / "tools", REPO_ROOT / "benchmarks"],
            root=REPO_ROOT,
        )
        assert report.waivers <= 10, f"{report.waivers} waivers exceed the budget of 10"

    def test_repo_lint_via_cli_default_paths(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out
