"""Protocol v2 of the cluster backend: batched, pipelined dispatch.

PR 6 grew the wire protocol from one round-trip per score-matrix column to
batched, pipelined batches (:data:`OP_SCORE_COLUMNS`), with reconnection
backoff and mid-run re-discovery on the client.  These tests pin down the v2
behaviours the v1-era suite (``test_cluster_backend.py``) could not express:

* the **batch sizing rule** (:func:`derive_task_batch`) and the
  ``task_batch`` knob's resolution / CLI plumbing;
* **version-mismatch rejection**: a v1-speaking peer fails the handshake with
  a clear :class:`SolverError` — never a hang, never a wrong result;
* **batched equivalence**: schedules, utilities, scores and counters are
  bit-identical to the serial batch path for every batch size, including the
  ``task_batch=1`` shape that reproduces v1's per-column dispatch unit;
* **elasticity**: a worker started mid-run on a configured address joins an
  in-flight ``score_matrix`` call via re-discovery; an explicit ``workers=N``
  caps dispatch *lanes* but never slices the candidate worker set;
* the **failure model**: in-flight batches of a dead worker re-split across
  the survivors, a fatal worker-side error aborts the remaining lanes
  promptly, and :meth:`WorkerHandle.kill` is a real SIGKILL.

The deterministic failure/elasticity scenarios host :class:`WorkerServer`
subclasses on in-process threads (slow, broken or mortal on cue); the
equivalence tests use real spawned worker processes, honouring the
``REPRO_TEST_BACKEND`` / ``REPRO_TEST_WORKERS`` CI knobs like the process
backend's suite.
"""

from __future__ import annotations

import collections
import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.algorithms.registry import run_scheduler
from repro.cli import main
from repro.core.distributed import ClusterWorkerWarning, start_local_worker
from repro.core.distributed.client import ClusterBackend, _CallState, _WorkerLink
from repro.core.distributed.protocol import (
    MAX_TASK_BATCH,
    OP_SCORE_COLUMN,
    OP_SCORE_COLUMNS,
    PIPELINE_DEPTH,
    STATUS_ERROR,
    STATUS_OK,
    TASK_OVERSUBSCRIBE,
    derive_task_batch,
)
from repro.core.distributed.worker import WorkerServer
from repro.core.errors import SolverError
from repro.core.execution import ExecutionConfig, resolve_task_batch
from repro.core.scoring import ScoringEngine
from repro.experiments.metrics import MetricRecord

from tests.conftest import make_random_instance

#: Backend under test — the CI cluster leg pins it, mirroring the process leg.
BACKEND = os.environ.get("REPRO_TEST_BACKEND", "cluster")

#: Spawned worker count of the equivalence runs (at least 2: real fan-out).
WORKERS = max(2, int(os.environ.get("REPRO_TEST_WORKERS", "0") or 2))

TOLERANCE = 1e-12


@pytest.fixture(scope="module")
def worker_pool():
    """Long-lived localhost worker processes shared by the equivalence tests."""
    handles = [start_local_worker() for _ in range(WORKERS)]
    yield handles
    for handle in handles:
        handle.stop()


def _config(worker_handles, **overrides) -> ExecutionConfig:
    defaults = {
        "backend": BACKEND,
        "workers_addr": tuple(handle.address for handle in worker_handles),
    }
    defaults.update(overrides)
    return ExecutionConfig(**defaults)


# --------------------------------------------------------------------------- #
# In-thread worker servers with scripted behaviour (deterministic scenarios)
# --------------------------------------------------------------------------- #
class _ThreadWorker(WorkerServer):
    """A :class:`WorkerServer` hosted on an in-process thread.

    ``delay`` sleeps before every score request (a slow machine);
    ``die_after`` drops the connection mid-run after that many served score
    batches (a crash — once; reconnections serve normally);
    ``break_scores`` answers every batch with a non-healable error payload.
    """

    def __init__(self, *, delay: float = 0.0, die_after=None, break_scores=False,
                 port: int = 0) -> None:
        super().__init__(port=port)
        self.delay = delay
        self.die_after = die_after
        self.break_scores = break_scores
        self.served_batches = 0
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()

    def _dispatch(self, request, selection):
        if isinstance(request, tuple) and request and request[0] in (
            OP_SCORE_COLUMN,
            OP_SCORE_COLUMNS,
        ):
            if self.break_scores:
                return (STATUS_ERROR, "injected-failure"), False
            if self.delay:
                time.sleep(self.delay)
            self.served_batches += 1
            if self.die_after is not None and self.served_batches > self.die_after:
                self.die_after = None  # die once; reconnections serve normally
                raise SystemExit  # escapes the per-request handler: drops the link
        return super()._dispatch(request, selection)

    def _serve_connection(self, connection):
        try:
            super()._serve_connection(connection)
        except SystemExit:
            pass  # scripted death — the base class already closed the link

    def shutdown(self) -> None:
        self.stop()
        self._thread.join(timeout=5.0)


def _reserved_port() -> int:
    """A localhost port that is currently free (bind-and-release)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _batch_matrix(instance, **kwargs) -> np.ndarray:
    engine = ScoringEngine(
        instance, execution=ExecutionConfig(backend="batch", **kwargs)
    )
    return engine.score_matrix(count=False)


# --------------------------------------------------------------------------- #
# Batch sizing: derivation, config resolution, CLI plumbing
# --------------------------------------------------------------------------- #
class TestBatchSizing:
    def test_auto_derivation_spreads_over_lanes(self):
        # ceil(n / (lanes * TASK_OVERSUBSCRIBE)), clamped to [1, MAX_TASK_BATCH].
        assert derive_task_batch(100, 2) == -(-100 // (2 * TASK_OVERSUBSCRIBE))
        assert derive_task_batch(8, 2) == 1
        assert derive_task_batch(1, 1) == 1
        assert derive_task_batch(10_000, 1) == MAX_TASK_BATCH
        # One batch never exceeds MAX_TASK_BATCH columns on the wire.
        for intervals in (1, 5, 63, 64, 65, 257, 4096):
            for lanes in (1, 2, 3, 8):
                assert 1 <= derive_task_batch(intervals, lanes) <= MAX_TASK_BATCH

    def test_explicit_override_clamps_to_intervals_only(self):
        assert derive_task_batch(100, 2, task_batch=7) == 7
        # The explicit knob may exceed MAX_TASK_BATCH …
        assert derive_task_batch(500, 2, task_batch=200) == 200
        # … but never the interval count, and never drops below 1.
        assert derive_task_batch(5, 2, task_batch=200) == 5
        assert derive_task_batch(5, 2, task_batch=1) == 1

    def test_resolve_task_batch_validation(self):
        assert resolve_task_batch(None) is None
        assert resolve_task_batch(4, "cluster") == 4
        # The knob does not apply to in-process backends.
        assert resolve_task_batch(4, "batch") is None
        assert resolve_task_batch(4, "process") is None
        for bad in (0, -1, 2.5, "8", True):
            with pytest.raises(SolverError):
                resolve_task_batch(bad, "cluster")

    def test_config_resolution_keeps_auto_as_none(self):
        resolved = ExecutionConfig(
            backend="cluster", workers_addr=("h:1",), task_batch=6
        ).resolve(10)
        assert resolved.task_batch == 6
        assert resolved.resolve(10) == resolved  # idempotent, like every knob
        auto = ExecutionConfig(backend="cluster", workers_addr=("h:1",)).resolve(10)
        assert auto.task_batch is None  # derived per call from the interval count

    def test_cli_flag_reaches_the_backend(self, worker_pool, capsys):
        addresses = ",".join(handle.address for handle in worker_pool)
        code = main(
            [
                "solve", "--dataset", "Unf", "-k", "3",
                "--users", "15", "--events", "8", "--intervals", "4",
                "--algorithms", "ALG",
                "--cluster", addresses, "--task-batch", "2",
            ]
        )
        assert code == 0
        assert "ALG" in capsys.readouterr().out

    def test_cli_rejects_bad_task_batch(self, capsys):
        code = main(
            [
                "solve", "--dataset", "Unf", "-k", "2",
                "--users", "10", "--events", "5", "--intervals", "2",
                "--algorithms", "TOP",
                "--backend", "cluster", "--task-batch", "0",
            ]
        )
        assert code == 2
        assert "task_batch" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# Version-mismatch rejection
# --------------------------------------------------------------------------- #
class TestVersionMismatch:
    def test_v1_peer_is_rejected_with_a_clear_error(self):
        """A v1-speaking peer fails the handshake loudly — no hang, no demotion."""
        from multiprocessing.connection import Listener

        from repro.core.distributed.protocol import authkey_bytes

        listener = Listener(("127.0.0.1", 0), authkey=authkey_bytes(None))
        host, port = listener.address

        def serve_v1():
            try:
                connection = listener.accept()
            except (OSError, EOFError):
                return
            try:
                connection.recv()  # the client's OP_PING
                connection.send((STATUS_OK, {"version": 1, "pid": 0}))
                connection.recv()  # wait for the client to hang up
            except (OSError, EOFError):
                pass
            finally:
                connection.close()

        peer = threading.Thread(target=serve_v1, daemon=True)
        peer.start()
        instance = make_random_instance(seed=601, num_users=10, num_events=6, num_intervals=3)
        engine = ScoringEngine(
            instance,
            execution=ExecutionConfig(
                backend="cluster", workers_addr=(f"{host}:{port}",)
            ),
        )
        try:
            with pytest.raises(SolverError, match="speaks protocol 1"):
                engine.score_matrix(count=False)
        finally:
            engine.close()
            listener.close()
            peer.join(timeout=5.0)


# --------------------------------------------------------------------------- #
# Batched equivalence (bit-identity across batch sizes)
# --------------------------------------------------------------------------- #
class TestBatchedEquivalence:
    @pytest.mark.parametrize("task_batch", [None, 1, 3, 64])
    def test_score_matrix_bit_identical_for_every_batch_size(
        self, worker_pool, task_batch
    ):
        instance = make_random_instance(
            seed=602, num_users=30, num_events=20, num_intervals=17, num_competing=4
        )
        cluster = ScoringEngine(
            instance, execution=_config(worker_pool, chunk_size=4, task_batch=task_batch)
        )
        try:
            assert np.array_equal(
                cluster.score_matrix(count=False),
                _batch_matrix(instance, chunk_size=4),
            )
            subset = [1, 4, 7, 9, 13, 19, 0, 5]
            assert np.array_equal(
                cluster.score_matrix(subset, count=False),
                ScoringEngine(
                    instance, execution=ExecutionConfig(backend="batch", chunk_size=4)
                ).score_matrix(subset, count=False),
            )
            stats = cluster.execution_backend.stats()
            expected = derive_task_batch(
                instance.num_intervals, cluster.workers, task_batch
            )
            assert stats["task_batch"] == expected
            # Remote batches respect the wire batch size.
            assert all(
                worker["tasks"] <= worker["batches"] * expected
                for worker in stats["workers"].values()
            )
        finally:
            cluster.close()

    @pytest.mark.parametrize("algorithm", ["ALG", "INC", "HOR", "TOP"])
    def test_schedules_and_counters_identical_to_batch(self, worker_pool, algorithm):
        instance = make_random_instance(
            seed=603, num_users=25, num_events=16, num_intervals=9, num_competing=3
        )
        k = min(instance.num_events, 2 * instance.num_intervals)
        batch = run_scheduler(
            algorithm, instance, k, execution=ExecutionConfig(backend="batch", chunk_size=3)
        )
        for task_batch in (None, 1, 4):
            remote = run_scheduler(
                algorithm, instance, k,
                execution=_config(worker_pool, chunk_size=3, task_batch=task_batch),
            )
            assert remote.schedule.as_dict() == batch.schedule.as_dict()
            assert remote.utility == batch.utility  # bit-identical, not just close
            assert remote.counters == batch.counters

    def test_task_batch_recorded_in_summary_and_record(self, worker_pool):
        instance = make_random_instance(seed=604, num_users=15, num_events=8, num_intervals=5)
        result = run_scheduler(
            "ALG", instance, 3, execution=_config(worker_pool, task_batch=2)
        )
        assert result.task_batch == 2
        assert result.summary()["task_batch"] == 2
        summary_cluster = result.summary()["cluster"]
        assert summary_cluster["tasks"] + summary_cluster["local_columns"] > 0
        assert summary_cluster["round_trips"] > 0
        assert summary_cluster["bytes_sent"] > 0
        record = MetricRecord.from_result(result, experiment_id="x", dataset="d")
        assert record.params["task_batch"] == 2


# --------------------------------------------------------------------------- #
# Elasticity: mid-run join, lanes-cap semantics
# --------------------------------------------------------------------------- #
class TestElasticity:
    def test_worker_started_mid_run_joins_via_rediscovery(self):
        """A worker that comes up on a configured address mid-call gets work."""
        slow = _ThreadWorker(delay=0.02)
        late_port = _reserved_port()
        late_address = f"127.0.0.1:{late_port}"
        joined = {}

        def start_late_worker():
            time.sleep(0.1)  # after the first connect round has failed
            joined["worker"] = _ThreadWorker(port=late_port)

        starter = threading.Thread(target=start_late_worker, daemon=True)
        instance = make_random_instance(
            seed=605, num_users=10, num_events=8, num_intervals=40
        )
        engine = ScoringEngine(
            instance,
            execution=ExecutionConfig(
                backend="cluster",
                chunk_size=4,
                workers_addr=(slow.address, late_address),
                task_batch=1,
            ),
        )
        try:
            # Warm-up: establish the slow link first, so the main call's
            # ship-overlap local compute ends immediately and the batches
            # genuinely flow over the wire (the run needs wall-clock runway
            # for the late worker to join mid-call).
            with pytest.warns(ClusterWorkerWarning, match="unreachable"):
                engine.score_matrix(count=False)
            starter.start()
            with pytest.warns(ClusterWorkerWarning, match="unreachable"):
                matrix = engine.score_matrix(count=False)
            assert np.array_equal(matrix, _batch_matrix(instance, chunk_size=4))
            stats = engine.execution_backend.stats()
            assert stats["workers"][late_address]["tasks"] > 0, (
                "the late worker never joined the in-flight call"
            )
        finally:
            engine.close()
            starter.join(timeout=5.0)
            slow.shutdown()
            if "worker" in joined:
                joined["worker"].shutdown()

    def test_explicit_workers_caps_lanes_not_the_candidate_set(self):
        """workers=2 with 3 addresses: the third address is a live candidate.

        Regression: v1 sliced ``workers_addr[:workers]``, so when one of the
        two dispatching links died, the third configured worker never received
        its share.  v2 caps concurrent *lanes* at ``workers`` while keeping
        every address a candidate.
        """
        real = start_local_worker()
        slow_b = _ThreadWorker(delay=0.02)
        spare_c = _ThreadWorker()
        instance = make_random_instance(
            seed=606, num_users=10, num_events=8, num_intervals=40
        )
        engine = ScoringEngine(
            instance,
            execution=ExecutionConfig(
                backend="cluster",
                chunk_size=4,
                workers=2,
                workers_addr=(real.address, slow_b.address, spare_c.address),
                task_batch=1,
            ),
        )
        try:
            reference = _batch_matrix(instance, chunk_size=4)
            assert np.array_equal(engine.score_matrix(count=False), reference)
            links = engine.execution_backend._links
            # Two lanes: only the first two addresses hold links so far.
            assert {link.address for link in links if link.alive} == {
                real.address,
                slow_b.address,
            }
            real.kill()
            with pytest.warns(ClusterWorkerWarning):
                assert np.array_equal(engine.score_matrix(count=False), reference)
            stats = engine.execution_backend.stats()
            assert stats["workers"].get(spare_c.address, {}).get("tasks", 0) > 0, (
                "the spare third worker never picked up the dead worker's share"
            )
            links = engine.execution_backend._links
            assert {link.address for link in links if link.alive} == {
                slow_b.address,
                spare_c.address,
            }
        finally:
            engine.close()
            real.kill()
            slow_b.shutdown()
            spare_c.shutdown()


# --------------------------------------------------------------------------- #
# Failure model: re-split, abort flag, SIGKILL
# --------------------------------------------------------------------------- #
class TestFailureModel:
    def test_inflight_batches_resplit_across_survivors(self):
        """_discard_link splits a dead link's window instead of re-queueing whole."""
        config = ExecutionConfig(
            backend="cluster", workers_addr=("a:1", "b:2", "c:3")
        ).resolve(10)
        backend = ClusterBackend(config)

        class _DeadConnection:
            def close(self):
                pass

        dead = _WorkerLink("a:1", _DeadConnection())
        survivors = [_WorkerLink("b:2", _DeadConnection()), _WorkerLink("c:3", _DeadConnection())]
        backend._links = [dead] + survivors
        state = _CallState({}, None, collections.deque(), 0, None, [])
        inflight = collections.deque([[0, 1, 2, 3, 4, 5]])
        with pytest.warns(ClusterWorkerWarning, match="re-dispatching"):
            backend._discard_link(state, dead, inflight, OSError("connection reset"))
        assert dead not in backend._links
        # ceil(6 / 2 survivors) = 3 columns per re-queued share.
        assert sorted(tuple(batch) for batch in state.pending) == [(0, 1, 2), (3, 4, 5)]

    def test_worker_death_mid_call_redispatches_and_stays_bit_identical(self):
        # die_after=1: the lane pipelines two batches up front, so the worker
        # always answers the first and drops the link on the second —
        # deterministic death with a batch in flight.  The survivor is slowed
        # too: with a zero-delay survivor the pending pool can drain before
        # the mortal lane finishes its connect handshake, leaving the mortal
        # worker a single batch and nothing in flight to die on.
        mortal = _ThreadWorker(delay=0.005, die_after=1)
        survivor = _ThreadWorker(delay=0.005)
        instance = make_random_instance(
            seed=607, num_users=12, num_events=10, num_intervals=30
        )
        engine = ScoringEngine(
            instance,
            execution=ExecutionConfig(
                backend="cluster",
                chunk_size=4,
                workers_addr=(mortal.address, survivor.address),
                task_batch=2,
            ),
        )
        try:
            with pytest.warns(ClusterWorkerWarning, match="re-dispatching"):
                matrix = engine.score_matrix(count=False)
            assert np.array_equal(matrix, _batch_matrix(instance, chunk_size=4))
        finally:
            engine.close()
            mortal.shutdown()
            survivor.shutdown()

    def test_fatal_error_aborts_remaining_lanes_promptly(self):
        """One lane's fatal error stops the others before they drain the pool."""
        broken = _ThreadWorker(break_scores=True)
        slow = _ThreadWorker(delay=0.05)
        instance = make_random_instance(
            seed=608, num_users=10, num_events=8, num_intervals=40
        )
        engine = ScoringEngine(
            instance,
            execution=ExecutionConfig(
                backend="cluster",
                chunk_size=4,
                workers_addr=(broken.address, slow.address),
                task_batch=1,
            ),
        )
        try:
            with pytest.raises(SolverError, match="injected-failure"):
                engine.score_matrix(count=False)
            stats = engine.execution_backend.stats()
            # The broken worker produced nothing; the slow lane stopped after
            # at most its in-flight window instead of draining all 40 columns.
            assert stats["workers"].get(broken.address, {}).get("tasks", 0) == 0
            slow_tasks = stats["workers"].get(slow.address, {}).get("tasks", 0)
            assert slow_tasks <= 2 * PIPELINE_DEPTH + 1
        finally:
            engine.close()
            broken.shutdown()
            slow.shutdown()

    def test_kill_is_a_real_sigkill(self):
        """kill() must SIGKILL: abrupt death, no Python-level cleanup."""
        handle = start_local_worker()
        assert handle.process.is_alive()
        handle.kill()
        assert not handle.process.is_alive()
        assert handle.process.exitcode == -signal.SIGKILL
