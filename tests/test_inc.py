"""Tests for the Incremental Updating algorithm INC (repro.algorithms.inc)."""

import pytest

from repro.algorithms.alg import AlgScheduler
from repro.algorithms.inc import IncScheduler
from repro.core.constraints import is_schedule_feasible
from tests.conftest import make_random_instance


class TestRunningExample:
    def test_same_schedule_as_alg(self, running_example):
        inc = IncScheduler(running_example).schedule(3)
        alg = AlgScheduler(running_example).schedule(3)
        assert inc.schedule == alg.schedule
        assert inc.utility == pytest.approx(alg.utility, rel=1e-12)

    def test_fewer_updates_than_alg(self, running_example):
        """Example 3: the incremental scheme performs 1 update where ALG performs 4."""
        inc = IncScheduler(running_example).schedule(3)
        alg = AlgScheduler(running_example).schedule(3)
        assert inc.counters["update_computations"] < alg.counters["update_computations"]
        # Both compute the same 8 initial scores.
        assert inc.counters["initial_computations"] == alg.counters["initial_computations"] == 8


class TestEquivalenceWithAlg:
    """Proposition 3: INC and ALG always return the same solution."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 3, 7, 12])
    def test_same_solution_random_instances(self, seed, k):
        instance = make_random_instance(seed=seed)
        alg = AlgScheduler(instance).schedule(k)
        inc = IncScheduler(instance).schedule(k)
        assert inc.schedule == alg.schedule
        assert inc.utility == pytest.approx(alg.utility, rel=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_same_solution_with_tight_constraints(self, seed):
        instance = make_random_instance(
            seed=seed, num_locations=2, available_resources=6.0, resource_high=4.0
        )
        alg = AlgScheduler(instance).schedule(8)
        inc = IncScheduler(instance).schedule(8)
        assert inc.schedule == alg.schedule

    def test_same_solution_with_ties(self):
        """Constant interest values make every score tie; outputs must still agree."""
        instance = make_random_instance(seed=0, interest_scale=0.0)
        alg = AlgScheduler(instance).schedule(6)
        inc = IncScheduler(instance).schedule(6)
        assert inc.schedule == alg.schedule


class TestEfficiency:
    def test_never_more_score_computations_than_alg(self):
        for seed in range(5):
            instance = make_random_instance(seed=seed, num_events=20, num_intervals=6)
            alg = AlgScheduler(instance).schedule(10)
            inc = IncScheduler(instance).schedule(10)
            assert inc.score_computations <= alg.score_computations

    def test_examines_fewer_assignments_than_alg(self, medium_instance):
        alg = AlgScheduler(medium_instance).schedule(10)
        inc = IncScheduler(medium_instance).schedule(10)
        assert inc.assignments_examined < alg.assignments_examined

    def test_feasible_output(self, medium_instance):
        result = IncScheduler(medium_instance).schedule(12)
        assert is_schedule_feasible(medium_instance, result.schedule)

    def test_counts_selections(self, medium_instance):
        result = IncScheduler(medium_instance).schedule(5)
        assert result.counters["selections"] == result.num_scheduled == 5

    def test_skewed_scores_prune_more_than_uniform(self):
        """Bound pruning saves more updates when scores are spread out (Zipf-like)."""
        uniform = make_random_instance(seed=6, num_events=24, num_intervals=6)
        skewed = make_random_instance(seed=6, num_events=24, num_intervals=6, interest_scale=1.0)
        # Make the skewed instance's interest strongly concentrated on a few events.
        skewed.interest.values[:, 4:] *= 0.05
        alg_u = AlgScheduler(uniform).schedule(12)
        inc_u = IncScheduler(uniform).schedule(12)
        alg_s = AlgScheduler(skewed).schedule(12)
        inc_s = IncScheduler(skewed).schedule(12)
        savings_uniform = 1.0 - inc_u.score_computations / alg_u.score_computations
        savings_skewed = 1.0 - inc_s.score_computations / alg_s.score_computations
        assert savings_skewed >= savings_uniform
