"""Tests for Horizontal Assignment with Incremental Updating HOR-I (repro.algorithms.hor_i)."""

import pytest

from repro.algorithms.hor import HorScheduler
from repro.algorithms.hor_i import HorIScheduler
from repro.core.constraints import is_schedule_feasible
from tests.conftest import make_random_instance


class TestRunningExample:
    def test_same_schedule_as_hor(self, running_example):
        hor_i = HorIScheduler(running_example).schedule(3)
        hor = HorScheduler(running_example).schedule(3)
        assert hor_i.schedule == hor.schedule
        assert hor_i.utility == pytest.approx(hor.utility, rel=1e-12)

    def test_example5_fewer_updates_than_hor(self, running_example):
        """Example 5: HOR-I performs two of the three updates HOR performs."""
        hor_i = HorIScheduler(running_example).schedule(3)
        hor = HorScheduler(running_example).schedule(3)
        assert hor_i.counters["update_computations"] < hor.counters["update_computations"]
        assert hor.counters["update_computations"] == 3
        assert hor_i.counters["update_computations"] == 2


class TestEquivalenceWithHor:
    """Proposition 6: HOR-I and HOR always return the same solution."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 4, 9, 14])
    def test_same_solution_random_instances(self, seed, k):
        instance = make_random_instance(seed=seed, num_events=18, num_intervals=5)
        hor = HorScheduler(instance).schedule(k)
        hor_i = HorIScheduler(instance).schedule(k)
        assert hor_i.schedule == hor.schedule
        assert hor_i.utility == pytest.approx(hor.utility, rel=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_same_solution_with_tight_constraints(self, seed):
        instance = make_random_instance(
            seed=seed, num_locations=2, available_resources=6.0, resource_high=4.0
        )
        hor = HorScheduler(instance).schedule(9)
        hor_i = HorIScheduler(instance).schedule(9)
        assert hor_i.schedule == hor.schedule

    def test_same_solution_with_ties(self):
        instance = make_random_instance(seed=1, interest_scale=0.0)
        hor = HorScheduler(instance).schedule(7)
        hor_i = HorIScheduler(instance).schedule(7)
        assert hor_i.schedule == hor.schedule

    def test_identical_to_hor_when_single_round(self, medium_instance):
        """When k ≤ |T| only one round runs, so HOR-I degenerates to HOR exactly."""
        k = medium_instance.num_intervals - 1
        hor = HorScheduler(medium_instance).schedule(k)
        hor_i = HorIScheduler(medium_instance).schedule(k)
        assert hor_i.schedule == hor.schedule
        assert hor_i.score_computations == hor.score_computations
        assert hor_i.counters["update_computations"] == 0


class TestEfficiency:
    def test_never_more_score_computations_than_hor(self):
        for seed in range(5):
            instance = make_random_instance(seed=seed, num_events=24, num_intervals=5)
            hor = HorScheduler(instance).schedule(15)
            hor_i = HorIScheduler(instance).schedule(15)
            assert hor_i.score_computations <= hor.score_computations

    def test_feasible_output(self, medium_instance):
        result = HorIScheduler(medium_instance).schedule(14)
        assert is_schedule_feasible(medium_instance, result.schedule)

    def test_rounds_reported(self, medium_instance):
        result = HorIScheduler(medium_instance).schedule(medium_instance.num_intervals * 2)
        assert result.extras["rounds"] >= 2

    def test_worst_case_k_mod_T_equals_one(self):
        """Propositions 5/7: k mod |T| = 1 maximises the wasted end-of-run computations."""
        instance = make_random_instance(
            seed=25, num_events=24, num_intervals=5, num_locations=24, available_resources=1e9
        )
        worst = HorIScheduler(instance).schedule(6)    # 6 mod 5 == 1
        aligned = HorIScheduler(instance).schedule(5)  # exactly one round
        # The worst case needs a second full round of (incremental) updates for one selection.
        assert worst.score_computations > aligned.score_computations
