"""Unit tests for the problem entities (repro.core.entities)."""

import pytest

from repro.core.entities import CompetingEvent, Event, Organizer, TimeInterval, User


class TestEvent:
    def test_defaults(self):
        event = Event(id="e1", location="stage")
        assert event.required_resources == 0.0
        assert event.value == 1.0
        assert event.cost == 0.0
        assert event.tags == ()

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError, match="required_resources"):
            Event(id="e1", location="stage", required_resources=-1.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError, match="value"):
            Event(id="e1", location="stage", value=-0.5)

    def test_is_frozen(self):
        event = Event(id="e1", location="stage")
        with pytest.raises(AttributeError):
            event.location = "other"  # type: ignore[misc]

    def test_tags_preserved(self):
        event = Event(id="e1", location="stage", tags=("rock", "live"))
        assert event.tags == ("rock", "live")

    def test_equality_by_value(self):
        assert Event(id="e1", location="stage") == Event(id="e1", location="stage")
        assert Event(id="e1", location="stage") != Event(id="e1", location="hall")


class TestTimeInterval:
    def test_duration(self):
        interval = TimeInterval(id="t1", start=19.0, end=22.0)
        assert interval.duration == pytest.approx(3.0)

    def test_duration_unknown_when_missing_bounds(self):
        assert TimeInterval(id="t1").duration is None
        assert TimeInterval(id="t1", start=5.0).duration is None

    def test_end_before_start_rejected(self):
        with pytest.raises(ValueError, match="precedes"):
            TimeInterval(id="t1", start=10.0, end=9.0)

    def test_zero_length_interval_allowed(self):
        assert TimeInterval(id="t1", start=4.0, end=4.0).duration == 0.0


class TestCompetingEvent:
    def test_fields(self):
        comp = CompetingEvent(id="c1", interval_id="t2", tags=("rock",))
        assert comp.interval_id == "t2"
        assert comp.tags == ("rock",)


class TestUser:
    def test_default_weight(self):
        assert User(id="u1").weight == 1.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            User(id="u1", weight=-1.0)

    def test_zero_weight_allowed(self):
        assert User(id="u1", weight=0.0).weight == 0.0


class TestOrganizer:
    def test_default_is_unbounded(self):
        assert Organizer().available_resources == float("inf")

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError, match="available_resources"):
            Organizer(available_resources=-3.0)

    def test_named_organizer(self):
        organizer = Organizer(name="acme", available_resources=10.0)
        assert organizer.name == "acme"
        assert organizer.available_resources == 10.0
