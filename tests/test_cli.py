"""End-to-end tests of the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "ses-repro" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_knows_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("generate", "solve", "experiment", "list", "info"):
            assert command in text


class TestListCommand:
    def test_lists_components(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "Meetup" in output
        assert "HOR-I" in output
        assert "fig5" in output


class TestGenerateAndInfo:
    def test_generate_json_and_info(self, tmp_path, capsys):
        target = tmp_path / "unf.json"
        code = main(
            [
                "generate", "Unf", str(target),
                "--users", "20", "--events", "8", "--intervals", "4", "--seed", "3",
            ]
        )
        assert code == 0
        assert target.exists()
        output = capsys.readouterr().out
        assert "wrote Unf instance" in output

        assert main(["info", str(target)]) == 0
        info_output = capsys.readouterr().out
        assert "num_events" in info_output

    def test_generate_npz(self, tmp_path):
        target = tmp_path / "zip.npz"
        code = main(
            [
                "generate", "Zip", str(target),
                "--users", "15", "--events", "6", "--intervals", "3",
            ]
        )
        assert code == 0
        assert target.exists()

    def test_info_missing_file_reports_error(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "missing.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestSolveCommand:
    def test_solve_generated_dataset(self, capsys):
        code = main(
            [
                "solve", "--dataset", "Unf", "-k", "4",
                "--users", "25", "--events", "10", "--intervals", "4",
                "--algorithms", "ALG", "HOR", "RAND",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "ALG" in output and "HOR" in output and "RAND" in output

    def test_solve_saved_instance_with_schedule(self, tmp_path, capsys):
        target = tmp_path / "inst.json"
        main(["generate", "Unf", str(target), "--users", "15", "--events", "6", "--intervals", "3"])
        capsys.readouterr()
        code = main(
            [
                "solve", "--instance", str(target), "-k", "3",
                "--algorithms", "TOP", "--show-schedule",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "TOP:" in output
        assert "@t" in output

    def test_show_schedule_runs_each_scheduler_exactly_once(self, capsys, monkeypatch):
        """--show-schedule must print from the metrics run, not re-run everything.

        The regression: the CLI used to run every scheduler a second time just
        to get at the assignments, doubling wall-clock and recomputing the
        counters.
        """
        from repro.algorithms.base import BaseScheduler

        calls = []
        original = BaseScheduler.schedule

        def counting(self, k):
            calls.append(self.name)
            return original(self, k)

        monkeypatch.setattr(BaseScheduler, "schedule", counting)
        code = main(
            [
                "solve", "--dataset", "Unf", "-k", "3",
                "--users", "15", "--events", "8", "--intervals", "3",
                "--algorithms", "TOP", "ALG", "--show-schedule",
            ]
        )
        assert code == 0
        assert sorted(calls) == ["ALG", "TOP"], f"schedulers re-ran: {calls}"
        output = capsys.readouterr().out
        assert "TOP:" in output and "ALG:" in output


class TestSolveBackendFlags:
    def test_solve_with_scalar_backend_and_chunk(self, capsys):
        code = main(
            [
                "solve", "--dataset", "Unf", "-k", "3",
                "--users", "15", "--events", "8", "--intervals", "3",
                "--algorithms", "INC", "HOR-I",
                "--backend", "scalar", "--chunk-size", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "INC" in output and "HOR-I" in output

    def test_invalid_chunk_size_reports_error(self, capsys):
        code = main(
            [
                "solve", "--dataset", "Unf", "-k", "2",
                "--users", "10", "--events", "5", "--intervals", "2",
                "--algorithms", "TOP", "--chunk-size", "0",
            ]
        )
        assert code == 2
        assert "chunk_size" in capsys.readouterr().err


class TestExperimentCommand:
    def test_experiment_tables(self, capsys):
        code = main(["experiment", "fig10a", "--scale", "tiny"])
        assert code == 0
        output = capsys.readouterr().out
        assert "fig10a" in output
        assert "HOR-I" in output

    def test_experiment_backend_recorded_in_json(self, capsys):
        code = main(
            ["experiment", "fig9", "--scale", "tiny", "--json", "--backend", "scalar"]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and all(row["param.backend"] == "scalar" for row in rows)

    def test_experiment_json(self, capsys):
        code = main(["experiment", "fig9", "--scale", "tiny", "--json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and rows[0]["experiment"] == "fig9"

    def test_summary_experiment(self, capsys):
        code = main(["experiment", "summary", "--scale", "tiny"])
        assert code == 0
        output = capsys.readouterr().out
        assert "HOR == ALG utility" in output

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99", "--scale", "tiny"])
