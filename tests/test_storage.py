"""Unit tests for the pluggable interest-store layer.

Everything in :mod:`repro.core.storage` promises one invariant: a store is
*only* a layout — every accessor returns exactly the values of the logical
dense matrix.  These tests pin that invariant down store by store
(dense / sparse / mmap), plus the pieces around it: the dense capacity
guard, the store registry (the ``register_backend()`` mirror), the
``EventRowSource`` blocks the scoring kernels consume, the vectorised
``InterestMatrix.from_entries`` (duplicate and bounds semantics), and the
NPZ round-trips of :mod:`repro.core.instance_io` including the
memory-mapped load path.
"""

from __future__ import annotations

import json
import zipfile

import numpy as np
import pytest

from repro.core.errors import (
    DatasetError,
    InstanceValidationError,
    SolverError,
    StorageCapacityError,
)
from repro.core.instance_io import MATRIX_PREFIXES, load_npz, save_npz, spill_instance
from repro.core.interest import InterestMatrix
from repro.core.storage import (
    DEFAULT_DENSE_CAPACITY,
    DENSE_CAPACITY_ENV,
    DenseEventRows,
    DenseStore,
    MmapStore,
    SparseStore,
    StoreEventRows,
    as_sparse,
    available_stores,
    convert_store,
    csr_members,
    dense_capacity_limit,
    ensure_dense_capacity,
    get_store,
    map_npz_member,
    register_store,
    store_catalog,
    unregister_store,
)
from tests.conftest import make_random_instance


def reference_matrix(seed: int = 7, shape=(13, 9), density: float = 0.4) -> np.ndarray:
    """A reproducible dense matrix with plenty of exact zeros."""
    rng = np.random.default_rng(seed)
    values = rng.random(shape)
    values[rng.random(shape) > density] = 0.0
    return values


def all_stores(values: np.ndarray, tmp_path):
    """The same logical matrix under every built-in storage."""
    return {
        "dense": DenseStore(np.array(values)),
        "sparse": SparseStore.from_dense(values),
        "mmap": MmapStore.spill(
            SparseStore.from_dense(values), str(tmp_path / "store.npz")
        ),
    }


# --------------------------------------------------------------------------- #
# Dense capacity guard
# --------------------------------------------------------------------------- #
class TestCapacityGuard:
    def test_default_limit(self, monkeypatch):
        monkeypatch.delenv(DENSE_CAPACITY_ENV, raising=False)
        assert dense_capacity_limit() == DEFAULT_DENSE_CAPACITY
        ensure_dense_capacity((20_000, 20_000))  # exactly the default limit

    def test_env_lowers_the_limit(self, monkeypatch):
        monkeypatch.setenv(DENSE_CAPACITY_ENV, "10")
        assert dense_capacity_limit() == 10
        ensure_dense_capacity((2, 5))
        with pytest.raises(StorageCapacityError) as excinfo:
            ensure_dense_capacity((3, 5))
        message = str(excinfo.value)
        assert "3 x 5" in message
        assert "'sparse' or 'mmap'" in message
        assert DENSE_CAPACITY_ENV in message

    @pytest.mark.parametrize("raw", ["banana", "1.5", "", "0", "-4"])
    def test_invalid_env_is_a_loud_error(self, monkeypatch, raw):
        monkeypatch.setenv(DENSE_CAPACITY_ENV, raw)
        with pytest.raises(InstanceValidationError):
            dense_capacity_limit()

    def test_dense_store_construction_is_guarded(self, monkeypatch):
        monkeypatch.setenv(DENSE_CAPACITY_ENV, "10")
        with pytest.raises(StorageCapacityError):
            DenseStore.zeros(4, 4)
        with pytest.raises(StorageCapacityError):
            DenseStore(np.zeros((4, 4)))

    def test_sparse_to_dense_is_guarded(self, monkeypatch):
        store = SparseStore.from_dense(reference_matrix(shape=(6, 4)))
        monkeypatch.setenv(DENSE_CAPACITY_ENV, "10")
        with pytest.raises(StorageCapacityError):
            store.to_dense()
        # Streaming accessors stay available above the dense limit.
        assert store.column(0).shape == (6,)


# --------------------------------------------------------------------------- #
# Accessor equality: every storage is only a layout
# --------------------------------------------------------------------------- #
class TestAccessorEquality:
    @pytest.fixture()
    def stores(self, tmp_path):
        values = reference_matrix()
        return values, all_stores(values, tmp_path)

    def test_shape_and_counts(self, stores):
        values, by_name = stores
        for store in by_name.values():
            assert store.shape == values.shape
            assert store.num_users == values.shape[0]
            assert store.num_items == values.shape[1]
            assert store.size == values.size
            assert store.nnz == int(np.count_nonzero(values))

    def test_full_matrix(self, stores):
        values, by_name = stores
        for store in by_name.values():
            assert np.array_equal(store.to_dense(), values)

    def test_columns_rows_and_values(self, stores):
        values, by_name = stores
        gather = [4, 0, 7, 4]
        for store in by_name.values():
            for item in range(values.shape[1]):
                assert np.array_equal(store.column(item), values[:, item])
            assert np.array_equal(store.columns(gather), values[:, gather])
            for user in range(values.shape[0]):
                assert np.array_equal(store.row(user), values[user])
            assert store.value(3, 2) == values[3, 2]

    def test_item_row_blocks(self, stores):
        values, by_name = stores
        transposed = values.T
        for store in by_name.values():
            assert np.array_equal(store.item_rows(2, 6), transposed[2:6])
            assert np.array_equal(store.item_rows(0, 0), transposed[0:0])
            picked = np.array([8, 1, 1, 5])
            assert np.array_equal(store.item_rows_at(picked), transposed[picked])

    def test_statistics(self, stores):
        values, by_name = stores
        for store in by_name.values():
            assert store.mean() == pytest.approx(values.mean())
            assert store.density() == pytest.approx(
                np.count_nonzero(values > 0.0) / values.size
            )
            assert store.density(threshold=0.5) == pytest.approx(
                np.count_nonzero(values > 0.5) / values.size
            )
            # A negative threshold counts the implicit zeros too.
            assert store.density(threshold=-1.0) == pytest.approx(1.0)

    def test_empty_matrix(self, tmp_path):
        values = np.zeros((5, 3))
        for store in all_stores(values, tmp_path).values():
            assert store.nnz == 0
            assert store.mean() == 0.0
            assert store.density() == 0.0
            assert np.array_equal(store.to_dense(), values)

    def test_file_backing_flags(self, stores, tmp_path):
        _, by_name = stores
        assert not by_name["dense"].is_file_backed
        assert by_name["dense"].path is None
        assert not by_name["sparse"].is_file_backed
        assert by_name["mmap"].is_file_backed
        assert by_name["mmap"].path == str(tmp_path / "store.npz")
        assert by_name["mmap"].prefix == "interest"


# --------------------------------------------------------------------------- #
# Sparse construction and validation
# --------------------------------------------------------------------------- #
class TestSparseStore:
    def test_from_coo_matches_from_dense(self):
        values = reference_matrix(seed=11)
        users, items = np.nonzero(values)
        built = SparseStore.from_coo(
            *values.shape, users, items, values[users, items]
        )
        assert np.array_equal(built.to_dense(), values)
        indptr, indices, data = built.csr_arrays
        ref_indptr, ref_indices, ref_data = SparseStore.from_dense(values).csr_arrays
        assert np.array_equal(indptr, ref_indptr)
        assert np.array_equal(indices, ref_indices)
        assert np.array_equal(data, ref_data)

    def test_from_coo_last_write_wins(self):
        built = SparseStore.from_coo(
            3,
            2,
            np.array([0, 1, 0, 0]),
            np.array([1, 0, 1, 0]),
            np.array([0.2, 0.5, 0.9, 0.4]),
            deduplicated=False,
        )
        expected = np.array([[0.4, 0.9], [0.5, 0.0], [0.0, 0.0]])
        assert np.array_equal(built.to_dense(), expected)
        assert built.nnz == 3

    @pytest.mark.parametrize(
        "indptr, indices, data, fragment",
        [
            ([0, 1], [0], [0.5], "length num_items + 1"),
            ([1, 1, 1], [], [], "must start at 0"),
            ([0, 1, 1], [0, 1], [0.5], "equal-length"),
            ([0, 1, 3], [0, 1], [0.5, 0.5], "ends at 3 but 2"),
            ([0, 2, 1], [0], [0.5], "non-decreasing"),
            ([0, 1, 2], [0, 9], [0.5, 0.5], "user indices must lie"),
            ([0, 1, 2], [0, 1], [0.5, 1.5], "values must lie in [0, 1]"),
        ],
    )
    def test_invalid_csr_rejected(self, indptr, indices, data, fragment):
        with pytest.raises(InstanceValidationError, match=None) as excinfo:
            SparseStore(
                (3, 2),
                np.asarray(indptr, dtype=np.int64),
                np.asarray(indices, dtype=np.int64),
                np.asarray(data, dtype=np.float64),
            )
        assert fragment in str(excinfo.value)

    def test_as_sparse_passthrough_and_conversion(self):
        values = reference_matrix(seed=3)
        sparse = SparseStore.from_dense(values)
        assert as_sparse(sparse) is sparse
        converted = as_sparse(DenseStore(values))
        assert isinstance(converted, SparseStore)
        assert np.array_equal(converted.to_dense(), values)

    def test_csr_members_naming(self):
        store = SparseStore.from_dense(reference_matrix(seed=4))
        members = csr_members(store, prefix="competing_interest")
        assert sorted(members) == [
            "competing_interest_data",
            "competing_interest_indices",
            "competing_interest_indptr",
            "competing_interest_shape",
        ]
        assert tuple(members["competing_interest_shape"]) == store.shape


# --------------------------------------------------------------------------- #
# Memory-mapped stores
# --------------------------------------------------------------------------- #
class TestMmapStore:
    def test_spill_open_roundtrip(self, tmp_path):
        values = reference_matrix(seed=5)
        path = str(tmp_path / "interest.npz")
        spilled = MmapStore.spill(SparseStore.from_dense(values), path)
        assert np.array_equal(spilled.to_dense(), values)
        reopened = MmapStore.open(path)
        assert np.array_equal(reopened.to_dense(), values)
        assert isinstance(reopened.csr_arrays[2], np.memmap)

    def test_spill_appends_npz_suffix(self, tmp_path):
        values = reference_matrix(seed=6)
        store = MmapStore.spill(SparseStore.from_dense(values), str(tmp_path / "bare"))
        assert store.path.endswith("bare.npz")
        assert np.array_equal(store.to_dense(), values)

    def test_custom_prefix(self, tmp_path):
        values = reference_matrix(seed=8)
        path = str(tmp_path / "pair.npz")
        np.savez(path, **csr_members(SparseStore.from_dense(values), prefix="left"))
        store = MmapStore.open(path, prefix="left")
        assert store.prefix == "left"
        assert np.array_equal(store.to_dense(), values)

    def test_empty_matrix_spills(self, tmp_path):
        store = MmapStore.spill(
            SparseStore.from_dense(np.zeros((4, 3))), str(tmp_path / "empty.npz")
        )
        assert store.nnz == 0
        assert np.array_equal(store.to_dense(), np.zeros((4, 3)))

    def test_from_dense_requires_a_path(self):
        with pytest.raises(InstanceValidationError, match="file-backed"):
            MmapStore.from_dense(reference_matrix())

    def test_map_npz_member_missing_member(self, tmp_path):
        path = str(tmp_path / "one.npz")
        np.savez(path, present=np.arange(4.0))
        with pytest.raises(InstanceValidationError, match="no member 'absent.npy'"):
            map_npz_member(path, "absent")

    def test_map_npz_member_rejects_compressed(self, tmp_path):
        path = str(tmp_path / "zipped.npz")
        np.savez_compressed(path, packed=np.arange(64.0))
        with pytest.raises(InstanceValidationError, match="compressed"):
            map_npz_member(path, "packed")

    def test_map_npz_member_values(self, tmp_path):
        path = str(tmp_path / "plain.npz")
        payload = np.arange(12.0).reshape(3, 4)
        np.savez(path, payload=payload, empty=np.zeros((0,)))
        mapped = map_npz_member(path, "payload")
        assert isinstance(mapped, np.memmap)
        assert np.array_equal(mapped, payload)
        empty = map_npz_member(path, "empty")
        assert empty.shape == (0,)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestStoreRegistry:
    def test_builtins_in_registration_order(self):
        assert available_stores() == ["dense", "sparse", "mmap"]
        assert get_store("dense") is DenseStore
        assert get_store("sparse") is SparseStore
        assert get_store("mmap") is MmapStore

    def test_catalog_has_descriptions(self):
        catalog = store_catalog()
        assert list(catalog) == available_stores()
        assert all(description for description in catalog.values())

    def test_unknown_store_is_a_friendly_error(self):
        with pytest.raises(
            SolverError, match="unknown storage 'bogus'; available: dense, sparse, mmap"
        ):
            get_store("bogus")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SolverError, match="already registered"):
            register_store(DenseStore)

    def test_nameless_class_rejected(self):
        class Anonymous(DenseStore):
            name = ""

        with pytest.raises(SolverError, match="non-empty string 'name'"):
            register_store(Anonymous)

    @pytest.mark.parametrize("name", ["dense", "sparse", "mmap"])
    def test_builtins_cannot_be_unregistered(self, name):
        with pytest.raises(SolverError, match="built-in"):
            unregister_store(name)

    def test_unknown_unregistration_rejected(self):
        with pytest.raises(SolverError, match="not registered"):
            unregister_store("ghost")

    def test_custom_store_lifecycle(self):
        class MirrorStore(DenseStore):
            name = "mirror"
            description = "dense clone used by the registry test"

        try:
            assert register_store(MirrorStore) is MirrorStore
            assert "mirror" in available_stores()
            values = reference_matrix(seed=9)
            converted = convert_store(SparseStore.from_dense(values), "mirror")
            assert isinstance(converted, MirrorStore)
            assert np.array_equal(converted.to_dense(), values)
        finally:
            unregister_store("mirror")
        assert "mirror" not in available_stores()


# --------------------------------------------------------------------------- #
# Conversions
# --------------------------------------------------------------------------- #
class TestConvertStore:
    def test_identity_conversions_are_no_ops(self, tmp_path):
        values = reference_matrix(seed=12)
        by_name = all_stores(values, tmp_path)
        assert convert_store(by_name["dense"], "dense") is by_name["dense"]
        assert convert_store(by_name["sparse"], "sparse") is by_name["sparse"]
        assert convert_store(by_name["mmap"], "mmap") is by_name["mmap"]

    def test_every_pairwise_conversion_preserves_values(self, tmp_path):
        values = reference_matrix(seed=13)
        by_name = all_stores(values, tmp_path)
        for source_name, source in by_name.items():
            for target_name in ("dense", "sparse", "mmap"):
                path = str(tmp_path / f"{source_name}-to-{target_name}.npz")
                converted = convert_store(source, target_name, path=path)
                assert isinstance(converted, get_store(target_name))
                assert np.array_equal(converted.to_dense(), values)

    def test_mmap_to_sparse_detaches_from_the_file(self, tmp_path):
        values = reference_matrix(seed=14)
        mmapped = all_stores(values, tmp_path)["mmap"]
        detached = convert_store(mmapped, "sparse")
        assert type(detached) is SparseStore
        assert not any(isinstance(arr, np.memmap) for arr in detached.csr_arrays)
        assert np.array_equal(detached.to_dense(), values)

    def test_mmap_conversion_requires_a_path(self):
        with pytest.raises(InstanceValidationError, match="needs a path"):
            convert_store(DenseStore(reference_matrix()), "mmap")


# --------------------------------------------------------------------------- #
# Event-row sources (what the kernels actually iterate)
# --------------------------------------------------------------------------- #
class TestEventRowSources:
    def reference_rows(self, values, event_values):
        mu_rows = np.ascontiguousarray(values.T)
        return mu_rows, event_values[:, np.newaxis] * mu_rows

    def test_store_blocks_match_dense_blocks_bit_for_bit(self, tmp_path):
        values = reference_matrix(seed=15, shape=(17, 11))
        event_values = np.linspace(0.25, 2.0, values.shape[1])
        mu_rows, value_mu_rows = self.reference_rows(values, event_values)
        dense_rows = DenseEventRows(mu_rows, value_mu_rows)
        assert dense_rows.is_dense and dense_rows.num_rows == values.shape[1]
        for store in all_stores(values, tmp_path).values():
            rows = StoreEventRows(store, event_values)
            assert not rows.is_dense
            assert rows.num_rows == values.shape[1]
            for start, stop in ((0, 11), (3, 7), (10, 11), (4, 4)):
                expect_mu, expect_value = dense_rows.block(start, stop)
                got_mu, got_value = rows.block(start, stop)
                assert np.array_equal(got_mu, expect_mu)
                assert np.array_equal(got_value, expect_value)

    def test_select_restricts_and_reorders(self, tmp_path):
        values = reference_matrix(seed=16, shape=(10, 8))
        event_values = np.linspace(0.5, 1.5, values.shape[1])
        mu_rows, value_mu_rows = self.reference_rows(values, event_values)
        picked = np.array([6, 2, 2, 0])
        dense_selected = DenseEventRows(mu_rows, value_mu_rows).select(picked)
        for store in all_stores(values, tmp_path).values():
            selected = StoreEventRows(store, event_values).select(picked)
            assert selected.num_rows == picked.shape[0]
            expect_mu, expect_value = dense_selected.block(0, picked.shape[0])
            got_mu, got_value = selected.block(0, picked.shape[0])
            assert np.array_equal(got_mu, expect_mu)
            assert np.array_equal(got_value, expect_value)
            # select() composes: indices apply relative to the selection.
            nested = selected.select(np.array([3, 1]))
            nested_mu, _ = nested.block(0, 2)
            assert np.array_equal(nested_mu, mu_rows[[0, 2]])


# --------------------------------------------------------------------------- #
# InterestMatrix construction semantics (satellite: vectorised from_entries)
# --------------------------------------------------------------------------- #
class TestFromEntries:
    @pytest.mark.parametrize("storage", ["dense", "sparse"])
    def test_duplicate_entries_last_write_wins(self, storage):
        matrix = InterestMatrix.from_entries(
            3,
            2,
            [(0, 1, 0.2), (1, 0, 0.5), (0, 1, 0.9), (2, 1, 0.1), (0, 1, 0.3)],
            storage=storage,
        )
        assert matrix.storage == storage
        expected = np.array([[0.0, 0.3], [0.5, 0.0], [0.0, 0.1]])
        assert np.array_equal(matrix.values, expected)

    @pytest.mark.parametrize("storage", ["dense", "sparse"])
    def test_matches_loop_reference(self, storage):
        rng = np.random.default_rng(17)
        triples = [
            (int(rng.integers(0, 30)), int(rng.integers(0, 12)), float(rng.random()))
            for _ in range(400)
        ]
        expected = np.zeros((30, 12))
        for user, item, value in triples:
            expected[user, item] = value
        matrix = InterestMatrix.from_entries(30, 12, triples, storage=storage)
        assert np.array_equal(matrix.values, expected)

    def test_mmap_storage_spills_via_path(self, tmp_path):
        path = str(tmp_path / "entries.npz")
        matrix = InterestMatrix.from_entries(
            4, 3, [(0, 0, 0.5), (3, 2, 0.25)], storage="mmap", path=path
        )
        assert matrix.storage == "mmap"
        assert matrix.store.is_file_backed
        assert matrix.value(3, 2) == 0.25

    def test_empty_entries_build_zeros(self):
        for storage in ("dense", "sparse"):
            matrix = InterestMatrix.from_entries(5, 4, [], storage=storage)
            assert matrix.storage == storage
            assert matrix.shape == (5, 4)
            assert matrix.store.nnz == 0

    @pytest.mark.parametrize(
        "triple, message",
        [
            ((5, 0, 0.5), "user index 5 outside [0, 5)"),
            ((-1, 0, 0.5), "user index -1 outside [0, 5)"),
            ((0, 4, 0.5), "item index 4 outside [0, 4)"),
        ],
    )
    def test_out_of_range_indices_name_the_offender(self, triple, message):
        with pytest.raises(InstanceValidationError) as excinfo:
            InterestMatrix.from_entries(5, 4, [(1, 1, 0.5), triple])
        assert message in str(excinfo.value)

    def test_to_dict_roundtrip_preserves_sparse_storage(self):
        values = reference_matrix(seed=18, shape=(6, 5))
        matrix = InterestMatrix.from_store(SparseStore.from_dense(values))
        payload = matrix.to_dict()
        assert payload["storage"] == "sparse"
        assert "values" not in payload
        rebuilt = InterestMatrix.from_serialized(json.loads(json.dumps(payload)))
        assert rebuilt.storage == "sparse"
        assert np.array_equal(rebuilt.values, values)

    def test_with_storage_roundtrip(self, tmp_path):
        values = reference_matrix(seed=19, shape=(7, 6))
        dense = InterestMatrix(values)
        sparse = dense.with_storage("sparse")
        mmapped = sparse.with_storage("mmap", path=str(tmp_path / "ws.npz"))
        back = mmapped.with_storage("dense")
        for matrix, storage in ((sparse, "sparse"), (mmapped, "mmap"), (back, "dense")):
            assert matrix.storage == storage
            assert np.array_equal(matrix.values, values)


# --------------------------------------------------------------------------- #
# NPZ persistence (satellite: save_npz no-listify fix + mmap loads)
# --------------------------------------------------------------------------- #
class TestInstanceNpz:
    @pytest.mark.parametrize("compressed", [True, False])
    def test_dense_roundtrip(self, tmp_path, compressed):
        instance = make_random_instance(seed=20).with_storage("dense")
        path = tmp_path / "dense.npz"
        save_npz(instance, path, compressed=compressed)
        loaded = load_npz(path)
        assert loaded.storage == "dense"
        assert np.array_equal(loaded.interest.values, instance.interest.values)
        assert np.array_equal(loaded.activity, instance.activity)
        assert loaded.name == instance.name

    def test_sparse_roundtrip_writes_csr_members(self, tmp_path):
        instance = make_random_instance(seed=21).with_storage("sparse")
        path = tmp_path / "sparse.npz"
        save_npz(instance, path, compressed=False)
        with zipfile.ZipFile(path) as archive:
            names = set(archive.namelist())
        for prefix in MATRIX_PREFIXES:
            assert f"{prefix}_indptr.npy" in names
            assert f"{prefix}.npy" not in names
        loaded = load_npz(path)
        assert loaded.storage == "sparse"
        assert np.array_equal(loaded.interest.values, instance.interest.values)

    def test_entities_member_has_no_matrix_payload(self, tmp_path):
        """The no-listify fix: matrices never round-trip through JSON lists."""
        instance = make_random_instance(seed=22)
        assert "interest" not in instance.to_dict(include_matrices=False)
        path = tmp_path / "entities.npz"
        save_npz(instance, path)
        with np.load(path, allow_pickle=False) as bundle:
            entities = json.loads(bytes(bundle["entities"].tobytes()).decode("utf-8"))
        assert "interest" not in entities
        assert "competing_interest" not in entities
        assert "activity" not in entities
        assert [user["id"] for user in entities["users"]]

    def test_mmap_load_streams_and_records_backing_file(self, tmp_path):
        instance = make_random_instance(seed=23).with_storage("sparse")
        path = tmp_path / "mapped.npz"
        save_npz(instance, path, compressed=False)
        loaded = load_npz(path, mmap=True)
        assert loaded.storage == "mmap"
        assert loaded.backing_file == str(path)
        assert isinstance(loaded.interest.store, MmapStore)
        assert np.array_equal(loaded.interest.values, instance.interest.values)
        assert np.array_equal(
            loaded.competing_interest.values, instance.competing_interest.values
        )

    def test_mmap_load_rejects_compressed_files(self, tmp_path):
        instance = make_random_instance(seed=24).with_storage("sparse")
        path = tmp_path / "packed.npz"
        save_npz(instance, path, compressed=True)
        with pytest.raises(DatasetError, match="compressed members"):
            load_npz(path, mmap=True)

    def test_mmap_load_rejects_dense_members(self, tmp_path):
        instance = make_random_instance(seed=25).with_storage("dense")
        path = tmp_path / "legacy.npz"
        save_npz(instance, path, compressed=False)
        with pytest.raises(DatasetError, match="stored dense"):
            load_npz(path, mmap=True)

    def test_missing_file_is_a_dataset_error(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            load_npz(tmp_path / "ghost.npz")

    def test_spill_instance(self, tmp_path):
        instance = make_random_instance(seed=26)
        spilled = spill_instance(instance, tmp_path / "spill")
        assert spilled.storage == "mmap"
        assert spilled.backing_file == str(tmp_path / "spill" / f"{instance.name}.npz")
        assert np.array_equal(spilled.interest.values, instance.interest.values)

    def test_instance_with_storage_mmap_requires_directory(self, tmp_path):
        instance = make_random_instance(seed=27)
        with pytest.raises(InstanceValidationError, match="directory"):
            instance.with_storage("mmap")
        converted = instance.with_storage("mmap", directory=tmp_path / "ws")
        assert converted.storage == "mmap"
        assert converted.backing_file is not None
        # Leaving the mmap storage drops the backing file association.
        back = converted.with_storage("sparse")
        assert back.storage == "sparse"
        assert back.backing_file is None
