"""Unit tests for the SES instance container (repro.core.instance)."""

import numpy as np
import pytest

from repro.core.entities import CompetingEvent, Event, Organizer, TimeInterval, User
from repro.core.errors import InstanceValidationError
from repro.core.instance import SESInstance
from repro.core.interest import InterestMatrix
from tests.conftest import make_random_instance


def _minimal_kwargs():
    return dict(
        events=[Event(id="e0", location="a"), Event(id="e1", location="b")],
        intervals=[TimeInterval(id="t0"), TimeInterval(id="t1")],
        competing_events=[CompetingEvent(id="c0", interval_id="t1")],
        users=[User(id="u0"), User(id="u1"), User(id="u2")],
        interest=InterestMatrix(np.full((3, 2), 0.5)),
        competing_interest=InterestMatrix(np.full((3, 1), 0.25)),
        activity=np.full((3, 2), 0.75),
    )


class TestValidation:
    def test_valid_instance_builds(self):
        instance = SESInstance(**_minimal_kwargs())
        assert instance.num_events == 2
        assert instance.num_intervals == 2
        assert instance.num_competing_events == 1
        assert instance.num_users == 3

    def test_requires_events(self):
        kwargs = _minimal_kwargs()
        kwargs["events"] = []
        with pytest.raises(InstanceValidationError, match="candidate event"):
            SESInstance(**kwargs)

    def test_requires_intervals(self):
        kwargs = _minimal_kwargs()
        kwargs["intervals"] = []
        with pytest.raises(InstanceValidationError, match="time interval"):
            SESInstance(**kwargs)

    def test_requires_users(self):
        kwargs = _minimal_kwargs()
        kwargs["users"] = []
        with pytest.raises(InstanceValidationError, match="user"):
            SESInstance(**kwargs)

    def test_duplicate_event_ids_rejected(self):
        kwargs = _minimal_kwargs()
        kwargs["events"] = [Event(id="e0", location="a"), Event(id="e0", location="b")]
        with pytest.raises(InstanceValidationError, match="duplicate event id"):
            SESInstance(**kwargs)

    def test_duplicate_user_ids_rejected(self):
        kwargs = _minimal_kwargs()
        kwargs["users"] = [User(id="u0"), User(id="u0"), User(id="u1")]
        with pytest.raises(InstanceValidationError, match="duplicate user id"):
            SESInstance(**kwargs)

    def test_interest_shape_checked(self):
        kwargs = _minimal_kwargs()
        kwargs["interest"] = InterestMatrix(np.full((3, 5), 0.5))
        with pytest.raises(InstanceValidationError, match="interest matrix shape"):
            SESInstance(**kwargs)

    def test_competing_interest_shape_checked(self):
        kwargs = _minimal_kwargs()
        kwargs["competing_interest"] = InterestMatrix(np.full((3, 4), 0.5))
        with pytest.raises(InstanceValidationError, match="competing-interest"):
            SESInstance(**kwargs)

    def test_activity_shape_checked(self):
        kwargs = _minimal_kwargs()
        kwargs["activity"] = np.full((3, 9), 0.5)
        with pytest.raises(InstanceValidationError, match="activity matrix shape"):
            SESInstance(**kwargs)

    def test_activity_range_checked(self):
        kwargs = _minimal_kwargs()
        kwargs["activity"] = np.full((3, 2), 1.5)
        with pytest.raises(InstanceValidationError, match="activity probabilities"):
            SESInstance(**kwargs)

    def test_competing_event_unknown_interval_rejected(self):
        kwargs = _minimal_kwargs()
        kwargs["competing_events"] = [CompetingEvent(id="c0", interval_id="missing")]
        with pytest.raises(InstanceValidationError, match="unknown interval"):
            SESInstance(**kwargs)

    def test_unschedulable_event_flagged_in_metadata(self):
        kwargs = _minimal_kwargs()
        kwargs["events"] = [
            Event(id="e0", location="a", required_resources=50.0),
            Event(id="e1", location="b"),
        ]
        kwargs["organizer"] = Organizer(available_resources=10.0)
        instance = SESInstance(**kwargs)
        assert instance.metadata["unschedulable_events"] == ["e0"]


class TestLookupsAndDerivedData:
    def test_index_lookups(self):
        instance = SESInstance(**_minimal_kwargs())
        assert instance.event_index("e1") == 1
        assert instance.interval_index("t0") == 0
        assert instance.competing_index("c0") == 0
        assert instance.user_index("u2") == 2

    def test_unknown_ids_raise(self):
        instance = SESInstance(**_minimal_kwargs())
        with pytest.raises(InstanceValidationError):
            instance.event_index("nope")
        with pytest.raises(InstanceValidationError):
            instance.interval_index("nope")
        with pytest.raises(InstanceValidationError):
            instance.competing_index("nope")
        with pytest.raises(InstanceValidationError):
            instance.user_index("nope")

    def test_competing_sums(self):
        instance = SESInstance(**_minimal_kwargs())
        sums = instance.competing_sums
        # c0 sits in t1 with interest 0.25 for every user; t0 has no competitor.
        np.testing.assert_allclose(sums[:, 0], 0.0)
        np.testing.assert_allclose(sums[:, 1], 0.25)

    def test_competing_events_at(self):
        instance = SESInstance(**_minimal_kwargs())
        assert instance.competing_events_at(0) == []
        assert instance.competing_events_at(1) == [0]

    def test_vector_accessors(self):
        instance = make_random_instance(seed=5)
        assert len(instance.event_required_resources()) == instance.num_events
        assert len(instance.event_values()) == instance.num_events
        assert len(instance.event_costs()) == instance.num_events
        assert len(instance.event_locations()) == instance.num_events
        assert len(instance.user_weights) == instance.num_users
        assert instance.num_locations() <= instance.num_events

    def test_describe(self):
        instance = SESInstance(**_minimal_kwargs())
        description = instance.describe()
        assert description["num_events"] == 2
        assert description["num_users"] == 3
        assert 0.0 <= description["mean_interest"] <= 1.0


class TestFromArrays:
    def test_default_locations_are_distinct(self):
        instance = SESInstance.from_arrays(
            interest=np.full((2, 3), 0.5), activity=np.full((2, 2), 0.5)
        )
        assert instance.num_locations() == 3
        assert instance.num_competing_events == 0

    def test_competing_requires_interval_indices(self):
        with pytest.raises(InstanceValidationError, match="competing_interval_indices"):
            SESInstance.from_arrays(
                interest=np.full((2, 3), 0.5),
                activity=np.full((2, 2), 0.5),
                competing_interest=np.full((2, 1), 0.5),
            )

    def test_length_mismatches_rejected(self):
        with pytest.raises(InstanceValidationError, match="locations length"):
            SESInstance.from_arrays(
                interest=np.full((2, 3), 0.5),
                activity=np.full((2, 2), 0.5),
                locations=["a"],
            )
        with pytest.raises(InstanceValidationError, match="required_resources length"):
            SESInstance.from_arrays(
                interest=np.full((2, 3), 0.5),
                activity=np.full((2, 2), 0.5),
                required_resources=[1.0],
            )

    def test_extension_vectors(self):
        instance = SESInstance.from_arrays(
            interest=np.full((2, 2), 0.5),
            activity=np.full((2, 2), 0.5),
            event_values=[2.0, 1.0],
            event_costs=[0.5, 0.0],
            user_weights=[3.0, 1.0],
        )
        np.testing.assert_allclose(instance.event_values(), [2.0, 1.0])
        np.testing.assert_allclose(instance.event_costs(), [0.5, 0.0])
        np.testing.assert_allclose(instance.user_weights, [3.0, 1.0])


class TestSerialisation:
    def test_round_trip(self):
        original = make_random_instance(seed=9, num_users=10, num_events=5, num_intervals=3)
        restored = SESInstance.from_dict(original.to_dict())
        assert restored.num_events == original.num_events
        assert restored.num_users == original.num_users
        assert restored.num_competing_events == original.num_competing_events
        np.testing.assert_allclose(restored.interest.values, original.interest.values)
        np.testing.assert_allclose(restored.activity, original.activity)
        np.testing.assert_allclose(restored.competing_sums, original.competing_sums)
        assert [e.id for e in restored.events] == [e.id for e in original.events]
        assert restored.available_resources == original.available_resources

    def test_round_trip_without_competing_events(self):
        original = SESInstance.from_arrays(
            interest=np.full((2, 2), 0.5), activity=np.full((2, 2), 0.5)
        )
        restored = SESInstance.from_dict(original.to_dict())
        assert restored.num_competing_events == 0
        assert restored.competing_interest.shape == (2, 0)

    def test_running_example_round_trip(self, running_example):
        restored = SESInstance.from_dict(running_example.to_dict())
        assert [e.location for e in restored.events] == [
            "Stage 1",
            "Stage 1",
            "Room A",
            "Stage 2",
        ]
        np.testing.assert_allclose(restored.interest.values, running_example.interest.values)
