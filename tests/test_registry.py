"""Tests for the scheduler registry and the base scheduler plumbing."""

import pytest

from repro.algorithms.base import AssignmentEntry, BaseScheduler, better_candidate
from repro.algorithms.registry import (
    CONTRIBUTED_METHODS,
    PAPER_METHODS,
    available_schedulers,
    get_scheduler,
    register_scheduler,
    run_scheduler,
)
from repro.core.counters import ComputationCounter
from repro.core.errors import SolverError
from repro.core.schedule import Schedule


class TestRegistry:
    def test_paper_methods_are_registered(self):
        names = available_schedulers()
        for name in PAPER_METHODS:
            assert name in names
        assert "EXACT" in names

    def test_contributed_methods_subset(self):
        assert set(CONTRIBUTED_METHODS) <= set(PAPER_METHODS)

    @pytest.mark.parametrize("alias", ["hor-i", "HOR_I", "hori", "HOR-I"])
    def test_hor_i_aliases(self, alias):
        assert get_scheduler(alias).name == "HOR-I"

    def test_case_insensitive_lookup(self):
        assert get_scheduler("alg").name == "ALG"
        assert get_scheduler(" inc ").name == "INC"

    def test_unknown_name_raises(self):
        with pytest.raises(SolverError, match="unknown scheduler"):
            get_scheduler("does-not-exist")

    def test_run_scheduler_helper(self, small_instance):
        result = run_scheduler("TOP", small_instance, 3)
        assert result.algorithm == "TOP"
        assert result.num_scheduled == 3

    def test_register_custom_scheduler(self, small_instance):
        class FirstFitScheduler(BaseScheduler):
            name = "FIRST-FIT"

            def _run(self, k):
                schedule = Schedule()
                for event_index in range(min(k, self.instance.num_events)):
                    if self.checker.is_feasible(event_index, 0):
                        self._select_assignment(
                            schedule, event_index, 0,
                            self.engine.assignment_score(event_index, 0),
                        )
                return schedule

        try:
            register_scheduler(FirstFitScheduler)
            assert "FIRST-FIT" in available_schedulers()
            result = run_scheduler("FIRST-FIT", small_instance, 2)
            assert result.num_scheduled >= 1
            with pytest.raises(SolverError, match="already registered"):
                register_scheduler(FirstFitScheduler)
            register_scheduler(FirstFitScheduler, replace=True)
        finally:
            from repro.algorithms import registry

            registry._REGISTRY.pop("FIRST-FIT", None)


class TestSchedulerResult:
    def test_summary_fields(self, small_instance):
        result = run_scheduler("ALG", small_instance, 4)
        summary = result.summary()
        assert summary["algorithm"] == "ALG"
        assert summary["k"] == 4
        assert summary["scheduled"] == result.num_scheduled
        assert summary["utility"] == pytest.approx(result.utility)
        assert summary["user_computations"] == result.user_computations

    def test_external_counter_accumulates(self, small_instance):
        counter = ComputationCounter()
        run_scheduler("TOP", small_instance, 2, counter=counter)
        first = counter.score_computations
        run_scheduler("TOP", small_instance, 2, counter=counter)
        assert counter.score_computations == 2 * first


class TestTieBreaking:
    def test_better_candidate_prefers_larger_score(self):
        assert better_candidate((1.0, 5, 5), (2.0, 0, 0)) == (2.0, 0, 0)

    def test_better_candidate_breaks_ties_by_event_then_interval(self):
        assert better_candidate((1.0, 2, 0), (1.0, 1, 5)) == (1.0, 1, 5)
        assert better_candidate((1.0, 1, 3), (1.0, 1, 2)) == (1.0, 1, 2)

    def test_better_candidate_handles_none(self):
        assert better_candidate(None, (1.0, 0, 0)) == (1.0, 0, 0)
        assert better_candidate((1.0, 0, 0), None) == (1.0, 0, 0)
        assert better_candidate(None, None) is None

    def test_assignment_entry_sort_key(self):
        high = AssignmentEntry(3, 1, 0.9)
        low = AssignmentEntry(0, 0, 0.1)
        tie_a = AssignmentEntry(1, 0, 0.5)
        tie_b = AssignmentEntry(2, 0, 0.5)
        ordered = sorted([low, tie_b, high, tie_a], key=AssignmentEntry.sort_key)
        assert ordered[0] is high
        assert ordered[1] is tie_a
        assert ordered[2] is tie_b
        assert ordered[3] is low
