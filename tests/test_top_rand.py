"""Tests for the TOP and RAND baselines."""

import pytest

from repro.algorithms.alg import AlgScheduler
from repro.algorithms.rand import RandScheduler
from repro.algorithms.top import TopScheduler
from repro.core.constraints import is_schedule_feasible
from repro.core.scoring import utility_of_schedule
from tests.conftest import make_random_instance


class TestTop:
    def test_minimum_number_of_computations(self, medium_instance):
        """TOP computes each assignment score exactly once and never updates."""
        result = TopScheduler(medium_instance).schedule(10)
        assert (
            result.score_computations
            == medium_instance.num_events * medium_instance.num_intervals
        )
        assert result.counters["update_computations"] == 0

    def test_feasible_output(self, medium_instance):
        result = TopScheduler(medium_instance).schedule(12)
        assert is_schedule_feasible(medium_instance, result.schedule)
        assert result.num_scheduled == 12

    def test_never_beats_alg_on_first_selection(self, medium_instance):
        top = TopScheduler(medium_instance).schedule(1)
        alg = AlgScheduler(medium_instance).schedule(1)
        assert top.utility == pytest.approx(alg.utility, rel=1e-9)

    def test_utility_below_alg_for_larger_k(self):
        """TOP piles events into few intervals and loses utility to cannibalisation."""
        wins = 0
        for seed in range(5):
            instance = make_random_instance(seed=seed, num_events=24, num_intervals=6)
            top = TopScheduler(instance).schedule(12)
            alg = AlgScheduler(instance).schedule(12)
            if alg.utility >= top.utility - 1e-9:
                wins += 1
        assert wins == 5

    def test_respects_constraints_with_single_location(self):
        instance = make_random_instance(
            seed=7, num_events=10, num_intervals=3, num_locations=1, available_resources=1e9
        )
        result = TopScheduler(instance).schedule(10)
        assert result.num_scheduled == 3  # one event per interval at most
        assert is_schedule_feasible(instance, result.schedule)

    def test_utility_matches_schedule(self, medium_instance):
        result = TopScheduler(medium_instance).schedule(6)
        assert result.utility == pytest.approx(
            utility_of_schedule(medium_instance, result.schedule), rel=1e-9
        )


class TestRand:
    def test_deterministic_given_seed(self, medium_instance):
        first = RandScheduler(medium_instance, seed=42).schedule(8)
        second = RandScheduler(medium_instance, seed=42).schedule(8)
        assert first.schedule == second.schedule

    def test_different_seeds_usually_differ(self, medium_instance):
        first = RandScheduler(medium_instance, seed=1).schedule(8)
        second = RandScheduler(medium_instance, seed=2).schedule(8)
        assert first.schedule != second.schedule

    def test_no_score_computations(self, medium_instance):
        result = RandScheduler(medium_instance, seed=0).schedule(8)
        assert result.score_computations == 0
        assert result.user_computations == 0

    def test_feasible_output(self, medium_instance):
        for seed in range(5):
            result = RandScheduler(medium_instance, seed=seed).schedule(15)
            assert is_schedule_feasible(medium_instance, result.schedule)

    def test_schedules_k_when_easy(self, medium_instance):
        result = RandScheduler(medium_instance, seed=3).schedule(6)
        assert result.num_scheduled == 6

    def test_usually_below_greedy_utility(self):
        greedy_wins = 0
        for seed in range(6):
            instance = make_random_instance(seed=seed + 100, num_events=24, num_intervals=6)
            alg = AlgScheduler(instance).schedule(10)
            rand = RandScheduler(instance, seed=seed).schedule(10)
            if alg.utility >= rand.utility - 1e-9:
                greedy_wins += 1
        assert greedy_wins >= 5

    def test_utility_matches_schedule(self, medium_instance):
        result = RandScheduler(medium_instance, seed=11).schedule(9)
        assert result.utility == pytest.approx(
            utility_of_schedule(medium_instance, result.schedule), rel=1e-9
        )
